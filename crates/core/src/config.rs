//! Detector configuration (Table 1).
//!
//! Each workload runs FBDetect with its own detection threshold, re-run
//! interval, and window lengths; a threshold may be absolute ("an increase
//! of gCPU from 1% to 1.1% is a 0.1% absolute change") or relative ("a 10%
//! relative change"). The presets mirror Table 1 row for row.

use crate::dedup::pairwise_dedup::MergeRule;
use crate::{DetectError, Result};
use fbd_stats::sax::SaxConfig;
use fbd_tsdb::window::presets as window_presets;
use fbd_tsdb::WindowConfig;

/// A detection threshold, absolute or relative (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Minimum absolute mean shift (e.g. `0.00005` = 0.005% gCPU).
    Absolute(f64),
    /// Minimum relative change (e.g. `0.05` = 5%).
    Relative(f64),
}

impl Threshold {
    /// Whether a shift from `before` to `after` meets the threshold.
    pub fn is_met(&self, before: f64, after: f64) -> bool {
        match *self {
            Threshold::Absolute(t) => (after - before) >= t,
            // fbd-lint::allow(float-eq): exact-zero guard before division; a NaN
            // baseline falls through and fails the >= comparison below
            Threshold::Relative(t) => before != 0.0 && (after - before) / before.abs() >= t,
        }
    }

    /// The threshold expressed in absolute units for a given baseline.
    pub fn absolute_for(&self, baseline: f64) -> f64 {
        match *self {
            Threshold::Absolute(t) => t,
            Threshold::Relative(t) => t * baseline.abs(),
        }
    }
}

/// Full configuration of one detection pipeline instance.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Workload name (reporting only).
    pub name: String,
    /// Detection windows and re-run interval.
    pub windows: WindowConfig,
    /// Detection threshold.
    pub threshold: Threshold,
    /// Significance level for the likelihood-ratio test (paper: 0.01).
    pub significance: f64,
    /// CUSUM+EM iteration budget (§5.2.1).
    pub max_em_iterations: usize,
    /// SAX configuration for the went-away detector (paper: N=20, X=3%).
    pub sax: SaxConfig,
    /// Regression coefficient for the went-away trend threshold
    /// (paper default: 1.5).
    pub regression_coefficient: f64,
    /// Fraction of invalid letters for the NewPattern term ("most letters").
    pub new_pattern_fraction: f64,
    /// ACF threshold for declaring seasonality present (§5.2.3).
    pub seasonality_acf_threshold: f64,
    /// Pseudo z-score threshold under which a regression is attributed to
    /// seasonality (§5.2.3).
    pub seasonality_z_threshold: f64,
    /// Maximum seasonal period searched, in samples.
    pub max_seasonal_period: usize,
    /// RMSE threshold below which a long-term trend counts as gradual
    /// (§5.3), relative to the trend's own standard deviation.
    pub long_term_rmse_fraction: f64,
    /// Whether the long-term path runs at all (PythonFaaS skips it,
    /// Table 3).
    pub long_term_enabled: bool,
    /// Domain-to-regression cost ratio above which a cost domain is
    /// excluded from cost-shift analysis (§5.4 second rule).
    pub cost_domain_exclusion_ratio: f64,
    /// Fraction of the regression's change under which the domain's change
    /// counts as "negligible" (§5.4 third rule).
    pub cost_shift_negligible_fraction: f64,
    /// PairwiseDedup minimum Pearson correlation for merging.
    pub pairwise_min_correlation: f64,
    /// PairwiseDedup minimum metric-ID cosine similarity for merging.
    pub pairwise_min_text_similarity: f64,
    /// Full override of the PairwiseDedup merge rule (§5.5.2's user-defined
    /// rules). `None` uses the default: correlation AND text similarity at
    /// the two thresholds above.
    pub pairwise_rule: Option<MergeRule>,
    /// `ImportanceScore` weights `w1..w4` (§5.5.1; defaults
    /// 0.2/0.6/0.1/0.1).
    pub importance_weights: [f64; 4],
    /// Minimum aggregate root-cause score before candidates are suggested
    /// (§6.3: FBDetect only suggests when confidence is high).
    pub rca_confidence_threshold: f64,
    /// How far before the change point to search for candidate changes, in
    /// seconds.
    pub rca_lookback: u64,
}

impl DetectorConfig {
    /// Builds a configuration from a window preset and threshold, with
    /// paper-default algorithm parameters.
    pub fn new(name: impl Into<String>, windows: WindowConfig, threshold: Threshold) -> Self {
        DetectorConfig {
            name: name.into(),
            windows,
            threshold,
            significance: 0.01,
            max_em_iterations: 50,
            sax: SaxConfig::default(),
            regression_coefficient: 1.5,
            new_pattern_fraction: 0.5,
            seasonality_acf_threshold: 0.4,
            seasonality_z_threshold: 2.0,
            max_seasonal_period: 26,
            // A pure step, z-normalized, has a best-line RMSE of 0.5; the
            // gradual/sudden cut must sit below that.
            long_term_rmse_fraction: 0.35,
            long_term_enabled: true,
            cost_domain_exclusion_ratio: 100.0,
            cost_shift_negligible_fraction: 0.25,
            pairwise_min_correlation: 0.8,
            pairwise_min_text_similarity: 0.6,
            pairwise_rule: None,
            importance_weights: [0.2, 0.6, 0.1, 0.1],
            rca_confidence_threshold: 0.35,
            rca_lookback: 6 * 3_600,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        self.windows
            .validate()
            .map_err(|_| DetectError::InvalidConfig("invalid windows"))?;
        if !(self.significance > 0.0 && self.significance < 1.0) {
            return Err(DetectError::InvalidConfig("significance must be in (0,1)"));
        }
        if self.max_em_iterations == 0 {
            return Err(DetectError::InvalidConfig("EM iterations must be positive"));
        }
        if !(0.0..=1.0).contains(&self.new_pattern_fraction) {
            return Err(DetectError::InvalidConfig(
                "new_pattern_fraction must be in [0,1]",
            ));
        }
        Ok(())
    }
}

/// Table 1 presets, row for row.
pub mod presets {
    use super::*;

    /// FrontFaaS (large): 3% absolute, 30-minute re-run.
    pub fn frontfaas_large() -> DetectorConfig {
        DetectorConfig::new(
            "FrontFaaS (large)",
            window_presets::FRONTFAAS_LARGE,
            Threshold::Absolute(0.03),
        )
    }

    /// FrontFaaS (small): 0.005% absolute, 2-hour re-run.
    pub fn frontfaas_small() -> DetectorConfig {
        DetectorConfig::new(
            "FrontFaaS (small)",
            window_presets::FRONTFAAS_SMALL,
            Threshold::Absolute(0.00005),
        )
    }

    /// PythonFaaS (large): 0.5% absolute. The long-term path is skipped
    /// (Table 3).
    pub fn pythonfaas_large() -> DetectorConfig {
        let mut c = DetectorConfig::new(
            "PythonFaaS (large)",
            window_presets::PYTHONFAAS_LARGE,
            Threshold::Absolute(0.005),
        );
        c.long_term_enabled = false;
        c
    }

    /// PythonFaaS (small): 0.03% absolute; long-term path skipped.
    pub fn pythonfaas_small() -> DetectorConfig {
        let mut c = DetectorConfig::new(
            "PythonFaaS (small)",
            window_presets::PYTHONFAAS_SMALL,
            Threshold::Absolute(0.0003),
        );
        c.long_term_enabled = false;
        c
    }

    /// TAO (FrontFaaS traffic): 0.05% absolute.
    pub fn tao_frontfaas() -> DetectorConfig {
        DetectorConfig::new(
            "TAO (FrontFaaS)",
            window_presets::TAO_FRONTFAAS,
            Threshold::Absolute(0.0005),
        )
    }

    /// TAO (non-FrontFaaS traffic): 0.05% absolute.
    pub fn tao_other() -> DetectorConfig {
        DetectorConfig::new(
            "TAO (non-FrontFaaS)",
            window_presets::TAO_OTHER,
            Threshold::Absolute(0.0005),
        )
    }

    /// AdServing (short): 0.2% absolute. Cost-shift analysis is skipped for
    /// AdServing (Table 3) — expressed by an exclusion ratio of zero, which
    /// excludes every domain.
    pub fn adserving_short() -> DetectorConfig {
        let mut c = DetectorConfig::new(
            "AdServing (short)",
            window_presets::ADSERVING_SHORT,
            Threshold::Absolute(0.002),
        );
        c.cost_domain_exclusion_ratio = 0.0;
        c
    }

    /// AdServing (long): 0.1% absolute; cost-shift analysis skipped.
    pub fn adserving_long() -> DetectorConfig {
        let mut c = DetectorConfig::new(
            "AdServing (long)",
            window_presets::ADSERVING_LONG,
            Threshold::Absolute(0.001),
        );
        c.cost_domain_exclusion_ratio = 0.0;
        c
    }

    /// Invoicer (short): 0.5% absolute on a 16-server service.
    pub fn invoicer() -> DetectorConfig {
        DetectorConfig::new(
            "Invoicer (short)",
            window_presets::INVOICER,
            Threshold::Absolute(0.005),
        )
    }

    /// CT-supply (short): 5% relative.
    pub fn ct_supply_short() -> DetectorConfig {
        DetectorConfig::new(
            "CT-supply (short)",
            window_presets::CT_SUPPLY_SHORT,
            Threshold::Relative(0.05),
        )
    }

    /// CT-supply (long): 5% relative.
    pub fn ct_supply_long() -> DetectorConfig {
        DetectorConfig::new(
            "CT-supply (long)",
            window_presets::CT_SUPPLY_LONG,
            Threshold::Relative(0.05),
        )
    }

    /// CT-demand: 5% relative.
    pub fn ct_demand() -> DetectorConfig {
        DetectorConfig::new(
            "CT-demand",
            window_presets::CT_DEMAND,
            Threshold::Relative(0.05),
        )
    }

    /// All twelve Table 1 rows.
    pub fn all() -> Vec<DetectorConfig> {
        vec![
            frontfaas_large(),
            frontfaas_small(),
            pythonfaas_large(),
            pythonfaas_small(),
            tao_frontfaas(),
            tao_other(),
            adserving_short(),
            adserving_long(),
            invoicer(),
            ct_supply_short(),
            ct_supply_long(),
            ct_demand(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_threshold() {
        let t = Threshold::Absolute(0.1);
        assert!(t.is_met(1.0, 1.1));
        assert!(!t.is_met(1.0, 1.05));
        assert_eq!(t.absolute_for(100.0), 0.1);
    }

    #[test]
    fn relative_threshold() {
        let t = Threshold::Relative(0.1);
        assert!(t.is_met(1.0, 1.1));
        assert!(!t.is_met(100.0, 101.0));
        assert!(!t.is_met(0.0, 1.0)); // No baseline, no relative change.
        assert_eq!(t.absolute_for(2.0), 0.2);
    }

    #[test]
    fn all_presets_validate() {
        for cfg in presets::all() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
        assert_eq!(presets::all().len(), 12);
    }

    #[test]
    fn paper_parameter_defaults() {
        let c = presets::frontfaas_small();
        assert_eq!(c.significance, 0.01);
        assert_eq!(c.sax.buckets, 20);
        assert!((c.sax.validity_fraction - 0.03).abs() < 1e-12);
        assert_eq!(c.regression_coefficient, 1.5);
        assert_eq!(c.importance_weights, [0.2, 0.6, 0.1, 0.1]);
        assert!(matches!(c.threshold, Threshold::Absolute(t) if (t - 0.00005).abs() < 1e-12));
    }

    #[test]
    fn workload_specific_flags() {
        assert!(!presets::pythonfaas_large().long_term_enabled);
        assert_eq!(presets::adserving_short().cost_domain_exclusion_ratio, 0.0);
        assert!(matches!(
            presets::ct_demand().threshold,
            Threshold::Relative(_)
        ));
    }

    #[test]
    fn invalid_configs_detected() {
        let mut c = presets::frontfaas_large();
        c.significance = 0.0;
        assert!(c.validate().is_err());
        let mut c = presets::frontfaas_large();
        c.max_em_iterations = 0;
        assert!(c.validate().is_err());
    }
}
