//! The went-away detector (§5.2.2).
//!
//! Filters out transient regressions that recover on their own — the false
//! positive of Figure 1(c), which accounts for up to 99.7% of raw change
//! points. This is the paper's third-iteration design: a regression is kept
//! only when
//!
//! ```text
//! NewPattern OR (SignificantRegression AND LastingTrend AND NOT RegressionGoneAway)
//! ```
//!
//! where the terms are computed over SAX string representations (N=20
//! buckets, 3% validity), the Mann-Kendall trend test, Theil-Sen slopes,
//! and a MAD-based regression threshold with the 1.4826 normality constant
//! and a 1.5 coefficient.

use crate::config::DetectorConfig;
use crate::scan_cache::ScanCache;
use crate::types::Regression;
use crate::Result;
use fbd_stats::acf;
use fbd_stats::descriptive;
use fbd_stats::sax::{encode_in_range, SaxConfig};
use fbd_stats::trend::{mann_kendall, theil_sen, TrendDirection};

/// Term-by-term breakdown of the went-away predicate, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WentAwayVerdict {
    /// The post-regression pattern differs from anything in history.
    pub new_pattern: bool,
    /// The regression magnitude is significant.
    pub significant: bool,
    /// The regression persists (no substantial recovery trend).
    pub lasting: bool,
    /// The final data points have returned to the baseline.
    pub gone_away: bool,
    /// The overall decision: `true` keeps the regression.
    pub keep: bool,
}

/// The went-away detector.
#[derive(Debug, Clone)]
pub struct WentAwayDetector {
    sax: SaxConfig,
    regression_coefficient: f64,
    new_pattern_fraction: f64,
    seasonality_acf_threshold: f64,
    max_seasonal_period: usize,
}

impl WentAwayDetector {
    /// Creates a detector from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        WentAwayDetector {
            sax: config.sax,
            regression_coefficient: config.regression_coefficient,
            new_pattern_fraction: config.new_pattern_fraction,
            seasonality_acf_threshold: config.seasonality_acf_threshold,
            max_seasonal_period: config.max_seasonal_period,
        }
    }

    /// Evaluates the predicate; `verdict.keep == true` means the regression
    /// survives this filter.
    pub fn evaluate(&self, regression: &Regression) -> Result<WentAwayVerdict> {
        self.evaluate_with_cache(regression, None)
    }

    /// [`Self::evaluate`] with a cross-scan [`ScanCache`]: the SAX reference
    /// encoding of the historic window and the seasonality search are reused
    /// when this series' windows are unchanged since a previous round.
    pub fn evaluate_with_cache(
        &self,
        regression: &Regression,
        cache: Option<&ScanCache>,
    ) -> Result<WentAwayVerdict> {
        let data = regression.windows.all();
        let historic = regression.windows.historic();
        let cp = regression.change_index.min(data.len().saturating_sub(1));
        let post: &[f64] = &data[(cp + 1).min(data.len())..];
        if post.len() < 4 || historic.len() < 4 {
            // Too little evidence to refute; keep the candidate.
            return Ok(WentAwayVerdict {
                new_pattern: false,
                significant: true,
                lasting: true,
                gone_away: false,
                keep: true,
            });
        }
        let magnitude = regression.magnitude();
        // §5.2: an *increase* means a regression (series are oriented
        // upstream). A non-positive shift is an improvement — filter it.
        if magnitude <= 0.0 {
            return Ok(WentAwayVerdict {
                new_pattern: false,
                significant: false,
                lasting: false,
                gone_away: true,
                keep: false,
            });
        }
        // SAX over the combined value range, with validity defined by the
        // historic window ("a letter is valid if its number of occurrences
        // exceeds a predefined threshold").
        let range_min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let range_max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let reference = match cache {
            Some(c) => c.sax_reference(&regression.series, historic, range_min, range_max, self.sax)?,
            None => encode_in_range(historic, range_min, range_max, self.sax)?,
        };
        let post_sax = reference.encode_with_same_buckets(post)?;

        // --- NewPattern ---
        let post_mean = descriptive::mean(post)?;
        let lowest_valid_edge = reference
            .smallest_valid_symbol()
            .map(|s| range_min + s as f64 * reference.bucket_width());
        let new_pattern = post_sax.invalid_fraction() > self.new_pattern_fraction
            && lowest_valid_edge.is_none_or(|edge| post_mean >= edge);

        // --- SignificantRegression ---
        // Largest post letter vs. largest valid historic letter.
        let analysis_end = historic.len() + regression.windows.analysis_len();
        let post_analysis: &[f64] =
            &data[(cp + 1).min(data.len())..analysis_end.min(data.len())];
        let post_analysis_sax = if post_analysis.is_empty() {
            post_sax.clone()
        } else {
            reference.encode_with_same_buckets(post_analysis)?
        };
        let letter_ok = match reference.largest_valid_symbol() {
            Some(largest_valid) => post_analysis_sax.largest_symbol() >= largest_valid,
            None => true,
        };
        // P90(post) must exceed P95(historic) and P90 of the previous
        // period (the tail of the historic window, one post-length long).
        let p90_post = descriptive::percentile(post, 90.0)?;
        let p95_hist = descriptive::percentile(historic, 95.0)?;
        let prev_len = post.len().min(historic.len());
        let prev_slice = &historic[historic.len() - prev_len..];
        let p90_prev = descriptive::percentile(prev_slice, 90.0)?;
        let significant = letter_ok && p90_post > p95_hist && p90_post > p90_prev;

        // Seasonal period, if any: trend and tail checks must not mistake
        // a diurnal trough for a recovery.
        let max_lag = self.max_seasonal_period.min(post.len() / 2);
        let period = match cache {
            Some(c) => c
                .seasonality(
                    &regression.series,
                    data,
                    2,
                    max_lag,
                    self.seasonality_acf_threshold,
                )
                .unwrap_or(None),
            None => acf::find_seasonality(data, 2, max_lag, self.seasonality_acf_threshold)
                .unwrap_or(None),
        }
        .map(|s| s.period)
        .unwrap_or(0);
        // --- LastingTrend ---
        // Threshold = coefficient × MAD(historic) × 1.4826 (§5.2.2).
        let regression_threshold = self.regression_coefficient
            * descriptive::mad(historic)?
            * descriptive::MAD_NORMALITY_CONSTANT;
        let mk_post = mann_kendall(post, 0.05)?;
        let analysis_window: &[f64] = &data[historic.len()..analysis_end.min(data.len())];
        let mk_analysis = if analysis_window.len() >= 4 {
            mann_kendall(analysis_window, 0.05)?.direction
        } else {
            TrendDirection::None
        };
        let lasting = match mk_post.direction {
            TrendDirection::Decreasing => {
                // A recovery trend: the regression is lasting only if the
                // projected recovery is small relative to the shift — and a
                // projected recovery must be corroborated by the final level
                // actually approaching the baseline (a seasonal downswing
                // projects a recovery that never materializes).
                let slope = theil_sen(post)?.slope;
                let projected_recovery = slope.abs() * post.len() as f64;
                let corroboration_len = (post.len() / 10).max(5).max(period).min(post.len());
                let level_tail = descriptive::mean(&post[post.len() - corroboration_len..])?;
                let level_recovered = level_tail < regression.mean_before + 0.5 * magnitude;
                !(projected_recovery >= 0.5 * magnitude.abs() && level_recovered)
            }
            TrendDirection::Increasing => {
                // Still rising. Use the lower of the two window slopes "to
                // avoid over- or under-estimation" and require the total
                // rise to clear the MAD threshold.
                let slope_post = theil_sen(post)?.slope;
                let slope_analysis = if mk_analysis == TrendDirection::Increasing {
                    theil_sen(analysis_window)?.slope
                } else {
                    slope_post
                };
                let slope = slope_post.min(slope_analysis);
                slope * post.len() as f64 + magnitude >= regression_threshold
            }
            TrendDirection::None => {
                // A plateau at the new level: lasting when the level shift
                // itself clears the threshold.
                (post_mean - regression.mean_before) >= regression_threshold.min(magnitude * 0.5)
            }
        };

        // --- RegressionGoneAway ---
        // Final sanity check on the last few data points. With seasonality
        // present, the tail must span one full period so a trough alone
        // cannot read as a recovery.
        let tail_len = (post.len() / 10).max(5).max(period).min(post.len());
        let tail = &post[post.len() - tail_len..];
        let tail_mean = descriptive::mean(tail)?;
        let gone_away = tail_mean <= regression.mean_before + 0.25 * magnitude;

        // RegressionGoneAway is "the final sanity check": a series whose
        // last data points are back at the baseline is never reported, even
        // when its excursion formed a new pattern.
        let keep = (new_pattern || (significant && lasting)) && !gone_away;
        Ok(WentAwayVerdict {
            new_pattern,
            significant,
            lasting,
            gone_away,
            keep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn noisy(n: usize, mean: f64, amp: f64, phase: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ phase).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                mean + (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * amp
            })
            .collect()
    }

    fn regression(
        historic: Vec<f64>,
        analysis: Vec<f64>,
        extended: Vec<f64>,
        change_index: usize,
        mean_before: f64,
        mean_after: f64,
    ) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, "foo"),
            kind: RegressionKind::ShortTerm,
            change_index,
            change_time: 0,
            mean_before,
            mean_after,
            windows: WindowedData::from_regions(&historic, &analysis, &extended, 0, 100),
            root_cause_candidates: vec![],
        }
    }

    fn detector() -> WentAwayDetector {
        WentAwayDetector {
            sax: SaxConfig::default(),
            regression_coefficient: 1.5,
            new_pattern_fraction: 0.5,
            seasonality_acf_threshold: 0.4,
            max_seasonal_period: 26,
        }
    }

    #[test]
    fn persistent_step_is_kept() {
        let historic = noisy(300, 1.0, 0.1, 1);
        let mut analysis = noisy(30, 1.0, 0.1, 2);
        analysis.extend(noisy(70, 1.5, 0.1, 3));
        let extended = noisy(100, 1.5, 0.1, 4);
        let r = regression(historic, analysis, extended, 329, 1.0, 1.5);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.keep, "verdict = {v:?}");
        assert!(!v.gone_away);
    }

    #[test]
    fn recovered_transient_is_filtered() {
        // Figure 1(c): a dip/spike that recovers inside the extended window.
        let historic = noisy(300, 1.0, 0.1, 1);
        let mut analysis = noisy(30, 1.0, 0.1, 2);
        analysis.extend(noisy(40, 1.6, 0.1, 3));
        let mut extended = noisy(30, 1.3, 0.1, 4);
        extended.extend(noisy(70, 1.0, 0.1, 5));
        let r = regression(historic, analysis, extended, 329, 1.0, 1.6);
        let v = detector().evaluate(&r).unwrap();
        assert!(!v.keep, "verdict = {v:?}");
        assert!(v.gone_away);
    }

    #[test]
    fn figure7_spike_in_history_does_not_mask_final_regression() {
        // A historical spike higher than the final regression level: the
        // spike's bucket is invalid (outlier), so the SAX letter test still
        // recognizes the final level as significant.
        let mut historic = noisy(280, 10.0, 0.3, 1);
        for v in historic[100..112].iter_mut() {
            *v += 4.0;
        }
        let mut analysis = noisy(30, 10.0, 0.3, 2);
        analysis.extend(noisy(70, 12.0, 0.3, 3));
        let extended = noisy(60, 12.0, 0.3, 4);
        let r = regression(historic, analysis, extended, 309, 10.0, 12.0);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.keep, "verdict = {v:?}");
    }

    #[test]
    fn new_pattern_triggers_on_unprecedented_level() {
        // Post values far above anything historical: most letters invalid.
        let historic = noisy(300, 1.0, 0.1, 1);
        let analysis = noisy(100, 3.0, 0.1, 2);
        let extended = noisy(50, 3.0, 0.1, 3);
        let r = regression(historic, analysis, extended, 299, 1.0, 3.0);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.new_pattern);
        assert!(v.keep);
    }

    #[test]
    fn new_low_pattern_is_not_a_regression() {
        // A new pattern BELOW the historical range is a cost drop, not a
        // regression ("unless the average value is lower than the lowest
        // valid bucket").
        let historic = noisy(300, 2.0, 0.1, 1);
        let analysis = noisy(100, 0.5, 0.05, 2);
        let extended = noisy(50, 0.5, 0.05, 3);
        let r = regression(historic, analysis, extended, 299, 2.0, 0.5);
        let v = detector().evaluate(&r).unwrap();
        assert!(!v.new_pattern, "verdict = {v:?}");
        assert!(!v.keep);
    }

    #[test]
    fn recovering_trend_is_filtered() {
        // Post window trends steadily back toward the baseline.
        let historic = noisy(300, 1.0, 0.05, 1);
        let mut analysis = noisy(20, 1.0, 0.05, 2);
        analysis.extend((0..80).map(|i| 1.5 - 0.55 * i as f64 / 80.0));
        let extended: Vec<f64> = (0..50).map(|i| 0.95 + 0.001 * (i % 3) as f64).collect();
        let r = regression(historic, analysis, extended, 319, 1.0, 1.5);
        let v = detector().evaluate(&r).unwrap();
        assert!(!v.keep, "verdict = {v:?}");
    }

    #[test]
    fn short_post_window_is_kept_conservatively() {
        let historic = noisy(100, 1.0, 0.1, 1);
        let analysis = vec![1.5, 1.5];
        let r = regression(historic, analysis, vec![], 99, 1.0, 1.5);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.keep);
    }

    #[test]
    fn tiny_shift_below_noise_is_filtered() {
        // A "regression" smaller than the noise floor: not significant.
        let historic = noisy(300, 1.0, 0.2, 1);
        let analysis = noisy(100, 1.005, 0.2, 7);
        let r = regression(historic, analysis, vec![], 299, 1.0, 1.005);
        let v = detector().evaluate(&r).unwrap();
        assert!(!v.significant || !v.keep, "verdict = {v:?}");
    }
}
