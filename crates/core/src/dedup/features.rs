//! Clustering features for regression deduplication (§5.5.1).
//!
//! SOMDedup represents each regression with "typical time-series metrics
//! like Fourier frequencies, variance, and change points, along with
//! several distinguishing features": a bitmap of candidate root causes and
//! the metric ID encoded as an integer with 2-/3-gram TF-IDF.

use crate::types::Regression;
use crate::Result;
use fbd_changelog::{ChangeId, ChangeLog};
use fbd_stats::{descriptive, fourier, text::TfIdf};

/// Number of bits in the root-cause-candidate bitmap feature.
pub const ROOT_CAUSE_BITMAP_BITS: usize = 16;

/// Builds the candidate-root-cause bitmap: bit `i` is set when change
/// `candidates[i]` modifies the regressed subroutine shortly before the
/// regression (§5.5.1). `candidates` fixes the bit assignment across the
/// whole batch so bitmaps are comparable.
pub fn root_cause_bitmap(
    regression: &Regression,
    log: &ChangeLog,
    candidates: &[ChangeId],
    lookback: u64,
) -> u64 {
    let start = regression.change_time.saturating_sub(lookback);
    let matching = log.modifying_subroutine_between(
        &regression.series.target,
        start,
        regression.change_time + 1,
    );
    let mut bitmap = 0u64;
    for c in matching {
        if let Some(pos) = candidates.iter().position(|&id| id == c.id) {
            if pos < ROOT_CAUSE_BITMAP_BITS {
                bitmap |= 1 << pos;
            }
        }
    }
    bitmap
}

/// Extracts the SOMDedup feature vector for one regression.
///
/// Layout: `[variance, change_index_fraction, magnitude, relative_change,
/// low_frequency_fraction, dominant_bin_fraction, tfidf_signature_hi,
/// tfidf_signature_lo, bitmap]`.
pub fn feature_vector(regression: &Regression, tfidf: &TfIdf, bitmap: u64) -> Result<Vec<f64>> {
    let analysis = regression.windows.analysis();
    let variance = if analysis.len() >= 2 {
        descriptive::variance(analysis)?
    } else {
        0.0
    };
    let all_len = regression.windows.total_len().max(1);
    let change_fraction = regression.change_index as f64 / all_len as f64;
    let spectral = if analysis.len() >= 4 {
        fourier::spectral_features(analysis, 1)?
    } else {
        fbd_stats::fourier::SpectralFeatures {
            dominant_bins: vec![1],
            dominant_magnitudes: vec![0.0],
            energy: 0.0,
            low_frequency_fraction: 0.0,
        }
    };
    let dominant_fraction =
        *spectral.dominant_bins.first().unwrap_or(&1) as f64 / (analysis.len() / 2).max(1) as f64;
    let signature = tfidf.integer_signature(&regression.metric_id());
    let relative = regression.relative_change();
    let relative = if relative.is_finite() { relative } else { 1e6 };
    Ok(vec![
        variance,
        change_fraction,
        regression.magnitude(),
        relative,
        spectral.low_frequency_fraction,
        dominant_fraction,
        (signature >> 32) as f64,
        (signature & 0xFFFF_FFFF) as f64,
        bitmap as f64,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_changelog::{Change, ChangeKind};
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression(target: &str, change_time: u64) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, target),
            kind: RegressionKind::ShortTerm,
            change_index: 50,
            change_time,
            mean_before: 1.0,
            mean_after: 1.2,
            windows: WindowedData::from_regions(
                &vec![1.0; 50],
                &(0..50).map(|i| 1.0 + (i % 5) as f64 * 0.01).collect::<Vec<_>>(),
                &[],
                0,
                100,
            ),
            root_cause_candidates: vec![],
        }
    }

    fn change(id: u64, time: u64, subs: &[&str]) -> Change {
        Change {
            id,
            kind: ChangeKind::Code,
            service: "svc".into(),
            deploy_time: time,
            modified_subroutines: subs.iter().map(|s| s.to_string()).collect(),
            title: String::new(),
            summary: String::new(),
            files: vec![],
            author: String::new(),
        }
    }

    #[test]
    fn bitmap_flags_matching_changes() {
        let mut log = ChangeLog::new();
        log.record(change(10, 90, &["foo"]));
        log.record(change(11, 95, &["bar"]));
        log.record(change(12, 99, &["foo"]));
        let r = regression("foo", 100);
        let candidates = vec![10, 11, 12];
        let bitmap = root_cause_bitmap(&r, &log, &candidates, 3_600);
        assert_eq!(bitmap, 0b101); // Changes 10 and 12 modify foo.
    }

    #[test]
    fn bitmap_respects_lookback() {
        let mut log = ChangeLog::new();
        log.record(change(10, 5, &["foo"]));
        let r = regression("foo", 10_000);
        let bitmap = root_cause_bitmap(&r, &log, &[10], 100);
        assert_eq!(bitmap, 0); // Deployed far before the lookback.
    }

    #[test]
    fn feature_vector_has_fixed_layout() {
        let model = TfIdf::fit(&["svc::foo.gcpu", "svc::bar.gcpu"], &[2, 3]);
        let v = feature_vector(&regression("foo", 100), &model, 0b11).unwrap();
        assert_eq!(v.len(), 9);
        assert_eq!(v[8], 3.0); // The bitmap rides in the last slot.
        assert!(v[0] >= 0.0); // Variance.
        assert!((0.0..=1.0).contains(&v[1])); // Change fraction.
    }

    #[test]
    fn same_metric_ids_share_signature_features() {
        let model = TfIdf::fit(&["svc::foo.gcpu", "svc::bar.gcpu"], &[2, 3]);
        let a = feature_vector(&regression("foo", 100), &model, 0).unwrap();
        let b = feature_vector(&regression("foo", 200), &model, 0).unwrap();
        assert_eq!(a[6], b[6]);
        assert_eq!(a[7], b[7]);
        let c = feature_vector(&regression("bar", 100), &model, 0).unwrap();
        assert_ne!((a[6], a[7]), (c[6], c[7]));
    }
}
