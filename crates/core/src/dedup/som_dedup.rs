//! SOMDedup: fast SOM-based deduplication with `ImportanceScore`
//! representative selection (§5.5.1).
//!
//! Regressions of the same metric type within one analysis window are
//! mapped onto an `⌈n^(1/4)⌉ × ⌈n^(1/4)⌉` self-organizing map; items landing
//! on the same cell are merged, "often reducing regressions by two orders
//! of magnitude". Within each group the regression with the highest
//! `ImportanceScore` is presented as the representative:
//!
//! ```text
//! ImportanceScore = w1·RelativeCostChange + w2·AbsoluteCostChange
//!                 + w3·(1 − PopularityScore) + w4·PotentialRootCauseFound
//! ```

use crate::dedup::features::{feature_vector, root_cause_bitmap};
use crate::error::DetectError;
use crate::types::Regression;
use crate::Result;
use fbd_changelog::ChangeLog;
use fbd_cluster::som::cluster_by_cell;
use fbd_cluster::{SelfOrganizingMap, SomConfig};
use fbd_stats::text::TfIdf;

/// A deduplicated group: the representative plus the merged members.
#[derive(Debug, Clone)]
pub struct DedupGroup {
    /// Index (into the input batch) of the representative regression.
    pub representative: usize,
    /// All member indices, including the representative.
    pub members: Vec<usize>,
}

/// SOMDedup configuration.
#[derive(Debug, Clone, Copy)]
pub struct SomDedupConfig {
    /// `ImportanceScore` weights `w1..w4` (defaults 0.2/0.6/0.1/0.1).
    pub importance_weights: [f64; 4],
    /// Root-cause candidate lookback (seconds).
    pub rca_lookback: u64,
    /// SOM training seed.
    pub seed: u64,
}

impl Default for SomDedupConfig {
    fn default() -> Self {
        SomDedupConfig {
            importance_weights: [0.2, 0.6, 0.1, 0.1],
            rca_lookback: 6 * 3_600,
            seed: 0xDED0,
        }
    }
}

/// The `ImportanceScore` of one regression (§5.5.1).
///
/// `popularity` is the probability of the regressed subroutine appearing in
/// a random stack-trace sample; `root_cause_found` reflects whether any
/// candidate change modifies the subroutine.
pub fn importance_score(
    regression: &Regression,
    weights: [f64; 4],
    popularity: f64,
    root_cause_found: bool,
) -> f64 {
    let relative = regression.relative_change();
    let relative = if relative.is_finite() {
        relative.abs()
    } else {
        1.0
    };
    weights[0] * relative.min(1.0)
        + weights[1] * regression.magnitude().abs()
        + weights[2] * (1.0 - popularity.clamp(0.0, 1.0))
        + weights[3] * if root_cause_found { 1.0 } else { 0.0 }
}

/// Runs SOMDedup over a batch of regressions (same metric type, same
/// analysis window). Returns the groups with representatives chosen by
/// `ImportanceScore`.
///
/// `popularity` maps a batch index to the subroutine's popularity score
/// (gCPU); pass `|_| 0.0` when stack samples are unavailable.
pub fn som_dedup<P>(
    regressions: &[Regression],
    log: Option<&ChangeLog>,
    config: &SomDedupConfig,
    mut popularity: P,
) -> Result<Vec<DedupGroup>>
where
    P: FnMut(usize) -> f64,
{
    if regressions.is_empty() {
        return Ok(Vec::new());
    }
    if regressions.len() == 1 {
        return Ok(vec![DedupGroup {
            representative: 0,
            members: vec![0],
        }]);
    }
    // TF-IDF model over this batch's metric ids.
    let ids: Vec<String> = regressions.iter().map(|r| r.metric_id()).collect();
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let tfidf = TfIdf::fit(&id_refs, &[2, 3]);
    // Candidate list shared by the batch: every change modifying any
    // regressed subroutine near any change point.
    let candidates: Vec<u64> = match log {
        Some(log) => {
            let mut c: Vec<u64> = regressions
                .iter()
                .flat_map(|r| {
                    log.modifying_subroutine_between(
                        &r.series.target,
                        r.change_time.saturating_sub(config.rca_lookback),
                        r.change_time + 1,
                    )
                    .into_iter()
                    .map(|ch| ch.id)
                    .collect::<Vec<u64>>()
                })
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        }
        None => Vec::new(),
    };
    let mut bitmaps = Vec::with_capacity(regressions.len());
    let mut features = Vec::with_capacity(regressions.len());
    for r in regressions {
        let bitmap = match log {
            Some(log) => root_cause_bitmap(r, log, &candidates, config.rca_lookback),
            None => 0,
        };
        bitmaps.push(bitmap);
        features.push(feature_vector(r, &tfidf, bitmap)?);
    }
    let som_config = SomConfig {
        seed: config.seed,
        ..SomConfig::default()
    };
    let som = SelfOrganizingMap::train(&features, som_config)?;
    let assignments = som.assign(&features)?;
    let clusters = cluster_by_cell(&assignments);
    let mut groups = Vec::with_capacity(clusters.len());
    for members in clusters {
        let representative = members
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let sa = importance_score(
                    &regressions[a],
                    config.importance_weights,
                    popularity(a),
                    bitmaps[a] != 0,
                );
                let sb = importance_score(
                    &regressions[b],
                    config.importance_weights,
                    popularity(b),
                    bitmaps[b] != 0,
                );
                sa.total_cmp(&sb)
            })
            .ok_or(DetectError::Internal("SOM produced an empty cluster"))?;
        groups.push(DedupGroup {
            representative,
            members,
        });
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression(target: &str, magnitude: f64, seed: u64) -> Regression {
        let analysis: Vec<f64> = (0..64)
            .map(|i| {
                let mut z = (i as u64 ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                1.0 + magnitude + ((z >> 33) % 100) as f64 * 1e-4
            })
            .collect();
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, target),
            kind: RegressionKind::ShortTerm,
            change_index: 60,
            change_time: 1_000,
            mean_before: 1.0,
            mean_after: 1.0 + magnitude,
            windows: WindowedData::from_regions(&vec![1.0; 64], &analysis, &[], 0, 100),
            root_cause_candidates: vec![],
        }
    }

    #[test]
    fn related_regressions_group_together() {
        // Callers of one regressed subroutine all regress identically;
        // an unrelated tiny regression stands apart.
        let mut batch = Vec::new();
        for i in 0..8 {
            batch.push(regression(&format!("caller{i}::hot_path"), 0.2, i as u64));
        }
        batch.push(regression("unrelated::cold", 0.001, 99));
        let groups = som_dedup(&batch, None, &SomDedupConfig::default(), |_| 0.0).unwrap();
        assert!(groups.len() < batch.len(), "groups = {}", groups.len());
        // The unrelated regression must not share a group with the others.
        let unrelated_group = groups
            .iter()
            .find(|g| g.members.contains(&8))
            .expect("present");
        assert_eq!(unrelated_group.members, vec![8]);
    }

    #[test]
    fn representative_has_highest_importance() {
        let mut batch = vec![
            regression("a::x", 0.05, 1),
            regression("a::y", 0.5, 2), // Biggest absolute change.
            regression("a::z", 0.04, 3),
        ];
        // Force them into one comparable group by making magnitudes equalish
        // except the representative.
        batch[0].mean_after = 1.05;
        let groups = som_dedup(&batch, None, &SomDedupConfig::default(), |_| 0.0).unwrap();
        for g in &groups {
            if g.members.contains(&1) {
                assert_eq!(g.representative, 1);
            }
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert!(som_dedup(&[], None, &SomDedupConfig::default(), |_| 0.0)
            .unwrap()
            .is_empty());
        let one = vec![regression("a", 0.1, 1)];
        let groups = som_dedup(&one, None, &SomDedupConfig::default(), |_| 0.0).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].representative, 0);
    }

    #[test]
    fn importance_score_weights() {
        let r = regression("a", 0.5, 1);
        // Default weights: w2=0.6 dominates on absolute change.
        let with_rc = importance_score(&r, [0.2, 0.6, 0.1, 0.1], 0.0, true);
        let without_rc = importance_score(&r, [0.2, 0.6, 0.1, 0.1], 0.0, false);
        assert!((with_rc - without_rc - 0.1).abs() < 1e-12);
        // Popular subroutines are penalized.
        let popular = importance_score(&r, [0.2, 0.6, 0.1, 0.1], 1.0, false);
        assert!(popular < without_rc);
    }

    #[test]
    fn groups_partition_the_batch() {
        let batch: Vec<Regression> = (0..20)
            .map(|i| regression(&format!("s{}", i % 4), 0.1 * (1 + i % 4) as f64, i as u64))
            .collect();
        let groups = som_dedup(&batch, None, &SomDedupConfig::default(), |_| 0.0).unwrap();
        let mut all: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<usize>>());
        for g in &groups {
            assert!(g.members.contains(&g.representative));
        }
    }
}
