//! SameRegressionMerger: drops re-detections of the same regression across
//! overlapping analysis windows (Table 3).
//!
//! FBDetect re-scans every re-run interval, and the analysis windows
//! overlap, so one regression surfaces in several consecutive scans. The
//! merger keys each regression by (series, change time bucketed to the
//! re-run interval) and keeps only the first sighting.

use crate::types::Regression;
use fbd_tsdb::SeriesId;
use std::collections::BTreeSet;

/// Stateful duplicate suppressor; hold one per pipeline across scans.
#[derive(Debug, Default)]
pub struct SameRegressionMerger {
    /// Tolerance: change times within this many seconds of a previously
    /// seen regression of the same series count as the same regression.
    tolerance: u64,
    seen: BTreeSet<(SeriesId, u64)>,
}

impl SameRegressionMerger {
    /// Creates a merger with the given time tolerance (typically the
    /// re-run interval).
    pub fn new(tolerance: u64) -> Self {
        SameRegressionMerger {
            tolerance: tolerance.max(1),
            seen: BTreeSet::new(),
        }
    }

    /// Number of distinct regressions seen so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Returns `true` when the regression is new (and records it); `false`
    /// when it duplicates a previously seen one.
    pub fn is_new(&mut self, regression: &Regression) -> bool {
        let bucket = regression.change_time / self.tolerance;
        // A change time near a bucket edge may fall into the neighbour
        // bucket on the next scan; check both neighbours.
        for b in [bucket.saturating_sub(1), bucket, bucket + 1] {
            if self.seen.contains(&(regression.series.clone(), b)) {
                // Record this bucket too so drifting estimates keep
                // matching in later scans.
                self.seen.insert((regression.series.clone(), bucket));
                return false;
            }
        }
        self.seen.insert((regression.series.clone(), bucket));
        true
    }

    /// Retains only the new regressions from a batch.
    pub fn filter_new(&mut self, batch: Vec<Regression>) -> Vec<Regression> {
        batch.into_iter().filter(|r| self.is_new(r)).collect()
    }

    /// Forgets regressions older than `cutoff` (bucketed), bounding memory
    /// on long-running pipelines.
    pub fn forget_before(&mut self, cutoff: u64) {
        let cutoff_bucket = cutoff / self.tolerance;
        self.seen.retain(|(_, b)| *b >= cutoff_bucket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{MetricKind, WindowedData};

    fn regression(target: &str, change_time: u64) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, target),
            kind: RegressionKind::ShortTerm,
            change_index: 0,
            change_time,
            mean_before: 1.0,
            mean_after: 2.0,
            windows: WindowedData::from_regions(&[1.0; 4], &[2.0; 4], &[], 0, 1),
            root_cause_candidates: vec![],
        }
    }

    #[test]
    fn first_sighting_is_new() {
        let mut m = SameRegressionMerger::new(3_600);
        assert!(m.is_new(&regression("a", 1_000)));
        assert_eq!(m.seen_count(), 1);
    }

    #[test]
    fn resighting_in_next_scan_is_duplicate() {
        let mut m = SameRegressionMerger::new(3_600);
        assert!(m.is_new(&regression("a", 1_000)));
        // Same change point estimate, next scan.
        assert!(!m.is_new(&regression("a", 1_000)));
        // Slightly drifted estimate, still the same regression.
        assert!(!m.is_new(&regression("a", 2_500)));
    }

    #[test]
    fn different_series_are_independent() {
        let mut m = SameRegressionMerger::new(3_600);
        assert!(m.is_new(&regression("a", 1_000)));
        assert!(m.is_new(&regression("b", 1_000)));
    }

    #[test]
    fn far_apart_changes_are_distinct() {
        let mut m = SameRegressionMerger::new(3_600);
        assert!(m.is_new(&regression("a", 1_000)));
        assert!(m.is_new(&regression("a", 1_000 + 10 * 3_600)));
    }

    #[test]
    fn filter_new_batch() {
        let mut m = SameRegressionMerger::new(3_600);
        let batch = vec![
            regression("a", 100),
            regression("a", 150),
            regression("b", 100),
        ];
        let kept = m.filter_new(batch);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn forgetting_frees_old_entries() {
        let mut m = SameRegressionMerger::new(100);
        m.is_new(&regression("a", 100));
        m.is_new(&regression("b", 10_000));
        m.forget_before(5_000);
        assert_eq!(m.seen_count(), 1);
        // The forgotten one is "new" again.
        assert!(m.is_new(&regression("a", 100)));
    }
}
