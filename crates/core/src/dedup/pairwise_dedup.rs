//! PairwiseDedup: accurate rule-driven pairwise deduplication (§5.5.2).
//!
//! The second dedup pass merges representative regressions across analysis
//! windows and metric types (e.g. a gCPU regression with the throughput
//! regression the same change caused). Similarity features per the paper:
//! the maximal Pearson correlation against group members, the maximal
//! metric-ID cosine similarity, and the stack-trace overlap. User-defined
//! rules decide how feature scores combine into a merge decision.

use crate::types::Regression;
use fbd_cluster::pairwise::{Group, PairwiseClusterer};
use fbd_stats::regression::pearson_aligned;
use fbd_stats::text::TfIdf;

/// How feature scores combine into a merge decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCombination {
    /// Every enabled feature must clear its threshold.
    All,
    /// Any enabled feature clearing its threshold suffices.
    Any,
}

/// A user-defined merge rule (§5.5.2: "users can define the metrics to
/// consider for merge, the similarity threshold for each feature, and how
/// to combine multiple features").
#[derive(Debug, Clone, Copy)]
pub struct MergeRule {
    /// Minimum Pearson time-series correlation; `None` disables the
    /// feature.
    pub min_correlation: Option<f64>,
    /// Minimum metric-ID cosine similarity; `None` disables.
    pub min_text_similarity: Option<f64>,
    /// Minimum stack-trace overlap; `None` disables.
    pub min_stack_overlap: Option<f64>,
    /// How the enabled features combine.
    pub combination: RuleCombination,
}

impl Default for MergeRule {
    fn default() -> Self {
        MergeRule {
            min_correlation: Some(0.8),
            min_text_similarity: Some(0.6),
            min_stack_overlap: None,
            combination: RuleCombination::Any,
        }
    }
}

/// Similarity scores between a source regression and one target.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeatureScores {
    /// Pearson correlation of the analysis-region values.
    pub correlation: f64,
    /// Cosine similarity of metric IDs.
    pub text_similarity: f64,
    /// Stack-trace overlap (0 when unavailable).
    pub stack_overlap: f64,
}

impl FeatureScores {
    /// Whether the scores satisfy the rule.
    pub fn satisfies(&self, rule: &MergeRule) -> bool {
        let checks: Vec<bool> = [
            rule.min_correlation.map(|t| self.correlation >= t),
            rule.min_text_similarity.map(|t| self.text_similarity >= t),
            rule.min_stack_overlap.map(|t| self.stack_overlap >= t),
        ]
        .into_iter()
        .flatten()
        .collect();
        if checks.is_empty() {
            return false;
        }
        match rule.combination {
            RuleCombination::All => checks.into_iter().all(|c| c),
            RuleCombination::Any => checks.into_iter().any(|c| c),
        }
    }

    /// Aggregate score used to pick the best of several merge targets.
    pub fn aggregate(&self) -> f64 {
        self.correlation + self.text_similarity + self.stack_overlap
    }
}

/// Callback computing stack-trace overlap between two subroutine names.
pub type OverlapFn = Box<dyn Fn(&str, &str) -> f64 + Send + Sync>;

/// The PairwiseDedup engine.
pub struct PairwiseDedup {
    rule: MergeRule,
    tfidf: TfIdf,
    /// Optional callback computing stack-trace overlap between two
    /// regressed subroutine names.
    overlap: Option<OverlapFn>,
}

impl PairwiseDedup {
    /// Creates a dedup engine. `corpus` should contain the metric IDs the
    /// TF-IDF model is fitted on (all known regressions' ids).
    pub fn new(rule: MergeRule, corpus: &[String]) -> Self {
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        PairwiseDedup {
            rule,
            tfidf: TfIdf::fit(&refs, &[2, 3]),
            overlap: None,
        }
    }

    /// Installs a stack-trace-overlap callback.
    pub fn with_overlap<F>(mut self, f: F) -> Self
    where
        F: Fn(&str, &str) -> f64 + Send + Sync + 'static,
    {
        self.overlap = Some(Box::new(f));
        self
    }

    /// Feature scores between two regressions.
    pub fn scores(&self, a: &Regression, b: &Regression) -> FeatureScores {
        let correlation = pearson_aligned(
            a.windows.analysis_and_extended(),
            b.windows.analysis_and_extended(),
        )
        .unwrap_or(0.0);
        let text_similarity = self.tfidf.similarity(&a.metric_id(), &b.metric_id());
        let stack_overlap = self
            .overlap
            .as_ref()
            .map(|f| f(&a.series.target, &b.series.target))
            .unwrap_or(0.0);
        FeatureScores {
            correlation,
            text_similarity,
            stack_overlap,
        }
    }

    /// Groups `new_regressions`, optionally seeding with `existing` groups
    /// from prior rounds (the paper's incremental flow). Each regression is
    /// merged into the group with the highest aggregate score among those
    /// satisfying the rule, or founds a new group.
    pub fn dedup(
        &self,
        new_regressions: Vec<Regression>,
        existing: Vec<Group<Regression>>,
    ) -> Vec<Group<Regression>> {
        let mut clusterer = PairwiseClusterer::with_existing_groups(0.0, existing);
        for r in new_regressions {
            // PairwiseClusterer merges at max-similarity >= threshold; we
            // encode "rule satisfied" as 1.0 and "not" as -1.0, tie-broken
            // by the aggregate score for best-group selection.
            let rule = self.rule;
            clusterer.add(r, |a, b| {
                let s = self.scores(a, b);
                if s.satisfies(&rule) {
                    1.0 + s.aggregate()
                } else {
                    -1.0
                }
            });
        }
        // Threshold 0.0 with scores in {-1} ∪ [1, 4]: satisfied merges pass,
        // unsatisfied found new groups.
        clusterer.into_groups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression(service: &str, target: &str, metric: MetricKind, shape_seed: u64) -> Regression {
        // All series share a step shape; different seeds perturb the noise.
        let analysis: Vec<f64> = (0..64)
            .map(|i| {
                let step = if i >= 32 { 1.0 } else { 0.0 };
                let mut z = (i as u64 ^ shape_seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                step + ((z >> 33) % 100) as f64 * 1e-3
            })
            .collect();
        Regression {
            series: SeriesId::new(service, metric, target),
            kind: RegressionKind::ShortTerm,
            change_index: 96,
            change_time: 1_000,
            mean_before: 0.0,
            mean_after: 1.0,
            windows: WindowedData::from_regions(&vec![0.0; 64], &analysis, &[], 0, 100),
            root_cause_candidates: vec![],
        }
    }

    fn anti_regression(service: &str, target: &str) -> Regression {
        let mut r = regression(service, target, MetricKind::Throughput, 5);
        // Inverted shape: drops where others rise.
        for (i, v) in r.windows.analysis_mut().iter_mut().enumerate() {
            *v = if i >= 32 { 0.0 } else { 1.0 };
        }
        r
    }

    fn engine(rule: MergeRule, regs: &[Regression]) -> PairwiseDedup {
        let corpus: Vec<String> = regs.iter().map(|r| r.metric_id()).collect();
        PairwiseDedup::new(rule, &corpus)
    }

    #[test]
    fn correlated_cross_metric_regressions_merge() {
        // The same change moved gCPU and latency identically.
        let regs = vec![
            regression("svc", "hot", MetricKind::GCpu, 1),
            regression("svc", "hot", MetricKind::Latency, 2),
        ];
        let rule = MergeRule {
            min_correlation: Some(0.9),
            min_text_similarity: Some(0.99),
            min_stack_overlap: None,
            combination: RuleCombination::Any,
        };
        let e = engine(rule, &regs);
        let groups = e.dedup(regs, vec![]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 2);
    }

    #[test]
    fn uncorrelated_regressions_stay_apart() {
        let regs = vec![
            regression("svc", "alpha_one", MetricKind::GCpu, 1),
            anti_regression("other", "zz_different"),
        ];
        let rule = MergeRule::default();
        let e = engine(rule, &regs);
        let groups = e.dedup(regs, vec![]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn all_combination_requires_every_feature() {
        let regs = vec![
            regression("svc", "hot", MetricKind::GCpu, 1),
            // Same shape, totally different name.
            regression("unrelated", "zzz", MetricKind::Throughput, 2),
        ];
        let rule = MergeRule {
            min_correlation: Some(0.9),
            min_text_similarity: Some(0.8),
            min_stack_overlap: None,
            combination: RuleCombination::All,
        };
        let e = engine(rule, &regs);
        let groups = e.dedup(regs, vec![]);
        // Correlation passes but text similarity fails -> no merge.
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn stack_overlap_feature_via_callback() {
        let regs = vec![
            regression("svc", "caller_a", MetricKind::GCpu, 1),
            anti_regression("svc", "caller_b"),
        ];
        let rule = MergeRule {
            min_correlation: None,
            min_text_similarity: None,
            min_stack_overlap: Some(0.5),
            combination: RuleCombination::Any,
        };
        let e = engine(rule, &regs).with_overlap(|_, _| 0.9);
        let groups = e.dedup(regs, vec![]);
        // Overlap alone merges even anti-correlated series.
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn merges_into_existing_groups() {
        let seed_member = regression("svc", "hot", MetricKind::GCpu, 1);
        let existing = vec![Group {
            members: vec![seed_member],
        }];
        let newcomer = regression("svc", "hot", MetricKind::GCpu, 3);
        let e = PairwiseDedup::new(MergeRule::default(), &["svc::hot.gcpu".to_string()]);
        let groups = e.dedup(vec![newcomer], existing);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 2);
    }

    #[test]
    fn empty_rule_never_merges() {
        let regs = vec![
            regression("svc", "hot", MetricKind::GCpu, 1),
            regression("svc", "hot", MetricKind::GCpu, 2),
        ];
        let rule = MergeRule {
            min_correlation: None,
            min_text_similarity: None,
            min_stack_overlap: None,
            combination: RuleCombination::Any,
        };
        let e = engine(rule, &regs);
        let groups = e.dedup(regs, vec![]);
        assert_eq!(groups.len(), 2);
    }
}
