//! Regression deduplication (§5.5).
//!
//! A single code change can regress many metrics at once; deduplication
//! merges those into one report. Two passes: [`som_dedup`] is the fast O(n)
//! SOM-based pass within one analysis window and metric type; [`pairwise_dedup`]
//! is the accurate pairwise pass across windows and metric types.
//! [`same_merger`] removes literal duplicates of the same regression seen in
//! multiple overlapping analysis windows (the "SameRegressionMerger" row of
//! Table 3). [`features`] extracts the clustering feature vectors.

pub mod features;
pub mod pairwise_dedup;
pub mod same_merger;
pub mod som_dedup;
