//! Streaming incremental scan engine: round-over-round reuse of per-series
//! scan work.
//!
//! Production FBDetect re-scans every workload on a fixed re-run interval
//! (Table 1) while the fleet keeps appending points between scans. A cold
//! scan re-reads every series under its shard lock, re-copies the window
//! range, re-fingerprints it, and re-runs every detector — even though
//! round over round almost nothing a detector looks at has changed: the
//! scan watermark `now` only moves once per re-run interval, and appends
//! land at or beyond it.
//!
//! The [`StreamingEngine`] exploits that structure:
//!
//! * **Versioned delta ingest** — [`StreamingEngine::begin_round`] pulls
//!   [`fbd_tsdb::SeriesDelta`]s in one batched store pass. An unchanged
//!   series costs O(1) (a version compare, no bytes copied); an appended
//!   series costs O(k) for k new points; only replaced/expired series pay a
//!   full copy. Workers then never touch a shard lock.
//! * **Partition-equality reuse** — each round records the absolute
//!   point-index partitions at the window boundary timestamps. Retained
//!   points are immutable and their absolute indices are stable, so equal
//!   partitions (plus an untrimmed range) imply the exact same region
//!   slices, cadence estimate, and coverage. When the partitions match the
//!   previous round at the same `now`, the previous outcome — including
//!   candidate regressions — is returned verbatim (*Level A*). When `now`
//!   advanced but the partitions still match and both scans are
//!   unsaturated, only time-invariant outcomes (quiet series, data-quality
//!   faults, empty windows) are reused (*Level B*): a candidate's
//!   `change_time` depends on the window timestamps, a quiet verdict does
//!   not.
//! * **Online detector refutation** (*Level C*) — on boundary rounds the
//!   watermark jumps, every partition moves, and Levels A/B cannot fire;
//!   historically that meant a cold detector pass over the whole fleet.
//!   With an [`OnlinePolicy`] installed, the engine instead tries to
//!   *refute* both detectors straight from the per-series [`RollingStats`]:
//!   a sound upper bound on the short-term detector's best in-region
//!   likelihood-ratio statistic ([`fbd_stats::online::max_lrt_upper_bound`])
//!   and a guard-banded replica of the long-term trend pre-filter
//!   ([`fbd_stats::online::sliding_mean_bounds`] over the shared
//!   [`prefilter_geometry`]). Both bounds are one-sided: when they hold,
//!   the cold kernels provably return `None`, so the quiet outcome is
//!   recorded without ever building a window; when either bound cannot be
//!   proven — or any window sample is non-finite — the series falls
//!   through to a full scan ([`EngineStats::online_fallbacks`]). Scan
//!   outcomes are therefore unchanged by construction, which the
//!   never-changes-an-outcome property tests pin.
//! * **Incremental data-quality gate** — a [`RollingStats`] per series
//!   maintains blockwise finite counts, so the NaN-burst gate runs from
//!   sealed block sums instead of rescanning the window, producing the
//!   store path's fault messages byte for byte.
//! * **Scratch reuse** — each state owns the window value buffer for its
//!   series; steady-state rounds extract windows into it with zero new
//!   allocations ([`EngineStats::buffer_growth`] counts the exceptions).
//!
//! Values are *oriented at ingest* (throughput is negated so a drop reads
//! as a regression, exactly as [`crate::pipeline::Pipeline`] does after
//! windowing). Negation is an exact sign-bit flip and commutes with
//! slicing, so engine windows are bit-identical to the store path's
//! oriented windows and the detectors see the same bytes either way.
//!
//! ## Sharded rounds
//!
//! Engine state is partitioned into the *same* shards as the
//! [`TsdbStore`] ([`fbd_tsdb::TsdbStore::shard_of`]): one
//! [`EngineShard`] per store shard, each behind its own lock. A round is
//! driven in three steps — [`StreamingEngine::round_prologue`] (serial:
//! advance the watermark and round counter), one
//! [`StreamingEngine::ingest_shard`] call per shard (safe to run
//! concurrently from worker threads; each call takes exactly one engine
//! shard lock and, inside the store, exactly one store shard lock), and
//! [`StreamingEngine::finish_round`] (serial: stale-state sweep). The
//! shard-per-core driver in [`crate::pipeline::Pipeline`] pins each
//! shard's ingest *and* its series' detection to one worker, so shard
//! locks are uncontended in the steady state. The serial
//! [`StreamingEngine::begin_round`] wrapper drives the same three steps
//! for single-threaded callers and tests.
//!
//! ## Known aliasing limit
//!
//! Version counters survive in the store, not the observer: a series that
//! is fully removed (e.g. by retention) and later re-created could, in
//! principle, present counters that line up with the observer's pure-append
//! history. The engine defends with a tail-continuity check — an appended
//! tail that starts before the state's last timestamp drops the state and
//! falls back to a full store scan for the round — and a fresh `Reset`
//! rebuilds it next round.

use crate::config::Threshold;
use crate::long_term::prefilter_geometry;
use crate::types::Regression;
use fbd_stats::distributions::chi_squared_p_value;
use fbd_stats::online;
use fbd_stats::streaming::RollingStats;
use fbd_tsdb::{
    snapshot_bounds, window_coverage_from_counts, windows_from_points_with_coverage, DataPoint,
    MetricKind, SeriesDelta, SeriesId, SeriesVersion, Timestamp, TsdbError, TsdbStore, WindowConfig,
    WindowedData,
};
use fbd_sync::{LockDomain, OrderedMutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// States untouched for this many rounds are dropped (series that left the
/// scan set keep no memory forever).
const STALE_ROUNDS: u64 = 64;

/// Relative guard band for the Level C refuters: blockwise pivot-centered
/// accumulation and the cold path's mean-centered prefix sums round
/// differently, but over a window of at most a few thousand f64 samples
/// their divergence is bounded by a few hundred ulps — orders of magnitude
/// under 1e-9 of the data scale. Refutations are taken only with this
/// margin to spare, so the bound staying one-sided survives any
/// re-association the optimizer performs.
const ONLINE_REL_GUARD: f64 = 1e-9;

/// Detector parameters the Level C online refuters need to mirror the cold
/// kernels' decision points exactly. Built by the pipeline from its
/// [`crate::config::DetectorConfig`] via
/// [`StreamingEngine::with_online_policy`]; an engine without a policy
/// never attempts Level C.
#[derive(Debug, Clone, Copy)]
pub struct OnlinePolicy {
    /// Short-term LRT significance (`DetectorConfig::significance`).
    pub significance: f64,
    /// Long-term regression threshold (`DetectorConfig::threshold`).
    pub threshold: Threshold,
    /// Whether the pipeline runs the long-term detector at all.
    pub long_term_enabled: bool,
    /// Long-term seasonality cap (`DetectorConfig::max_seasonal_period`),
    /// which bounds the STL trend window the pre-filter geometry must
    /// dilate over.
    pub max_period: usize,
}

/// Absolute point-index partitions of one series at the five boundary
/// timestamps window extraction uses: historic start, analysis start,
/// extended start, `now`, and the cadence-slice end `max(now, historic
/// start + 1)`. Equal partitions over an append-only state mean the exact
/// same points fall in every region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partitions {
    h: u64,
    a: u64,
    e: u64,
    n: u64,
    c: u64,
}

/// A per-series scan outcome the engine can replay on a later round.
///
/// Mirrors the pipeline's per-series verdicts without depending on its
/// private types; the pipeline converts on reuse.
// Candidates stay inline: boxing `Regression` would put an allocation on
// the per-series hot path to shrink the (rare) quiet variants.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CachedScan {
    /// A healthy scan: the short- and long-term candidates (usually `None`)
    /// and whether the series' window coverage was partial.
    Ok {
        /// Short-term change-point candidate.
        short: Option<Regression>,
        /// Long-term (gradual) candidate.
        long: Option<Regression>,
        /// Whether coverage fell below the scan's partial floor.
        partial: bool,
    },
    /// Window extraction found nothing to scan (empty historic/analysis
    /// window).
    NoData(String),
    /// The data-quality gate rejected the series (NaN burst).
    BadData(String),
}

impl CachedScan {
    /// Whether the outcome carries no scan-time-dependent field and can be
    /// replayed at a *later* `now` under equal partitions. Candidates embed
    /// `change_time`, which moves with the window timestamps, so only quiet
    /// and fault outcomes qualify.
    fn is_time_invariant(&self) -> bool {
        match self {
            CachedScan::Ok { short, long, .. } => short.is_none() && long.is_none(),
            CachedScan::NoData(_) | CachedScan::BadData(_) => true,
        }
    }
}

/// What the previous round computed for one series, and under which gate
/// inputs, so a later round can prove the outcome still holds.
#[derive(Debug, Clone)]
struct RoundArtifacts {
    now: Timestamp,
    parts: Partitions,
    /// `now >= total_span`: no window boundary saturated at zero, so the
    /// window spans are constant and partition equality implies coverage
    /// equality across different `now`s.
    unsaturated: bool,
    min_finite_fraction: f64,
    min_coverage: f64,
    outcome: CachedScan,
}

/// Opaque receipt from [`StreamingEngine::prepare`], handed back to
/// [`StreamingEngine::complete`] so the round's artifacts are recorded
/// against the partitions the windows were actually built from.
#[derive(Debug, Clone, Copy)]
pub struct RoundToken {
    parts: Partitions,
    unsaturated: bool,
    buffer_capacity: usize,
    min_finite_fraction: f64,
    min_coverage: f64,
}

/// Per-series engine state: the oriented retained points, their rolling
/// statistics, the reusable window buffer, and the last round's artifacts.
struct SeriesState {
    version: SeriesVersion,
    /// Retained points, values oriented; `points[start..]` is live.
    points: Vec<DataPoint>,
    /// Logical start of the live region (amortized compaction).
    start: usize,
    /// Absolute index of `points[0]`; absolute indices are stable across
    /// trims, which is what makes [`Partitions`] comparable across rounds.
    abs0: u64,
    /// Blockwise rolling stats over the live region, indexed absolutely.
    stats: RollingStats,
    /// Run-length-encoded timestamp gaps: `(first_gap_index, gap)` runs,
    /// where gap index `j` (absolute) is `t[j] - t[j-1]` and a run covers
    /// every index up to the next run's start. Regular cadence keeps this
    /// at one run, making the Level C cadence query O(1) instead of an
    /// O(window) timestamp rescan per round.
    gap_runs: VecDeque<(u64, u64)>,
    /// Points with timestamps below this may have been discarded; a scan
    /// whose historic window starts earlier cannot be served from here.
    trim_ts: Timestamp,
    /// Window value buffer, reused across rounds.
    buffer: Vec<f64>,
    last: Option<RoundArtifacts>,
    /// Round counter at last sighting, for stale eviction.
    touched: u64,
}

impl SeriesState {
    /// Builds a fresh state from a `Reset` delta's point copy.
    fn rebuild(
        id: &SeriesId,
        version: SeriesVersion,
        points: &[DataPoint],
        trim_ts: Timestamp,
        buffer: Vec<f64>,
        touched: u64,
    ) -> Self {
        let negate = id.metric == MetricKind::Throughput;
        let mut stats = RollingStats::new(0);
        let points: Vec<DataPoint> = points
            .iter()
            .map(|p| {
                let value = if negate { -p.value } else { p.value };
                stats.append(value);
                DataPoint {
                    timestamp: p.timestamp,
                    value,
                }
            })
            .collect();
        let mut state = SeriesState {
            version,
            points,
            start: 0,
            abs0: 0,
            stats,
            gap_runs: VecDeque::new(),
            trim_ts,
            buffer,
            last: None,
            touched,
        };
        for j in 1..state.points.len() {
            let g = state.points[j].timestamp - state.points[j - 1].timestamp;
            state.push_gap(j as u64, g);
        }
        state
    }

    /// Records the gap ending at absolute point index `j`, extending the
    /// last run when the gap repeats.
    fn push_gap(&mut self, j: u64, gap: u64) {
        if self.gap_runs.back().map(|&(_, g)| g) != Some(gap) {
            self.gap_runs.push_back((j, gap));
        }
    }

    /// Minimum positive timestamp gap over absolute gap indices
    /// `[lo, hi)` — exactly what the cadence estimate in
    /// [`fbd_tsdb::window_coverage`] computes over the matching point
    /// slice, answered from the gap runs without touching the points.
    fn min_gap(&self, lo: u64, hi: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for (k, &(start, g)) in self.gap_runs.iter().enumerate() {
            if start >= hi {
                break;
            }
            let end = self
                .gap_runs
                .get(k + 1)
                .map_or(u64::MAX, |&(next, _)| next);
            if end <= lo || g == 0 {
                continue;
            }
            best = Some(best.map_or(g, |b| b.min(g)));
        }
        best
    }

    /// Drops live points before `bound_start` (they precede every window a
    /// scan at the current watermark reads), keeping absolute indices
    /// stable and compacting the backing storage once it is half dead.
    fn trim(&mut self, bound_start: Timestamp) {
        let live = &self.points[self.start..];
        let k = live.partition_point(|p| p.timestamp < bound_start);
        if k == 0 {
            return;
        }
        self.start += k;
        self.stats.evict_to(self.abs0 + self.start as u64);
        // Retire gap runs fully behind the live region; the run covering
        // the first live gap index stays (runs are half-open on the right).
        let first_live_gap = self.abs0 + self.start as u64 + 1;
        while self.gap_runs.len() >= 2 && self.gap_runs[1].0 <= first_live_gap {
            self.gap_runs.pop_front();
        }
        if self.trim_ts < bound_start {
            self.trim_ts = bound_start;
        }
        if self.start > self.points.len() / 2 {
            let drained = self.start;
            self.points.drain(..drained);
            self.abs0 += drained as u64;
            self.start = 0;
        }
    }
}

/// What [`StreamingEngine::prepare`] decided for one series this round.
// `Reuse`/`Scan` both carry large payloads by design; this value lives for
// one match arm, so boxing would be pure overhead.
#[allow(clippy::large_enum_variant)]
pub enum Prepared {
    /// The outcome is already known — replayed from a previous round or
    /// short-circuited by the incremental data-quality gate.
    Reuse(CachedScan),
    /// Fresh detection is needed; `windows` are extracted (pre-oriented,
    /// gate already passed) and `token` must be returned via
    /// [`StreamingEngine::complete`].
    Scan {
        /// Extracted, oriented windows for the detectors.
        windows: WindowedData,
        /// Receipt for [`StreamingEngine::complete`].
        token: RoundToken,
    },
    /// The engine cannot serve this series this round (no state, counter
    /// alias, or a regressed watermark); the caller must run the plain
    /// store-path scan.
    Fallback,
}

/// Monotonic engine counters, one snapshot per call to
/// [`StreamingEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rounds ingested via [`StreamingEngine::begin_round`].
    pub rounds: u64,
    /// Series states currently held.
    pub tracked: u64,
    /// O(1) ingests: version unchanged, no bytes copied.
    pub unchanged: u64,
    /// Series extended in place from an appended tail.
    pub appended_series: u64,
    /// Total appended points ingested.
    pub appended_points: u64,
    /// Full state rebuilds from a `Reset` delta.
    pub resets: u64,
    /// States dropped (series missing, or tail-continuity defense fired).
    pub removed: u64,
    /// Level A reuse: same watermark, equal partitions — previous outcome
    /// replayed verbatim.
    pub reused_full: u64,
    /// Level B reuse: advanced watermark, equal partitions, time-invariant
    /// outcome replayed.
    pub reused_quiet: u64,
    /// Fault outcomes decided from partitions/rolling stats without
    /// building windows.
    pub gated: u64,
    /// Level C reuse: both detectors refuted online from rolling moments —
    /// no window build, no detector run.
    pub advanced_online: u64,
    /// Level C attempts that could not prove a refutation and fell through
    /// to a full scan.
    pub online_fallbacks: u64,
    /// Rounds answered without decoding or rebuilding windows — the sum of
    /// every [`Prepared::Reuse`] return (Levels A/B, fault gates, Level C):
    /// partition bookkeeping and block summaries alone settled the series.
    pub summary_hits: u64,
    /// Fresh window builds handed to the detectors.
    pub scanned: u64,
    /// Series the engine could not serve (caller fell back to the store
    /// path).
    pub fallbacks: u64,
    /// Completed scans whose window buffer had to grow — zero once a fleet
    /// reaches steady state.
    pub buffer_growth: u64,
    /// Points currently resident across all series states — the dominant
    /// term of the engine's memory footprint, including the online-detector
    /// state (rolling moments and gap runs track the same retained range).
    /// Shrinks when the stale sweep retires states or `trim` drops points
    /// behind the historic boundary.
    pub resident_points: u64,
}

#[derive(Default)]
struct Counters {
    rounds: AtomicU64,
    unchanged: AtomicU64,
    appended_series: AtomicU64,
    appended_points: AtomicU64,
    resets: AtomicU64,
    removed: AtomicU64,
    reused_full: AtomicU64,
    reused_quiet: AtomicU64,
    gated: AtomicU64,
    advanced_online: AtomicU64,
    online_fallbacks: AtomicU64,
    summary_hits: AtomicU64,
    scanned: AtomicU64,
    fallbacks: AtomicU64,
    buffer_growth: AtomicU64,
}

/// One engine shard: the per-series states whose ids route to the same
/// [`TsdbStore`] shard. Guarded by one lock so a whole shard's round can
/// be pinned to one worker.
#[derive(Default)]
struct EngineShard {
    states: BTreeMap<SeriesId, SeriesState>,
}

/// The streaming incremental scan engine. Owned by the pipeline; one
/// instance tracks one scan population under one window configuration.
pub struct StreamingEngine {
    config: WindowConfig,
    /// One shard per store shard, aligned with [`TsdbStore::shard_of`].
    /// Ranked `engine-shard` in `LOCK_ORDER.manifest`: held across
    /// [`TsdbStore::snapshot_deltas`] (store-shard ranks higher).
    shards: Vec<OrderedMutex<EngineShard>>,
    now: Timestamp,
    round: u64,
    /// Level C refuter parameters; `None` disables online advancement.
    online: Option<OnlinePolicy>,
    counters: Counters,
}

impl StreamingEngine {
    /// Creates an empty engine for the given window configuration.
    pub fn new(config: WindowConfig) -> Self {
        StreamingEngine {
            config,
            shards: (0..TsdbStore::shard_count())
                .map(|_| OrderedMutex::new(LockDomain::EngineShard, EngineShard::default()))
                .collect(),
            now: 0,
            round: 0,
            online: None,
            counters: Counters::default(),
        }
    }

    /// Enables Level C online advancement with the given detector
    /// parameters. The policy must mirror the detectors the caller actually
    /// runs on [`Prepared::Scan`] windows — the refuters assume it.
    #[must_use]
    pub fn with_online_policy(mut self, policy: OnlinePolicy) -> Self {
        self.online = Some(policy);
        self
    }

    /// Number of engine shards (equal to [`TsdbStore::shard_count`]). A
    /// round is complete once every shard that holds eligible series has
    /// been ingested via [`StreamingEngine::ingest_shard`].
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: &SeriesId) -> &OrderedMutex<EngineShard> {
        &self.shards[TsdbStore::shard_of(id) % self.shards.len()]
    }

    /// Serially opens a round at watermark `now`: advances the round
    /// counter so the per-shard ingests and the stale sweep agree on the
    /// round number. Must be called before any
    /// [`StreamingEngine::ingest_shard`] of the round.
    pub fn round_prologue(&mut self, now: Timestamp) {
        self.now = now;
        self.round += 1;
        self.counters.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Ingests one shard's deltas for the series about to be scanned at
    /// `now`. `ids` must all route to `shard_idx`
    /// ([`TsdbStore::shard_of`]); one batched store pass classifies every
    /// series as unchanged / appended / reset / missing against the
    /// engine's recorded versions, and states are updated accordingly.
    ///
    /// Thread-safe: takes exactly one engine shard lock, and the store
    /// pass — ids all routing to one store shard — takes exactly one store
    /// shard read lock, so distinct shards ingest fully in parallel.
    pub fn ingest_shard(
        &self,
        store: &TsdbStore,
        shard_idx: usize,
        ids: &[&SeriesId],
        now: Timestamp,
    ) {
        debug_assert!(
            ids.iter()
                .all(|id| TsdbStore::shard_of(id) % self.shards.len()
                    == shard_idx % self.shards.len()),
            "ids must route to the ingested shard"
        );
        let round = self.round;
        let mut guard = self.shards[shard_idx % self.shards.len()].lock();
        let shard = &mut *guard;
        let known: Vec<Option<SeriesVersion>> = ids
            .iter()
            .map(|id| shard.states.get(*id).map(|s| s.version))
            .collect();
        let deltas = store.snapshot_deltas(ids, &known, &self.config, now);
        let (bound_start, _) = snapshot_bounds(&self.config, now);
        for (id, delta) in ids.iter().zip(deltas) {
            match delta {
                SeriesDelta::Missing => {
                    if shard.states.remove(*id).is_some() {
                        self.counters.removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                SeriesDelta::Unchanged { version } => {
                    if let Some(s) = shard.states.get_mut(*id) {
                        s.version = version;
                        s.touched = round;
                        s.trim(bound_start);
                        self.counters.unchanged.fetch_add(1, Ordering::Relaxed);
                    }
                }
                SeriesDelta::Appended { version, tail } => {
                    let mut extended = false;
                    if let Some(s) = shard.states.get_mut(*id) {
                        // Tail-continuity defense against counter aliasing:
                        // a true append can never start before the state's
                        // last timestamp (appends are non-decreasing).
                        let continuous = match (s.points.last(), tail.first()) {
                            (Some(prev), Some(next)) => next.timestamp >= prev.timestamp,
                            _ => true,
                        };
                        if continuous {
                            let negate = id.metric == MetricKind::Throughput;
                            for p in tail.iter() {
                                let value = if negate { -p.value } else { p.value };
                                s.stats.append(value);
                                let prev_ts = s.points.last().map(|q| q.timestamp);
                                if let Some(prev_ts) = prev_ts {
                                    let j = s.abs0 + s.points.len() as u64;
                                    s.push_gap(j, p.timestamp - prev_ts);
                                }
                                s.points.push(DataPoint {
                                    timestamp: p.timestamp,
                                    value,
                                });
                            }
                            s.version = version;
                            s.touched = round;
                            s.trim(bound_start);
                            extended = true;
                        }
                    }
                    if extended {
                        self.counters.appended_series.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .appended_points
                            .fetch_add(tail.len() as u64, Ordering::Relaxed);
                    } else if shard.states.remove(*id).is_some() {
                        self.counters.removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                SeriesDelta::Reset { version, points } => {
                    let buffer = shard
                        .states
                        .remove(*id)
                        .map(|s| s.buffer)
                        .unwrap_or_default();
                    let state =
                        SeriesState::rebuild(id, version, &points, bound_start, buffer, round);
                    shard.states.insert((*id).clone(), state);
                    self.counters.resets.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Serially closes a round: every [`STALE_ROUNDS`] rounds, states not
    /// sighted for a full stale period are dropped. Must be called after
    /// the round's last [`StreamingEngine::ingest_shard`].
    pub fn finish_round(&mut self) {
        let round = self.round;
        if round.is_multiple_of(STALE_ROUNDS) {
            for shard in &mut self.shards {
                shard
                    .get_mut()
                    .states
                    .retain(|_, s| s.touched + STALE_ROUNDS > round);
            }
        }
    }

    /// Ingests one round's deltas for the series about to be scanned at
    /// `now`, serially: [`StreamingEngine::round_prologue`], one
    /// [`StreamingEngine::ingest_shard`] per populated shard, then
    /// [`StreamingEngine::finish_round`]. The shard-per-core driver calls
    /// the three steps itself so ingests ride the detection workers; the
    /// resulting states are identical either way. Must precede
    /// [`StreamingEngine::prepare`] each round.
    pub fn begin_round(&mut self, store: &TsdbStore, ids: &[&SeriesId], now: Timestamp) {
        self.round_prologue(now);
        let mut by_shard: Vec<Vec<&SeriesId>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for &id in ids {
            by_shard[TsdbStore::shard_of(id) % self.shards.len()].push(id);
        }
        for (idx, shard_ids) in by_shard.iter().enumerate() {
            if !shard_ids.is_empty() {
                self.ingest_shard(store, idx, shard_ids, now);
            }
        }
        self.finish_round();
    }

    /// Decides how to scan one series this round. Thread-safe: takes the
    /// series' engine shard lock; the shard-per-core driver keeps each
    /// shard on one worker, so the lock is uncontended in steady state.
    // fbd-lint::hot
    pub fn prepare(&self, id: &SeriesId, min_finite_fraction: f64, min_coverage: f64) -> Prepared {
        let mut guard = self.shard(id).lock();
        let Some(s) = guard.states.get_mut(id) else {
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            return Prepared::Fallback;
        };
        let now = self.now;
        // Boundary timestamps exactly as window extraction computes them.
        let extended_start = now.saturating_sub(self.config.extended);
        let analysis_start = extended_start.saturating_sub(self.config.analysis);
        let historic_start = analysis_start.saturating_sub(self.config.historic);
        if historic_start < s.trim_ts {
            // The watermark moved backwards past points already trimmed.
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            return Prepared::Fallback;
        }
        let base = s.abs0 + s.start as u64;
        let live = &s.points[s.start..];
        let pp = |t: Timestamp| base + live.partition_point(|p| p.timestamp < t) as u64;
        let parts = Partitions {
            h: pp(historic_start),
            a: pp(analysis_start),
            e: pp(extended_start),
            n: pp(now),
            c: pp(now.max(historic_start + 1)),
        };
        let unsaturated = now >= self.config.total_span();
        let reuse = match &s.last {
            Some(last)
                if last.parts == parts
                    && last.min_finite_fraction.to_bits() == min_finite_fraction.to_bits()
                    && last.min_coverage.to_bits() == min_coverage.to_bits() =>
            {
                let full = last.now == now;
                let quiet = now > last.now
                    && unsaturated
                    && last.unsaturated
                    && last.outcome.is_time_invariant();
                if full || quiet {
                    Some((full, last.outcome.clone()))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((full, outcome)) = reuse {
            let counter = if full {
                &self.counters.reused_full
            } else {
                &self.counters.reused_quiet
            };
            counter.fetch_add(1, Ordering::Relaxed);
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
            s.last = Some(RoundArtifacts {
                now,
                parts,
                unsaturated,
                min_finite_fraction,
                min_coverage,
                outcome: outcome.clone(),
            });
            return Prepared::Reuse(outcome);
        }
        // Fault gates straight from the partitions and the rolling finite
        // counts — byte-identical messages to the store path, no window
        // build, no value rescan.
        let gate = if parts.a == parts.h {
            Some(CachedScan::NoData(
                TsdbError::EmptyWindow("historic").to_string(),
            ))
        } else if parts.e == parts.a {
            Some(CachedScan::NoData(
                TsdbError::EmptyWindow("analysis").to_string(),
            ))
        } else {
            let mut bad = None;
            for (name, lo, hi) in [("historic", parts.h, parts.a), ("analysis", parts.a, parts.e)] {
                let len = (hi - lo) as usize;
                let finite = s.stats.finite_count(lo, hi);
                if (finite as f64) < min_finite_fraction * len as f64 {
                    bad = Some(CachedScan::BadData(format!(
                        "{name} window: only {finite}/{len} finite values"
                    )));
                    break;
                }
            }
            bad
        };
        if let Some(outcome) = gate {
            self.counters.gated.fetch_add(1, Ordering::Relaxed);
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
            s.last = Some(RoundArtifacts {
                now,
                parts,
                unsaturated,
                min_finite_fraction,
                min_coverage,
                outcome: outcome.clone(),
            });
            return Prepared::Reuse(outcome);
        }
        // Level C: try to refute both detectors online from the rolling
        // moments. Fires on boundary rounds, where the watermark jumped and
        // partition equality (Levels A/B) cannot hold; a refuted series
        // records its quiet outcome without building windows or running a
        // single detector kernel.
        if let Some(policy) = self.online {
            if self.refute_online(&policy, s, &parts) {
                // Region counts fall out of the partitions and the cadence
                // out of the incremental gap runs, so the coverage verdict
                // costs O(1) instead of an O(window) timestamp rescan.
                let coverage = window_coverage_from_counts(
                    (parts.a - parts.h) as usize,
                    (parts.e - parts.a) as usize,
                    (parts.n - parts.e) as usize,
                    s.min_gap(parts.h + 1, parts.c),
                    &self.config,
                    now,
                );
                let outcome = CachedScan::Ok {
                    short: None,
                    long: None,
                    partial: coverage.is_partial(min_coverage),
                };
                self.counters.advanced_online.fetch_add(1, Ordering::Relaxed);
                self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
                s.last = Some(RoundArtifacts {
                    now,
                    parts,
                    unsaturated,
                    min_finite_fraction,
                    min_coverage,
                    outcome: outcome.clone(),
                });
                return Prepared::Reuse(outcome);
            }
            self.counters.online_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let buffer_capacity = s.buffer.capacity();
        let buffer = std::mem::take(&mut s.buffer);
        // Fresh scans still need the value buffer, but the coverage verdict
        // comes from the partitions and the incremental gap runs — the same
        // O(1) expression the Level C arm uses — instead of the O(window)
        // timestamp rescan inside `windows_from_points_into`.
        let coverage = window_coverage_from_counts(
            (parts.a - parts.h) as usize,
            (parts.e - parts.a) as usize,
            (parts.n - parts.e) as usize,
            s.min_gap(parts.h + 1, parts.c),
            &self.config,
            now,
        );
        match windows_from_points_with_coverage(&s.points[s.start..], &self.config, now, buffer, coverage)
        {
            Ok(windows) => {
                self.counters.scanned.fetch_add(1, Ordering::Relaxed);
                Prepared::Scan {
                    windows,
                    token: RoundToken {
                        parts,
                        unsaturated,
                        buffer_capacity,
                        min_finite_fraction,
                        min_coverage,
                    },
                }
            }
            Err(e) => {
                // Unreachable given the partition gate above; mirror the
                // store path faithfully if it ever fires.
                let outcome = CachedScan::NoData(e.to_string());
                self.counters.gated.fetch_add(1, Ordering::Relaxed);
                self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
                s.last = Some(RoundArtifacts {
                    now,
                    parts,
                    unsaturated,
                    min_finite_fraction,
                    min_coverage,
                    outcome: outcome.clone(),
                });
                Prepared::Reuse(outcome)
            }
        }
    }

    /// Whether both detectors are provably quiet for the window
    /// `[parts.h, parts.n)` of this series, judged entirely from its
    /// [`RollingStats`]. `true` means a cold scan of the same window would
    /// return `Ok { short: None, long: None, .. }` — the refuters only use
    /// one-sided bounds at decision points the cold kernels reach before
    /// any fallible call, so a refutation can never mask a candidate *or*
    /// an error outcome.
    fn refute_online(&self, policy: &OnlinePolicy, s: &SeriesState, parts: &Partitions) -> bool {
        let h_len = (parts.a - parts.h) as usize;
        let a_len = (parts.e - parts.a) as usize;
        let e_len = (parts.n - parts.e) as usize;
        let n_win = h_len + a_len + e_len;
        // Both refuters reason from blockwise moments, which a non-finite
        // sample poisons; the cold kernels also diverge (short-term treats
        // non-finite as quiet, long-term runs its full path), so only
        // all-finite windows are refutable.
        if s.stats.finite_count(parts.h, parts.n) != n_win {
            return false;
        }
        self.refute_short(policy, s, parts, h_len, a_len, n_win)
            && self.refute_long(policy, s, parts, h_len, a_len, e_len, n_win)
    }

    /// Refutes the short-term change-point detector: mirrors its
    /// infallible early returns (`n < 8`, empty analysis, empty clamped
    /// split range) exactly, then upper-bounds the best in-region LRT
    /// statistic — if even the bound cannot reject H0 at the configured
    /// significance, the cold detector's own skip bound fires and it
    /// returns `None` before EM ever runs.
    fn refute_short(
        &self,
        policy: &OnlinePolicy,
        s: &SeriesState,
        parts: &Partitions,
        h_len: usize,
        a_len: usize,
        n_win: usize,
    ) -> bool {
        if n_win < 8 || a_len == 0 {
            return true;
        }
        // The cold path's clamped change-point range: candidates in
        // [analysis_begin, analysis_end - 1], clamped to [1, n - 3].
        let cp_lo = h_len.saturating_sub(1).max(1);
        let cp_hi = (h_len + a_len - 1).min(n_win - 3);
        if cp_lo > cp_hi {
            return true;
        }
        // `max_lrt_upper_bound` takes the first index of the second
        // segment (t = cp + 1), absolute.
        let t_lo = parts.h + cp_lo as u64 + 1;
        let t_hi = parts.h + cp_hi as u64 + 1;
        let Some(bound) =
            online::max_lrt_upper_bound(&s.stats, parts.h, parts.n, t_lo, t_hi, ONLINE_REL_GUARD)
        else {
            return false;
        };
        // p-values decrease in the statistic, so the bound's p-value is a
        // lower bound on the true one: failing to reject here means the
        // cold detector fails to reject too.
        chi_squared_p_value(bound, 2.0) >= policy.significance
    }

    /// Refutes the long-term detector: mirrors its infallible early return
    /// (`n < 16`) exactly, then replays the trend pre-filter over the
    /// shared [`prefilter_geometry`] with a guard band covering the
    /// blockwise-vs-prefix rounding divergence — if the guarded optimistic
    /// (baseline, current) pair cannot meet the threshold, the cold
    /// pre-filter's pair cannot either, and `detect_streaming` returns
    /// `None` before any fallible call.
    #[allow(clippy::too_many_arguments)]
    fn refute_long(
        &self,
        policy: &OnlinePolicy,
        s: &SeriesState,
        parts: &Partitions,
        h_len: usize,
        a_len: usize,
        e_len: usize,
        n_win: usize,
    ) -> bool {
        if !policy.long_term_enabled {
            return true;
        }
        if n_win < 16 {
            return true;
        }
        let Some(geo) = prefilter_geometry(n_win, h_len, a_len, policy.max_period) else {
            return false;
        };
        let [start_hist, start_anal, end_anal, end_series] = geo.regions.map(|(lo, hi)| {
            online::sliding_mean_bounds(
                &s.stats,
                parts.h,
                parts.n,
                parts.h + lo as u64,
                parts.h + hi as u64,
                geo.dilation as u64,
                geo.edge as u64,
            )
        });
        let g = ONLINE_REL_GUARD * s.stats.max_abs_upper_bound(parts.h, parts.n);
        let baseline = start_hist.0.max(start_anal.0) - g;
        let current = if e_len == 0 {
            end_anal.1
        } else {
            end_anal.1.min(end_series.1)
        } + g;
        if !baseline.is_finite() || !current.is_finite() {
            return false;
        }
        // Same monotonicity condition as the cold pre-filter: `is_met` is
        // only monotone over the guard box when the baseline bound stays
        // positive under a relative threshold.
        let monotone_safe = match policy.threshold {
            Threshold::Absolute(_) => true,
            Threshold::Relative(t) => t >= 0.0 && baseline > 0.0,
        };
        monotone_safe && !policy.threshold.is_met(baseline, current)
    }

    /// Returns a [`Prepared::Scan`]'s window buffer to the series state and
    /// records the round's outcome for future reuse. `outcome` is `None`
    /// when the detectors errored: the buffer is still reclaimed, and the
    /// previous artifacts (whose gates remain sound — retained points are
    /// immutable) are kept.
    // fbd-lint::hot
    pub fn complete(
        &self,
        id: &SeriesId,
        token: RoundToken,
        outcome: Option<CachedScan>,
        windows: WindowedData,
    ) {
        let mut guard = self.shard(id).lock();
        let Some(s) = guard.states.get_mut(id) else { return };
        let buffer = windows.into_values();
        if buffer.capacity() > token.buffer_capacity {
            self.counters.buffer_growth.fetch_add(1, Ordering::Relaxed);
        }
        s.buffer = buffer;
        if let Some(outcome) = outcome {
            s.last = Some(RoundArtifacts {
                now: self.now,
                parts: token.parts,
                unsaturated: token.unsaturated,
                min_finite_fraction: token.min_finite_fraction,
                min_coverage: token.min_coverage,
                outcome,
            });
        }
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let (mut tracked, mut resident_points) = (0u64, 0u64);
        for shard in &self.shards {
            let guard = shard.lock();
            tracked += guard.states.len() as u64;
            resident_points += guard
                .states
                .values()
                .map(|s| s.points.len() as u64)
                .sum::<u64>();
        }
        EngineStats {
            rounds: c.rounds.load(Ordering::Relaxed),
            tracked,
            unchanged: c.unchanged.load(Ordering::Relaxed),
            appended_series: c.appended_series.load(Ordering::Relaxed),
            appended_points: c.appended_points.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            removed: c.removed.load(Ordering::Relaxed),
            reused_full: c.reused_full.load(Ordering::Relaxed),
            reused_quiet: c.reused_quiet.load(Ordering::Relaxed),
            gated: c.gated.load(Ordering::Relaxed),
            advanced_online: c.advanced_online.load(Ordering::Relaxed),
            online_fallbacks: c.online_fallbacks.load(Ordering::Relaxed),
            summary_hits: c.summary_hits.load(Ordering::Relaxed),
            scanned: c.scanned.load(Ordering::Relaxed),
            fallbacks: c.fallbacks.load(Ordering::Relaxed),
            buffer_growth: c.buffer_growth.load(Ordering::Relaxed),
            resident_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 25,
        }
    }

    fn sid(name: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, name)
    }

    fn fill(store: &TsdbStore, id: &SeriesId, upto: u64) {
        for t in 0..upto {
            store.append(id, t, t as f64).unwrap();
        }
    }

    #[test]
    fn first_round_scans_then_level_a_reuses() {
        let store = TsdbStore::new();
        let id = sid("s");
        fill(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&id];
        engine.begin_round(&store, &ids, 200);
        let windows = match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { windows, token } => {
                let reference = store.windows(&id, &cfg(), 200).unwrap();
                assert_eq!(windows, reference);
                engine.complete(
                    &id,
                    token,
                    Some(CachedScan::Ok {
                        short: None,
                        long: None,
                        partial: false,
                    }),
                    windows.clone(),
                );
                windows
            }
            _ => panic!("first round must scan"),
        };
        // Appends beyond the watermark do not move any partition: Level A.
        store.append(&id, 200, 1.0).unwrap();
        store.append(&id, 205, 2.0).unwrap();
        engine.begin_round(&store, &ids, 200);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Reuse(CachedScan::Ok { short, long, .. }) => {
                assert!(short.is_none() && long.is_none());
            }
            _ => panic!("unchanged partitions at the same now must reuse"),
        }
        let stats = engine.stats();
        assert_eq!(stats.reused_full, 1);
        assert_eq!(stats.scanned, 1);
        assert_eq!(stats.appended_points, 2);
        // The reused round would have produced the same windows anyway.
        assert_eq!(store.windows(&id, &cfg(), 200).unwrap(), windows);
    }

    #[test]
    fn appends_inside_window_force_rescan_with_identical_windows() {
        let store = TsdbStore::new();
        let id = sid("s");
        fill(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&id];
        engine.begin_round(&store, &ids, 200);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { token, windows } => {
                engine.complete(
                    &id,
                    token,
                    Some(CachedScan::Ok {
                        short: None,
                        long: None,
                        partial: false,
                    }),
                    windows,
                );
            }
            _ => panic!("first round must scan"),
        }
        // The watermark advances: partitions shift, reuse must not fire for
        // a changed window, and the engine's windows must equal the store's.
        for t in 200..230 {
            store.append(&id, t, t as f64).unwrap();
        }
        engine.begin_round(&store, &ids, 230);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { windows, token } => {
                assert_eq!(windows, store.windows(&id, &cfg(), 230).unwrap());
                engine.complete(&id, token, None, windows);
            }
            _ => panic!("changed partitions must rescan"),
        }
    }

    #[test]
    fn level_b_replays_quiet_outcomes_only() {
        let store = TsdbStore::new();
        let id = sid("s");
        fill(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&id];
        engine.begin_round(&store, &ids, 200);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { token, windows } => engine.complete(
                &id,
                token,
                Some(CachedScan::Ok {
                    short: None,
                    long: None,
                    partial: false,
                }),
                windows,
            ),
            _ => panic!("first round must scan"),
        }
        // `now` advances by less than any region span with no new points:
        // every boundary moves but the partitions over the stored points
        // move too — so craft the only partition-stable case: advance now
        // beyond the last point so all regions slide over empty space.
        // With data up to t=199 and now=201, the extended region boundary
        // indices shift relative to now=200 only if points straddle them.
        engine.begin_round(&store, &ids, 201);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Reuse(CachedScan::Ok { short, long, .. }) => {
                assert!(short.is_none() && long.is_none());
                assert_eq!(engine.stats().reused_quiet, 1);
            }
            Prepared::Scan { windows, token } => {
                // Partition drift is allowed (points at the boundary): the
                // fresh windows must still match the store path.
                assert_eq!(windows, store.windows(&id, &cfg(), 201).unwrap());
                engine.complete(&id, token, None, windows);
            }
            _ => panic!("unexpected prepare outcome"),
        }
    }

    #[test]
    fn empty_and_nan_gates_match_store_messages() {
        let store = TsdbStore::new();
        let empty = sid("empty");
        store.insert_series(empty.clone(), fbd_tsdb::TimeSeries::new());
        let nans = sid("nans");
        for t in 0..200u64 {
            let v = if (100..160).contains(&t) {
                f64::NAN
            } else {
                1.0
            };
            store.append(&nans, t, v).unwrap();
        }
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&empty, &nans];
        engine.begin_round(&store, &ids, 200);
        match engine.prepare(&empty, 0.5, 0.5) {
            Prepared::Reuse(CachedScan::NoData(msg)) => {
                let store_err = store.windows(&empty, &cfg(), 200).unwrap_err();
                assert_eq!(msg, store_err.to_string());
            }
            _ => panic!("empty series must gate as NoData"),
        }
        match engine.prepare(&nans, 0.5, 0.5) {
            Prepared::Reuse(CachedScan::BadData(msg)) => {
                // The analysis window [125, 175) holds 35 NaNs out of 50.
                assert_eq!(msg, "analysis window: only 15/50 finite values");
            }
            _ => panic!("NaN burst must gate as BadData"),
        }
        assert_eq!(engine.stats().gated, 2);
        // Gate outcomes are themselves Level-A reusable.
        engine.begin_round(&store, &ids, 200);
        assert!(matches!(
            engine.prepare(&nans, 0.5, 0.5),
            Prepared::Reuse(CachedScan::BadData(_))
        ));
        assert_eq!(engine.stats().reused_full, 1);
    }

    #[test]
    fn replacement_resets_and_discontinuous_tail_falls_back() {
        let store = TsdbStore::new();
        let id = sid("s");
        fill(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&id];
        engine.begin_round(&store, &ids, 200);
        assert!(matches!(
            engine.prepare(&id, 0.5, 0.5),
            Prepared::Scan { .. }
        ));
        // Wholesale replacement: the delta is a Reset; the engine rebuilds
        // and serves windows identical to the store path.
        let replacement = fbd_tsdb::TimeSeries::from_values(0, 1, &[3.5; 210]);
        store.insert_series(id.clone(), replacement);
        engine.begin_round(&store, &ids, 200);
        assert_eq!(engine.stats().resets, 2); // first observation + replacement
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { windows, .. } => {
                assert_eq!(windows, store.windows(&id, &cfg(), 200).unwrap());
            }
            _ => panic!("replaced series must rescan"),
        }
    }

    #[test]
    fn oriented_ingest_negates_throughput_values() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::Throughput, "t");
        fill(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg());
        let ids = [&id];
        engine.begin_round(&store, &ids, 200);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { windows, .. } => {
                let mut reference = store.windows(&id, &cfg(), 200).unwrap();
                for v in reference.values_mut() {
                    *v = -*v;
                }
                assert_eq!(windows, reference);
            }
            _ => panic!("first round must scan"),
        }
    }

    #[test]
    fn stale_states_are_evicted() {
        let store = TsdbStore::new();
        let kept = sid("kept");
        let stale = sid("stale");
        fill(&store, &kept, 200);
        fill(&store, &stale, 200);
        let mut engine = StreamingEngine::new(cfg());
        engine.begin_round(&store, &[&kept, &stale], 200);
        assert_eq!(engine.stats().tracked, 2);
        // A state survives the eviction sweep until a full stale period has
        // elapsed since its last sighting, so run through two sweeps.
        for _ in 0..2 * STALE_ROUNDS {
            engine.begin_round(&store, &[&kept], 200);
        }
        assert_eq!(engine.stats().tracked, 1);
        assert!(matches!(
            engine.prepare(&stale, 0.5, 0.5),
            Prepared::Fallback
        ));
    }

    fn policy() -> OnlinePolicy {
        OnlinePolicy {
            significance: 0.01,
            threshold: Threshold::Absolute(0.1),
            long_term_enabled: true,
            max_period: 64,
        }
    }

    fn fill_flat(store: &TsdbStore, id: &SeriesId, upto: u64) {
        for t in 0..upto {
            // Tiny deterministic jitter so the series is quiet but not
            // degenerate-constant.
            let v = 1.0 + ((t * 2_654_435_761) % 1_000) as f64 / 1_000_000.0;
            store.append(id, t, v).unwrap();
        }
    }

    #[test]
    fn level_c_refutes_quiet_series_without_scanning() {
        let store = TsdbStore::new();
        let id = sid("quiet");
        fill_flat(&store, &id, 200);
        let mut engine = StreamingEngine::new(cfg()).with_online_policy(policy());
        engine.begin_round(&store, &[&id], 200);
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Reuse(CachedScan::Ok {
                short,
                long,
                partial,
            }) => {
                assert!(short.is_none() && long.is_none());
                assert!(!partial, "full-cadence series must not be partial");
            }
            _ => panic!("quiet series must advance online"),
        }
        let stats = engine.stats();
        assert_eq!(stats.advanced_online, 1);
        assert_eq!(stats.online_fallbacks, 0);
        assert_eq!(stats.scanned, 0);
        // The online outcome is itself Level-A reusable next round.
        engine.begin_round(&store, &[&id], 200);
        assert!(matches!(
            engine.prepare(&id, 0.5, 0.5),
            Prepared::Reuse(CachedScan::Ok { .. })
        ));
        assert_eq!(engine.stats().reused_full, 1);
    }

    #[test]
    fn level_c_falls_back_on_analysis_step() {
        let store = TsdbStore::new();
        let id = sid("step");
        for t in 0..200u64 {
            let v = if t < 160 { 1.0 } else { 2.0 };
            store.append(&id, t, v).unwrap();
        }
        let mut engine = StreamingEngine::new(cfg()).with_online_policy(policy());
        engine.begin_round(&store, &[&id], 200);
        // The step at t=160 sits inside the analysis window [125, 175):
        // the LRT bound cannot refute it, so Level C must fall through to
        // a full scan with windows identical to the store path.
        match engine.prepare(&id, 0.5, 0.5) {
            Prepared::Scan { windows, .. } => {
                assert_eq!(windows, store.windows(&id, &cfg(), 200).unwrap());
            }
            _ => panic!("unrefutable series must scan"),
        }
        let stats = engine.stats();
        assert_eq!(stats.advanced_online, 0);
        assert_eq!(stats.online_fallbacks, 1);
        assert_eq!(stats.scanned, 1);
    }

    #[test]
    fn stale_sweep_retires_online_detector_state() {
        // Series that leave the scan set must not keep their online state
        // (points, rolling moments, gap runs) resident forever: the sweep
        // retires them and the engine's memory footprint shrinks.
        let store = TsdbStore::new();
        let kept = sid("kept");
        fill_flat(&store, &kept, 200);
        let orphans: Vec<SeriesId> = (0..8).map(|i| sid(&format!("orphan{i}"))).collect();
        for id in &orphans {
            fill_flat(&store, id, 200);
        }
        let mut engine = StreamingEngine::new(cfg()).with_online_policy(policy());
        let mut ids: Vec<&SeriesId> = vec![&kept];
        ids.extend(orphans.iter());
        engine.begin_round(&store, &ids, 200);
        for id in &ids {
            // Quiet series: every one advances online, arming full state.
            assert!(matches!(engine.prepare(id, 0.5, 0.5), Prepared::Reuse(_)));
        }
        let before = engine.stats();
        assert_eq!(before.tracked, 9);
        assert_eq!(before.advanced_online, 9);
        assert!(before.resident_points >= 9 * 175);
        // Only `kept` stays in the scan set; two sweep periods retire the
        // rest.
        for _ in 0..2 * STALE_ROUNDS {
            engine.begin_round(&store, &[&kept], 200);
        }
        let after = engine.stats();
        assert_eq!(after.tracked, 1);
        assert!(
            after.resident_points <= before.resident_points / 8,
            "orphaned state must be retired: {} -> {}",
            before.resident_points,
            after.resident_points
        );
        assert!(matches!(
            engine.prepare(&orphans[0], 0.5, 0.5),
            Prepared::Fallback
        ));
    }

    fn partition<'a>(engine: &StreamingEngine, ids: &[&'a SeriesId]) -> Vec<Vec<&'a SeriesId>> {
        let mut by_shard: Vec<Vec<&SeriesId>> =
            (0..engine.shard_count()).map(|_| Vec::new()).collect();
        for &id in ids {
            by_shard[TsdbStore::shard_of(id) % engine.shard_count()].push(id);
        }
        by_shard
    }

    #[test]
    fn sharded_round_matches_serial_begin_round() {
        let store = TsdbStore::new();
        let ids: Vec<SeriesId> = (0..32).map(|i| sid(&format!("s{i}"))).collect();
        for id in &ids {
            fill(&store, id, 200);
        }
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let mut serial = StreamingEngine::new(cfg());
        let mut sharded = StreamingEngine::new(cfg());
        serial.begin_round(&store, &refs, 200);
        // Drive the same round through the split per-shard API.
        sharded.round_prologue(200);
        for (idx, shard_ids) in partition(&sharded, &refs).iter().enumerate() {
            if !shard_ids.is_empty() {
                sharded.ingest_shard(&store, idx, shard_ids, 200);
            }
        }
        sharded.finish_round();
        let (a, b) = (serial.stats(), sharded.stats());
        assert_eq!(a.tracked, b.tracked);
        assert_eq!(a.resets, b.resets);
        assert_eq!(a.rounds, b.rounds);
        for id in &ids {
            match (serial.prepare(id, 0.5, 0.5), sharded.prepare(id, 0.5, 0.5)) {
                (Prepared::Scan { windows: wa, .. }, Prepared::Scan { windows: wb, .. }) => {
                    assert_eq!(wa, wb);
                }
                _ => panic!("both engines must scan on first sight"),
            }
        }
    }

    #[test]
    fn concurrent_shard_ingest_is_complete() {
        let store = TsdbStore::new();
        let ids: Vec<SeriesId> = (0..64).map(|i| sid(&format!("c{i}"))).collect();
        for id in &ids {
            fill(&store, id, 200);
        }
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let mut engine = StreamingEngine::new(cfg());
        engine.round_prologue(200);
        let by_shard = partition(&engine, &refs);
        let engine_ref = &engine;
        let store_ref = &store;
        std::thread::scope(|scope| {
            for (idx, shard_ids) in by_shard.iter().enumerate() {
                if shard_ids.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    engine_ref.ingest_shard(store_ref, idx, shard_ids, 200);
                });
            }
        });
        engine.finish_round();
        assert_eq!(engine.stats().tracked, ids.len() as u64);
        for id in &ids {
            match engine.prepare(id, 0.5, 0.5) {
                Prepared::Scan { windows, token } => {
                    assert_eq!(windows, store.windows(id, &cfg(), 200).unwrap());
                    engine.complete(&id.clone(), token, None, windows);
                }
                _ => panic!("every concurrently ingested series must be served"),
            }
        }
    }
}
