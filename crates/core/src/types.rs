//! Data types flowing through the detection pipeline.

use fbd_changelog::ChangeId;
use fbd_tsdb::{SeriesId, Timestamp, WindowedData};

/// Whether a regression came from the short-term (sudden) or long-term
/// (gradual) detection path (§5.2 vs §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegressionKind {
    /// A sudden step change caught by the short-term path.
    ShortTerm,
    /// A gradual change caught by the long-term path.
    LongTerm,
}

/// A detected (candidate or confirmed) regression.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The regressed series.
    pub series: SeriesId,
    /// Short-term or long-term path.
    pub kind: RegressionKind,
    /// Index of the change point within the scanned values (historic ++
    /// analysis ++ extended concatenation).
    pub change_index: usize,
    /// Wall-clock time of the change point.
    pub change_time: Timestamp,
    /// Mean before the change point.
    pub mean_before: f64,
    /// Mean after the change point (within the analysis region).
    pub mean_after: f64,
    /// The windows the regression was detected in.
    pub windows: WindowedData,
    /// Ranked root-cause candidate change ids (filled by RCA; empty until
    /// then or when confidence is too low).
    pub root_cause_candidates: Vec<ChangeId>,
}

impl Regression {
    /// Absolute magnitude of the shift, `mean_after - mean_before`.
    pub fn magnitude(&self) -> f64 {
        self.mean_after - self.mean_before
    }

    /// Relative change, `(mean_after - mean_before) / mean_before`
    /// (infinite for a zero baseline).
    pub fn relative_change(&self) -> f64 {
        // fbd-lint::allow(float-eq): exact-zero baseline sentinel; NaN means
        // take the division path below, which propagates it
        if self.mean_before == 0.0 {
            // fbd-lint::allow(float-eq): exact-zero sentinel, same contract
            if self.mean_after == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.mean_after - self.mean_before) / self.mean_before.abs()
        }
    }

    /// The paper's "metric ID" text feature for this regression.
    pub fn metric_id(&self) -> String {
        self.series.metric_id()
    }

    /// Values after the change point (analysis + extended region).
    pub fn post_change_values(&self) -> Vec<f64> {
        let all = self.windows.all();
        all[self.change_index.saturating_add(1).min(all.len())..].to_vec()
    }
}

/// Fleet-health telemetry for one scan (or accumulated across a
/// monitoring run).
///
/// The scan supervisor isolates per-series failures instead of aborting,
/// so the outcome of a scan is no longer just reports — it is reports
/// *plus* an account of which series could not be scanned and which
/// pipeline stages were shed under budget pressure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanHealth {
    /// Series requested for this scan.
    pub series_total: usize,
    /// Series that completed detection (including partial-data ones).
    pub series_scanned: usize,
    /// Series skipped because their windows held no usable data.
    pub series_skipped: usize,
    /// Series scanned on windows sparser than the coverage floor.
    pub series_partial: usize,
    /// Series skipped because they are parked in quarantine.
    pub series_quarantined: usize,
    /// Detector panics caught and isolated by the supervisor.
    pub panicked: usize,
    /// Per-series detector errors (detection and filter stages).
    pub errored: usize,
    /// Batch-stage errors survived by degrading (SOMDedup, RCA, …).
    pub stage_errors: usize,
    /// Pipeline stages skipped this scan (deduplicated, in stage order).
    pub stages_skipped: Vec<&'static str>,
    /// Whether the scan shed stages (budget pressure or stage failure).
    pub degraded: bool,
}

impl ScanHealth {
    /// Adds another scan's health into this one (for monitoring runs).
    pub fn accumulate(&mut self, other: &ScanHealth) {
        self.series_total += other.series_total;
        self.series_scanned += other.series_scanned;
        self.series_skipped += other.series_skipped;
        self.series_partial += other.series_partial;
        self.series_quarantined += other.series_quarantined;
        self.panicked += other.panicked;
        self.errored += other.errored;
        self.stage_errors += other.stage_errors;
        for stage in &other.stages_skipped {
            if !self.stages_skipped.contains(stage) {
                self.stages_skipped.push(stage);
            }
        }
        self.degraded |= other.degraded;
    }

    /// Marks a stage as skipped (idempotent) and flags degradation.
    pub fn skip_stage(&mut self, stage: &'static str) {
        if !self.stages_skipped.contains(&stage) {
            self.stages_skipped.push(stage);
        }
        self.degraded = true;
    }
}

/// Per-stage counters for the filtering funnel (Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunnelCounters {
    /// Change points detected (§5.2.1 / §5.3).
    pub change_points: usize,
    /// Remaining after went-away detection (§5.2.2).
    pub after_went_away: usize,
    /// Remaining after seasonality detection (§5.2.3).
    pub after_seasonality: usize,
    /// Remaining after threshold filtering (Table 1).
    pub after_threshold: usize,
    /// Remaining after SameRegressionMerger.
    pub after_same_merger: usize,
    /// Remaining after SOMDedup (§5.5.1).
    pub after_som_dedup: usize,
    /// Remaining after cost-shift analysis (§5.4).
    pub after_cost_shift: usize,
    /// Remaining after PairwiseDedup (§5.5.2).
    pub after_pairwise_dedup: usize,
}

impl FunnelCounters {
    /// Adds another funnel's counts into this one.
    pub fn accumulate(&mut self, other: &FunnelCounters) {
        self.change_points += other.change_points;
        self.after_went_away += other.after_went_away;
        self.after_seasonality += other.after_seasonality;
        self.after_threshold += other.after_threshold;
        self.after_same_merger += other.after_same_merger;
        self.after_som_dedup += other.after_som_dedup;
        self.after_cost_shift += other.after_cost_shift;
        self.after_pairwise_dedup += other.after_pairwise_dedup;
    }

    /// Reduction ratio of a stage relative to the change-point count, in
    /// the Table 3 "1/x" form. Returns `None` when the stage is empty.
    pub fn reduction(&self, remaining: usize) -> Option<f64> {
        if remaining == 0 {
            None
        } else {
            Some(self.change_points as f64 / remaining as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn regression(before: f64, after: f64) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, "foo"),
            kind: RegressionKind::ShortTerm,
            change_index: 9,
            change_time: 1000,
            mean_before: before,
            mean_after: after,
            windows: WindowedData::from_regions(
                &[before; 10],
                &[after; 5],
                &[after; 5],
                900,
                1100,
            ),
            root_cause_candidates: vec![],
        }
    }

    #[test]
    fn magnitude_and_relative_change() {
        let r = regression(1.0, 1.1);
        assert!((r.magnitude() - 0.1).abs() < 1e-12);
        assert!((r.relative_change() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_change_zero_baseline() {
        let r = regression(0.0, 0.5);
        assert!(r.relative_change().is_infinite());
        let r = regression(0.0, 0.0);
        assert_eq!(r.relative_change(), 0.0);
    }

    #[test]
    fn post_change_values_slice() {
        let r = regression(1.0, 2.0);
        // 20 values total, change at index 9 -> 10 post values.
        assert_eq!(r.post_change_values().len(), 10);
        assert!(r.post_change_values().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn funnel_accumulation_and_reduction() {
        let mut a = FunnelCounters {
            change_points: 100,
            after_went_away: 10,
            ..Default::default()
        };
        let b = FunnelCounters {
            change_points: 50,
            after_went_away: 5,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.change_points, 150);
        assert_eq!(a.reduction(a.after_went_away), Some(10.0));
        assert_eq!(a.reduction(0), None);
    }
}
