//! The FBDetect workflow (Figure 6).
//!
//! Orchestrates the detectors in the paper's fast-filters-first order:
//! change-point detection → went-away → seasonality → threshold →
//! SameRegressionMerger → SOMDedup → cost-shift → PairwiseDedup → root
//! cause analysis. The long-term path (§5.3) skips the went-away and
//! seasonality filters (STL is built into it) and joins at threshold
//! filtering. Per-stage [`FunnelCounters`] reproduce Table 3.
//!
//! Series scanning is embarrassingly parallel; the expensive per-series
//! detection step fans out across threads with `crossbeam::scope`, matching
//! the paper's "scanning different time series in parallel".

use crate::change_point::ChangePointDetector;
use crate::config::DetectorConfig;
use crate::cost_shift::{CostDomainProvider, CostShiftDetector};
use crate::dedup::pairwise_dedup::{MergeRule, PairwiseDedup, RuleCombination};
use crate::dedup::same_merger::SameRegressionMerger;
use crate::dedup::som_dedup::{som_dedup, SomDedupConfig};
use crate::long_term::LongTermDetector;
use crate::root_cause::{RcaContext, RootCauseAnalyzer};
use crate::seasonality::SeasonalityDetector;
use crate::types::{FunnelCounters, Regression};
use crate::went_away::WentAwayDetector;
use crate::{DetectError, Result};
use fbd_changelog::ChangeLog;
use fbd_cluster::pairwise::Group;
use fbd_profiler::callgraph::CallGraph;
use fbd_profiler::gcpu::stack_trace_overlap;
use fbd_profiler::sample::StackSample;
use fbd_tsdb::{MetricKind, SeriesId, Timestamp, TsdbStore, WindowedData};

/// External evidence handed to a scan.
#[derive(Default)]
pub struct ScanContext<'a> {
    /// The change log, for root-cause candidates and commit cost domains.
    pub changelog: Option<&'a ChangeLog>,
    /// Stack samples spanning the scan window, for gCPU attribution and
    /// stack-overlap dedup features.
    pub samples: Option<&'a [StackSample]>,
    /// The service's call graph, for cost domains and RCA.
    pub graph: Option<&'a CallGraph>,
    /// Cost-domain providers to consult (§5.4).
    pub domain_providers: Vec<&'a dyn CostDomainProvider>,
}

/// The result of one pipeline scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Final regression reports (representatives, root-caused when
    /// possible).
    pub reports: Vec<Regression>,
    /// Per-stage funnel counters (Table 3).
    pub funnel: FunnelCounters,
}

/// One instance of the FBDetect pipeline for a workload configuration.
pub struct Pipeline {
    config: DetectorConfig,
    change_point: ChangePointDetector,
    went_away: WentAwayDetector,
    seasonality: SeasonalityDetector,
    long_term: LongTermDetector,
    cost_shift: CostShiftDetector,
    merger: SameRegressionMerger,
    rca: RootCauseAnalyzer,
    /// Groups from prior PairwiseDedup rounds (the incremental state of
    /// §5.5.2).
    existing_groups: Vec<Group<Regression>>,
    /// Number of detection worker threads.
    pub threads: usize,
}

impl Pipeline {
    /// Builds a pipeline from a workload configuration.
    pub fn new(config: DetectorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Pipeline {
            change_point: ChangePointDetector::from_config(&config),
            went_away: WentAwayDetector::from_config(&config),
            seasonality: SeasonalityDetector::from_config(&config),
            long_term: LongTermDetector::from_config(&config),
            cost_shift: CostShiftDetector::from_config(&config),
            merger: SameRegressionMerger::new(config.windows.rerun_interval),
            rca: RootCauseAnalyzer::from_config(&config),
            existing_groups: Vec::new(),
            threads: 4,
            config,
        })
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Accumulated PairwiseDedup groups across scans.
    pub fn groups(&self) -> &[Group<Regression>] {
        &self.existing_groups
    }

    /// Flips series whose *decrease* means a regression (throughput) so
    /// that, per §5.2, an increase always means a regression.
    fn orient(windows: &mut WindowedData, metric: MetricKind) {
        if metric == MetricKind::Throughput {
            for v in windows
                .historic
                .iter_mut()
                .chain(windows.analysis.iter_mut())
                .chain(windows.extended.iter_mut())
            {
                *v = -*v;
            }
        }
    }

    /// Scans the given series at time `now`, returning the surviving
    /// reports and the per-stage funnel.
    pub fn scan(
        &mut self,
        store: &TsdbStore,
        series: &[SeriesId],
        now: Timestamp,
        context: &ScanContext<'_>,
    ) -> Result<ScanOutcome> {
        let mut funnel = FunnelCounters::default();
        // --- Stage 1: change-point detection, parallel across series. ---
        let (short, long) = self.detect_parallel(store, series, now)?;
        funnel.change_points = short.len() + long.len();
        // --- Stage 2: went-away detection (short-term only). ---
        let mut kept_short = Vec::with_capacity(short.len());
        for r in short {
            if self.went_away.evaluate(&r)?.keep {
                kept_short.push(r);
            }
        }
        funnel.after_went_away = kept_short.len() + long.len();
        // --- Stage 3: seasonality detection (short-term only). ---
        let mut deseasoned = Vec::with_capacity(kept_short.len());
        for r in kept_short {
            if self.seasonality.evaluate(&r)?.keep {
                deseasoned.push(r);
            }
        }
        funnel.after_seasonality = deseasoned.len() + long.len();
        // --- Stage 4: threshold filtering (Table 1). ---
        let mut thresholded: Vec<Regression> = deseasoned
            .into_iter()
            .chain(long)
            .filter(|r| self.config.threshold.is_met(r.mean_before, r.mean_after))
            .collect();
        funnel.after_threshold = thresholded.len();
        // --- Stage 5: SameRegressionMerger. ---
        thresholded = self.merger.filter_new(thresholded);
        funnel.after_same_merger = thresholded.len();
        // --- Stage 6: SOMDedup. ---
        let som_config = SomDedupConfig {
            importance_weights: self.config.importance_weights,
            rca_lookback: self.config.rca_lookback,
            seed: 0xDED0,
        };
        let popularity = {
            let samples = context.samples;
            let regs = &thresholded;
            move |i: usize| -> f64 {
                let (Some(samples), Some(graph)) = (samples, context.graph) else {
                    return 0.0;
                };
                let Ok(frame) = graph.frame_by_name(&regs[i].series.target) else {
                    return 0.0;
                };
                if samples.is_empty() {
                    return 0.0;
                }
                samples.iter().filter(|s| s.contains(frame)).count() as f64 / samples.len() as f64
            }
        };
        let groups = som_dedup(&thresholded, context.changelog, &som_config, popularity)?;
        let mut representatives: Vec<Regression> = groups
            .iter()
            .map(|g| thresholded[g.representative].clone())
            .collect();
        funnel.after_som_dedup = representatives.len();
        // --- Stage 7: cost-shift analysis (gCPU regressions only). ---
        if !context.domain_providers.is_empty() {
            let mut kept = Vec::with_capacity(representatives.len());
            for r in representatives {
                let filtered = r.series.metric == MetricKind::GCpu
                    && self.is_cost_shift(store, &r, now, context)?;
                if !filtered {
                    kept.push(r);
                }
            }
            representatives = kept;
        }
        funnel.after_cost_shift = representatives.len();
        // --- Stage 8: PairwiseDedup into the accumulated groups. ---
        let corpus: Vec<String> = representatives
            .iter()
            .map(|r| r.metric_id())
            .chain(
                self.existing_groups
                    .iter()
                    .flat_map(|g| g.members.iter().map(|m| m.metric_id())),
            )
            .collect();
        // Default rule: correlation alone over-merges step-shaped series
        // (any two steps in the same window correlate), so require agreeing
        // text evidence. Workloads override via `config.pairwise_rule`
        // (§5.5.2's user-defined rules).
        let rule = self.config.pairwise_rule.unwrap_or(MergeRule {
            min_correlation: Some(self.config.pairwise_min_correlation),
            min_text_similarity: Some(self.config.pairwise_min_text_similarity),
            min_stack_overlap: None,
            combination: RuleCombination::All,
        });
        let mut engine = PairwiseDedup::new(rule, &corpus);
        if let (Some(samples), Some(graph)) = (context.samples, context.graph) {
            // Stack overlap resolves names through the graph.
            let samples = samples.to_vec();
            let name_to_frame: std::collections::HashMap<String, usize> = graph
                .names()
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i))
                .collect();
            engine = engine.with_overlap(move |a, b| {
                match (name_to_frame.get(a), name_to_frame.get(b)) {
                    (Some(&fa), Some(&fb)) => stack_trace_overlap(&samples, fa, fb).unwrap_or(0.0),
                    _ => 0.0,
                }
            });
        }
        let prior_group_count = self.existing_groups.len();
        let all_groups = engine.dedup(
            representatives.clone(),
            std::mem::take(&mut self.existing_groups),
        );
        let new_groups = all_groups.len().saturating_sub(prior_group_count);
        self.existing_groups = all_groups;
        funnel.after_pairwise_dedup = new_groups;
        // The reports are the representatives of the groups founded in this
        // scan (merged ones were duplicates of known regressions).
        let mut reports: Vec<Regression> = self.existing_groups[prior_group_count..]
            .iter()
            .map(|g| g.representative().clone())
            .collect();
        // --- Stage 9: root cause analysis. ---
        if let Some(log) = context.changelog {
            for r in reports.iter_mut() {
                let (before, after) = split_samples(context.samples, r.change_time);
                let rca_context = RcaContext {
                    samples_before: before,
                    samples_after: after,
                    graph: context.graph,
                };
                let ranked = self.rca.analyze(r, log, &rca_context)?;
                r.root_cause_candidates = ranked.into_iter().map(|c| c.change_id).collect();
            }
        }
        Ok(ScanOutcome { reports, funnel })
    }

    /// Stage-1 detection fanned out over worker threads.
    fn detect_parallel(
        &self,
        store: &TsdbStore,
        series: &[SeriesId],
        now: Timestamp,
    ) -> Result<(Vec<Regression>, Vec<Regression>)> {
        let threads = self.threads.clamp(1, 64);
        let chunk = series.len().div_ceil(threads).max(1);
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for slice in series.chunks(chunk) {
                handles.push(scope.spawn(move |_| {
                    let mut short = Vec::new();
                    let mut long = Vec::new();
                    for id in slice {
                        let Ok(mut windows) = store.windows(id, &self.config.windows, now) else {
                            continue;
                        };
                        Self::orient(&mut windows, id.metric);
                        if let Ok(Some(r)) = self.change_point.detect(id, &windows, now) {
                            short.push(r);
                        }
                        if self.config.long_term_enabled {
                            if let Ok(Some(r)) = self.long_term.detect(id, &windows, now) {
                                long.push(r);
                            }
                        }
                    }
                    (short, long)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("detection worker panicked"))
                .collect::<Vec<_>>()
        })
        .map_err(|_| DetectError::Stats("detection thread pool panicked".to_string()))?;
        let mut short = Vec::new();
        let mut long = Vec::new();
        for (s, l) in results {
            short.extend(s);
            long.extend(l);
        }
        // Deterministic order regardless of thread interleaving.
        short.sort_by(|a, b| a.series.cmp(&b.series));
        long.sort_by(|a, b| a.series.cmp(&b.series));
        Ok((short, long))
    }

    /// Sums the cost domain's gCPU series and applies the §5.4 rules.
    fn is_cost_shift(
        &self,
        store: &TsdbStore,
        regression: &Regression,
        now: Timestamp,
        context: &ScanContext<'_>,
    ) -> Result<bool> {
        let subroutine = regression.series.target.clone();
        let service = regression.series.service.clone();
        let windows_config = self.config.windows;
        let cp = regression.change_index;
        self.cost_shift.is_cost_shift(
            regression,
            &subroutine,
            &context.domain_providers,
            |members| {
                // Sum the members' windows, aligned with the regression's.
                let mut sum: Option<Vec<f64>> = None;
                for m in members {
                    let id = SeriesId::new(service.clone(), MetricKind::GCpu, m.clone());
                    let w = store.windows(&id, &windows_config, now).ok()?;
                    let values = w.all();
                    match sum.as_mut() {
                        None => sum = Some(values),
                        Some(acc) => {
                            if acc.len() != values.len() {
                                return None;
                            }
                            for (a, v) in acc.iter_mut().zip(values) {
                                *a += v;
                            }
                        }
                    }
                }
                let total = sum?;
                if cp + 1 >= total.len() {
                    return None;
                }
                let (before, after) = total.split_at(cp + 1);
                Some((before.to_vec(), after.to_vec()))
            },
        )
    }
}

/// Splits retained stack samples at the regression's change time.
fn split_samples(
    samples: Option<&[StackSample]>,
    change_time: Timestamp,
) -> (&[StackSample], &[StackSample]) {
    let Some(samples) = samples else {
        return (&[], &[]);
    };
    let split = samples.partition_point(|s| s.timestamp < change_time);
    samples.split_at(split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Threshold;
    use fbd_tsdb::WindowConfig;

    fn test_config(threshold: f64) -> DetectorConfig {
        let windows = WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        };
        DetectorConfig::new("test", windows, Threshold::Absolute(threshold))
    }

    fn fill_series(store: &TsdbStore, id: &SeriesId, len: u64, f: impl Fn(u64) -> f64) {
        for t in 0..len {
            store.append(id, t * 10, f(t * 10)).unwrap();
        }
    }

    fn noise(t: u64, scale: f64) -> f64 {
        let mut z = t.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * scale
    }

    #[test]
    fn end_to_end_step_regression_detected() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        // 4500 seconds of data at 10s cadence; step at t=3800.
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(
                &store,
                std::slice::from_ref(&id),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
        let r = &out.reports[0];
        assert_eq!(r.series, id);
        assert!((r.magnitude() - 0.01).abs() < 0.003);
    }

    #[test]
    fn transient_is_filtered_end_to_end() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        // A dip that recovers within the analysis+extended region.
        fill_series(&store, &id, 450, |t| {
            if (3_500..3_900).contains(&t) {
                0.03 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty(), "funnel = {:?}", out.funnel);
        assert!(out.funnel.change_points >= 1);
    }

    #[test]
    fn quiet_series_produces_nothing() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "calm");
        fill_series(&store, &id, 450, |t| 0.01 + noise(t, 0.001));
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty());
        assert_eq!(out.funnel.change_points, 0);
    }

    #[test]
    fn rescans_are_deduplicated_by_merger() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        fill_series(&store, &id, 500, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let first = p
            .scan(
                &store,
                std::slice::from_ref(&id),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        let second = p
            .scan(&store, &[id], 5_000, &ScanContext::default())
            .unwrap();
        assert_eq!(first.reports.len(), 1);
        assert!(
            second.reports.is_empty(),
            "second funnel = {:?}",
            second.funnel
        );
    }

    #[test]
    fn threshold_suppresses_small_shifts() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                0.012 + noise(t, 0.0005)
            } else {
                0.01 + noise(t, 0.0005)
            }
        });
        // Threshold far above the injected 0.002 shift.
        let mut p = Pipeline::new(test_config(0.05)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty());
        assert!(out.funnel.after_threshold == 0);
    }

    #[test]
    fn throughput_drop_counts_as_regression() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::Throughput, "");
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                80.0 + noise(t, 2.0)
            } else {
                100.0 + noise(t, 2.0)
            }
        });
        let mut p = Pipeline::new(test_config(5.0)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
    }

    #[test]
    fn funnel_counters_are_monotone() {
        let store = TsdbStore::new();
        let mut ids = Vec::new();
        for i in 0..20 {
            let id = SeriesId::new("svc", MetricKind::GCpu, format!("s{i}"));
            let step = i % 3 == 0;
            fill_series(&store, &id, 450, move |t| {
                let base = if step && t >= 3_800 { 0.02 } else { 0.01 };
                base + noise(t ^ i, 0.001)
            });
            ids.push(id);
        }
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &ids, 4_500, &ScanContext::default())
            .unwrap();
        let f = out.funnel;
        assert!(f.change_points >= f.after_went_away);
        assert!(f.after_went_away >= f.after_seasonality);
        assert!(f.after_seasonality >= f.after_threshold);
        assert!(f.after_threshold >= f.after_same_merger);
        assert!(f.after_same_merger >= f.after_som_dedup);
        assert!(f.after_som_dedup >= f.after_cost_shift);
        assert!(f.after_cost_shift >= f.after_pairwise_dedup);
    }
}
