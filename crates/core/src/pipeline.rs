//! The FBDetect workflow (Figure 6).
//!
//! Orchestrates the detectors in the paper's fast-filters-first order:
//! change-point detection → went-away → seasonality → threshold →
//! SameRegressionMerger → SOMDedup → cost-shift → PairwiseDedup → root
//! cause analysis. The long-term path (§5.3) skips the went-away and
//! seasonality filters (STL is built into it) and joins at threshold
//! filtering. Per-stage [`FunnelCounters`] reproduce Table 3.
//!
//! Series scanning is embarrassingly parallel; the expensive per-series
//! detection step fans out across threads with `crossbeam::scope`, matching
//! the paper's "scanning different time series in parallel".
//!
//! The scan acts as a fault-tolerant *supervisor*: each per-series
//! detection task runs under `catch_unwind`, failing series are parked in a
//! [`Quarantine`] with exponential backoff, a per-scan [`ScanBudget`] sheds
//! the expensive dedup stages when the deadline is blown, and every scan
//! reports [`ScanHealth`] telemetry alongside its regression reports.

use crate::change_point::ChangePointDetector;
use crate::config::DetectorConfig;
use crate::cost_shift::{CostDomainProvider, CostShiftDetector};
use crate::dedup::pairwise_dedup::{MergeRule, PairwiseDedup, RuleCombination};
use crate::dedup::same_merger::SameRegressionMerger;
use crate::dedup::som_dedup::{som_dedup, SomDedupConfig};
use crate::long_term::LongTermDetector;
use crate::profile::{StageNanos, StageProfile};
use crate::quarantine::{FaultKind, Quarantine, QuarantineConfig};
use crate::root_cause::{RcaContext, RootCauseAnalyzer};
use crate::scan_cache::{self, CacheStats, ScanCache};
use crate::scan_state::{CachedScan, EngineStats, OnlinePolicy, Prepared, StreamingEngine};
use crate::seasonality::SeasonalityDetector;
use crate::types::{FunnelCounters, Regression, ScanHealth};
use crate::went_away::WentAwayDetector;
use crate::{DetectError, Result};
use fbd_changelog::ChangeLog;
use fbd_cluster::pairwise::Group;
use fbd_profiler::callgraph::CallGraph;
use fbd_profiler::gcpu::stack_trace_overlap;
use fbd_profiler::sample::StackSample;
use fbd_tsdb::{MetricKind, SeriesId, Timestamp, TsdbStore, WindowedData};
use fbd_sync::{LockDomain, OrderedMutex};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// External evidence handed to a scan.
#[derive(Default)]
pub struct ScanContext<'a> {
    /// The change log, for root-cause candidates and commit cost domains.
    pub changelog: Option<&'a ChangeLog>,
    /// Stack samples spanning the scan window, for gCPU attribution and
    /// stack-overlap dedup features.
    pub samples: Option<&'a [StackSample]>,
    /// The service's call graph, for cost domains and RCA.
    pub graph: Option<&'a CallGraph>,
    /// Cost-domain providers to consult (§5.4).
    pub domain_providers: Vec<&'a dyn CostDomainProvider>,
}

/// The result of one pipeline scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Final regression reports (representatives, root-caused when
    /// possible).
    pub reports: Vec<Regression>,
    /// Per-stage funnel counters (Table 3).
    pub funnel: FunnelCounters,
    /// Fleet-health telemetry for this scan.
    pub health: ScanHealth,
}

/// Per-scan resource and data-quality budget.
#[derive(Debug, Clone, Copy)]
pub struct ScanBudget {
    /// Wall-clock deadline for one scan. When the cheap stages
    /// (change-point through SameRegressionMerger) have already consumed
    /// the deadline, the scan finishes in degraded mode: the expensive
    /// SOMDedup / cost-shift / PairwiseDedup / RCA stages are shed and the
    /// outcome is flagged via [`ScanHealth::degraded`]. `None` disables
    /// the deadline.
    pub deadline: Option<Duration>,
    /// Window-coverage fraction below which a series is counted as
    /// partial in [`ScanHealth`].
    pub min_coverage: f64,
    /// Minimum fraction of finite values required in the historic and
    /// analysis windows; sparser series are treated as data-quality faults
    /// and quarantined.
    pub min_finite_fraction: f64,
}

impl Default for ScanBudget {
    fn default() -> Self {
        ScanBudget {
            deadline: None,
            min_coverage: 0.5,
            min_finite_fraction: 0.5,
        }
    }
}

/// A fault-injection hook called for every series before detection.
///
/// Used by chaos drills and tests: a hook that panics for selected series
/// exercises the supervisor's panic isolation exactly where a buggy
/// detector would.
pub type ChaosHook = Arc<dyn Fn(&SeriesId) + Send + Sync>;

/// Per-series outcome inside the supervised detection fan-out. The `Ok`
/// payload is boxed: regressions are large and faults are the common case
/// at scale, so the enum stays small.
enum SeriesScan {
    Ok(Box<SeriesDetections>),
    NoData(String),
    BadData(String),
    Error(DetectError),
}

/// Detections for one healthy series.
struct SeriesDetections {
    short: Option<Regression>,
    long: Option<Regression>,
    partial: bool,
}

/// Aggregated result of the supervised detection stage.
#[derive(Default)]
struct DetectBatch {
    short: Vec<Regression>,
    long: Vec<Regression>,
    partial: usize,
    faults: Vec<(SeriesId, FaultKind, String)>,
}

/// Renders a caught panic payload for quarantine records.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One instance of the FBDetect pipeline for a workload configuration.
pub struct Pipeline {
    config: DetectorConfig,
    change_point: ChangePointDetector,
    went_away: WentAwayDetector,
    seasonality: SeasonalityDetector,
    long_term: LongTermDetector,
    cost_shift: CostShiftDetector,
    merger: SameRegressionMerger,
    rca: RootCauseAnalyzer,
    /// Groups from prior PairwiseDedup rounds (the incremental state of
    /// §5.5.2).
    existing_groups: Vec<Group<Regression>>,
    /// Failing series parked with exponential backoff.
    quarantine: Quarantine,
    /// Per-scan deadline and data-quality floors.
    pub budget: ScanBudget,
    /// Optional fault-injection hook (chaos drills).
    chaos_hook: Option<ChaosHook>,
    /// Cross-scan per-series artifact cache (seasonality, STL, SAX).
    cache: ScanCache,
    /// Streaming incremental scan engine (round-over-round reuse of window
    /// snapshots, statistics, and quiet verdicts); `None` disables it and
    /// every round re-extracts from batched store snapshots.
    streaming: Option<StreamingEngine>,
    /// Cumulative per-stage wall-time attribution (telemetry only — kept
    /// out of [`ScanHealth`]/[`FunnelCounters`] so warm-vs-cold scan
    /// fingerprints stay byte-identical).
    stage_profile: StageProfile,
    /// Number of detection worker threads.
    pub threads: usize,
}

impl Pipeline {
    /// Builds a pipeline from a workload configuration.
    pub fn new(config: DetectorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Pipeline {
            change_point: ChangePointDetector::from_config(&config),
            went_away: WentAwayDetector::from_config(&config),
            seasonality: SeasonalityDetector::from_config(&config),
            long_term: LongTermDetector::from_config(&config),
            cost_shift: CostShiftDetector::from_config(&config),
            merger: SameRegressionMerger::new(config.windows.rerun_interval),
            rca: RootCauseAnalyzer::from_config(&config),
            existing_groups: Vec::new(),
            quarantine: Quarantine::new(
                QuarantineConfig::default(),
                config.windows.rerun_interval,
            ),
            budget: ScanBudget::default(),
            chaos_hook: None,
            cache: ScanCache::new(),
            streaming: Some(
                StreamingEngine::new(config.windows).with_online_policy(Self::online_policy(&config)),
            ),
            stage_profile: StageProfile::default(),
            threads: 4,
            config,
        })
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Accumulated PairwiseDedup groups across scans.
    pub fn groups(&self) -> &[Group<Regression>] {
        &self.existing_groups
    }

    /// The quarantine registry of failing series.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Replaces the quarantine backoff policy (keeps the re-run interval).
    pub fn set_quarantine_config(&mut self, config: QuarantineConfig) {
        self.quarantine = Quarantine::new(config, self.config.windows.rerun_interval);
    }

    /// Hit/miss counters of the cross-scan artifact cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets the artifact cache's hit/miss counters (entries are kept).
    pub fn reset_cache_stats(&self) {
        self.cache.reset_stats()
    }

    /// Drops every cached cross-scan artifact.
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Enables or disables the streaming incremental scan engine.
    /// Disabling drops all engine state; re-enabling starts cold. Scan
    /// decisions, reports, and fault messages are identical either way —
    /// the engine only changes how much work a round repeats.
    pub fn set_streaming(&mut self, enabled: bool) {
        if enabled {
            if self.streaming.is_none() {
                self.streaming = Some(
                    StreamingEngine::new(self.config.windows)
                        .with_online_policy(Self::online_policy(&self.config)),
                );
            }
        } else {
            self.streaming = None;
        }
    }

    /// The Level C online-refuter parameters mirroring the detectors this
    /// pipeline actually runs, so online refutations are sound against them
    /// by construction.
    fn online_policy(config: &DetectorConfig) -> OnlinePolicy {
        OnlinePolicy {
            significance: config.significance,
            threshold: config.threshold,
            long_term_enabled: config.long_term_enabled,
            max_period: config.max_seasonal_period,
        }
    }

    /// Round-over-round reuse counters of the streaming engine, when
    /// enabled.
    pub fn streaming_stats(&self) -> Option<EngineStats> {
        self.streaming.as_ref().map(StreamingEngine::stats)
    }

    /// Cumulative per-stage wall-time totals across every scan so far.
    /// Benchmarks snapshot this before and after a round and diff with
    /// [`StageNanos::since`] to attribute that round stage by stage.
    pub fn stage_profile(&self) -> StageNanos {
        self.stage_profile.snapshot()
    }

    /// Zeroes the per-stage wall-time totals.
    pub fn reset_stage_profile(&self) {
        self.stage_profile.reset()
    }

    /// Installs a fault-injection hook called for every series before
    /// detection. A hook that panics simulates a buggy detector; the
    /// supervisor must isolate it.
    pub fn set_chaos_hook(&mut self, hook: ChaosHook) {
        self.chaos_hook = Some(hook);
    }

    /// Removes the fault-injection hook.
    pub fn clear_chaos_hook(&mut self) {
        self.chaos_hook = None;
    }

    /// Flips series whose *decrease* means a regression (throughput) so
    /// that, per §5.2, an increase always means a regression.
    fn orient(windows: &mut WindowedData, metric: MetricKind) {
        if metric == MetricKind::Throughput {
            for v in windows.values_mut() {
                *v = -*v;
            }
        }
    }

    /// Scans the given series at time `now`, returning the surviving
    /// reports, the per-stage funnel, and scan-health telemetry.
    ///
    /// The scan is supervised: per-series panics and errors are isolated,
    /// counted in [`ScanHealth`], and parked in the [`Quarantine`]; an
    /// `Err` return is reserved for infrastructure failures (e.g. the
    /// thread pool itself dying).
    pub fn scan(
        &mut self,
        store: &TsdbStore,
        series: &[SeriesId],
        now: Timestamp,
        context: &ScanContext<'_>,
    ) -> Result<ScanOutcome> {
        let scan_started = Instant::now();
        // Advance the artifact cache's round clock (drives size-capped
        // eviction of cold entries).
        self.cache.note_round();
        let mut funnel = FunnelCounters::default();
        let mut health = ScanHealth {
            series_total: series.len(),
            ..ScanHealth::default()
        };
        // --- Quarantine gate: skip series parked under backoff. Only
        // references are collected; ids are cloned solely when a fault is
        // recorded. ---
        let eligible: Vec<&SeriesId> = if self.quarantine.is_empty() {
            series.iter().collect()
        } else {
            let admitted: Vec<&SeriesId> = series
                .iter()
                .filter(|id| !self.quarantine.is_quarantined(id, now))
                .collect();
            health.series_quarantined = series.len() - admitted.len();
            admitted
        };
        // --- Streaming round open: serially advance the engine's round
        // clock; the per-shard delta ingests themselves ride the detection
        // workers below (shard-per-core), so ingest cost scales with the
        // thread sweep instead of serializing ahead of it. ---
        if let Some(engine) = self.streaming.as_mut() {
            engine.round_prologue(now);
        }
        // --- Stage 1: change-point detection, parallel across series,
        // each series isolated under `catch_unwind`. ---
        let batch = self.detect_parallel(store, &eligible, now)?;
        // --- Streaming round close: stale engine states are swept. ---
        if let Some(engine) = self.streaming.as_mut() {
            engine.finish_round();
        }
        health.series_scanned = eligible.len().saturating_sub(batch.faults.len());
        health.series_partial = batch.partial;
        for (_, kind, _) in &batch.faults {
            match kind {
                FaultKind::Panic => health.panicked += 1,
                FaultKind::DetectorError => health.errored += 1,
                FaultKind::NoData | FaultKind::DataQuality => health.series_skipped += 1,
            }
        }
        // Re-admit series that recovered, then record this scan's faults.
        if !self.quarantine.is_empty() {
            let faulted: BTreeSet<&SeriesId> = batch.faults.iter().map(|(id, _, _)| id).collect();
            for &id in &eligible {
                if !faulted.contains(id) {
                    self.quarantine.record_success(id);
                }
            }
        }
        for (id, kind, detail) in &batch.faults {
            self.quarantine.record_failure(id, *kind, detail.clone(), now);
        }
        let (short, long) = (batch.short, batch.long);
        funnel.change_points = short.len() + long.len();
        // Serial-stage wall-time attribution for this scan, flushed into
        // the shared profile at every return site.
        let mut serial = StageNanos::default();
        let mut stage_t = Instant::now();
        // --- Stage 2: went-away detection (short-term only). A filter
        // error drops the candidate and quarantines its series. Verdicts
        // are memoized per candidate: on the scheduler cadence an unmoved
        // watermark replays bit-identical candidates, so the filter's
        // `keep` decision is replayed instead of recomputed. ---
        let mut kept_short = Vec::with_capacity(short.len());
        let mut candidate_keys = Vec::with_capacity(short.len());
        for r in short {
            let key = scan_cache::candidate_key(&r);
            let keep = match self.cache.went_away_keep(&r.series, key) {
                Some(keep) => Ok(keep),
                None => self
                    .went_away
                    .evaluate_with_cache(&r, Some(&self.cache))
                    .map(|v| {
                        self.cache.store_went_away_keep(&r.series, key, v.keep);
                        v.keep
                    }),
            };
            match keep {
                Ok(true) => {
                    kept_short.push(r);
                    candidate_keys.push(key);
                }
                Ok(false) => {}
                Err(e) => {
                    health.errored += 1;
                    self.quarantine.record_failure(
                        &r.series,
                        FaultKind::DetectorError,
                        e.to_string(),
                        now,
                    );
                }
            }
        }
        funnel.after_went_away = kept_short.len() + long.len();
        serial.went_away = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // --- Stage 3: seasonality detection (short-term only). ---
        let mut deseasoned = Vec::with_capacity(kept_short.len());
        for (r, key) in kept_short.into_iter().zip(candidate_keys) {
            let keep = match self.cache.seasonality_keep(&r.series, key) {
                Some(keep) => Ok(keep),
                None => self
                    .seasonality
                    .evaluate_with_cache(&r, Some(&self.cache))
                    .map(|v| {
                        self.cache.store_seasonality_keep(&r.series, key, v.keep);
                        v.keep
                    }),
            };
            match keep {
                Ok(true) => deseasoned.push(r),
                Ok(false) => {}
                Err(e) => {
                    health.errored += 1;
                    self.quarantine.record_failure(
                        &r.series,
                        FaultKind::DetectorError,
                        e.to_string(),
                        now,
                    );
                }
            }
        }
        funnel.after_seasonality = deseasoned.len() + long.len();
        serial.seasonality = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // --- Stage 4: threshold filtering (Table 1). ---
        let mut thresholded: Vec<Regression> = deseasoned
            .into_iter()
            .chain(long)
            .filter(|r| self.config.threshold.is_met(r.mean_before, r.mean_after))
            .collect();
        funnel.after_threshold = thresholded.len();
        // --- Stage 5: SameRegressionMerger. ---
        thresholded = self.merger.filter_new(thresholded);
        funnel.after_same_merger = thresholded.len();
        serial.threshold = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // --- Budget check: the cheap, high-recall stages are done. If the
        // deadline is already blown, shed the expensive dedup/RCA stages
        // and ship the thresholded candidates as-is (graceful
        // degradation: noisier output beats no output). ---
        if self
            .budget
            .deadline
            .is_some_and(|d| scan_started.elapsed() >= d)
        {
            health.skip_stage("som_dedup");
            health.skip_stage("cost_shift");
            health.skip_stage("pairwise_dedup");
            health.skip_stage("root_cause");
            funnel.after_som_dedup = thresholded.len();
            funnel.after_cost_shift = thresholded.len();
            funnel.after_pairwise_dedup = thresholded.len();
            self.stage_profile.add(&serial);
            return Ok(ScanOutcome {
                reports: thresholded,
                funnel,
                health,
            });
        }
        // --- Stage 6: SOMDedup. ---
        let som_config = SomDedupConfig {
            importance_weights: self.config.importance_weights,
            rca_lookback: self.config.rca_lookback,
            seed: 0xDED0,
        };
        let popularity = {
            let samples = context.samples;
            let regs = &thresholded;
            move |i: usize| -> f64 {
                let (Some(samples), Some(graph)) = (samples, context.graph) else {
                    return 0.0;
                };
                let Ok(frame) = graph.frame_by_name(&regs[i].series.target) else {
                    return 0.0;
                };
                if samples.is_empty() {
                    return 0.0;
                }
                samples.iter().filter(|s| s.contains(frame)).count() as f64 / samples.len() as f64
            }
        };
        // A batch-stage failure degrades to pass-through rather than
        // aborting the scan: every candidate is its own representative.
        let mut representatives: Vec<Regression> =
            match som_dedup(&thresholded, context.changelog, &som_config, popularity) {
                Ok(groups) => {
                    // Representatives are moved out of the candidate pool by
                    // index (group representatives are distinct), not cloned.
                    let mut pool: Vec<Option<Regression>> =
                        thresholded.into_iter().map(Some).collect();
                    // Representatives are distinct pool indices; a bad index
                    // drops the group instead of panicking the scan.
                    groups
                        .iter()
                        .filter_map(|g| pool.get_mut(g.representative).and_then(Option::take))
                        .collect()
                }
                Err(_) => {
                    health.stage_errors += 1;
                    health.skip_stage("som_dedup");
                    thresholded
                }
            };
        funnel.after_som_dedup = representatives.len();
        serial.som_dedup = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // --- Stage 7: cost-shift analysis (gCPU regressions only). An
        // analysis error fails open (the regression is kept). ---
        if !context.domain_providers.is_empty() {
            let mut kept = Vec::with_capacity(representatives.len());
            for r in representatives {
                let filtered = r.series.metric == MetricKind::GCpu
                    && match self.is_cost_shift(store, &r, now, context) {
                        Ok(is_shift) => is_shift,
                        Err(_) => {
                            health.stage_errors += 1;
                            false
                        }
                    };
                if !filtered {
                    kept.push(r);
                }
            }
            representatives = kept;
        }
        funnel.after_cost_shift = representatives.len();
        serial.cost_shift = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // --- Stage 8: PairwiseDedup into the accumulated groups. ---
        let corpus: Vec<String> = representatives
            .iter()
            .map(|r| r.metric_id())
            .chain(
                self.existing_groups
                    .iter()
                    .flat_map(|g| g.members.iter().map(|m| m.metric_id())),
            )
            .collect();
        // Default rule: correlation alone over-merges step-shaped series
        // (any two steps in the same window correlate), so require agreeing
        // text evidence. Workloads override via `config.pairwise_rule`
        // (§5.5.2's user-defined rules).
        let rule = self.config.pairwise_rule.unwrap_or(MergeRule {
            min_correlation: Some(self.config.pairwise_min_correlation),
            min_text_similarity: Some(self.config.pairwise_min_text_similarity),
            min_stack_overlap: None,
            combination: RuleCombination::All,
        });
        let mut engine = PairwiseDedup::new(rule, &corpus);
        if let (Some(samples), Some(graph)) = (context.samples, context.graph) {
            // Stack overlap resolves names through the graph.
            let samples = samples.to_vec();
            let name_to_frame: std::collections::BTreeMap<String, usize> = graph
                .names()
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i))
                .collect();
            engine = engine.with_overlap(move |a, b| {
                match (name_to_frame.get(a), name_to_frame.get(b)) {
                    (Some(&fa), Some(&fb)) => stack_trace_overlap(&samples, fa, fb).unwrap_or(0.0),
                    _ => 0.0,
                }
            });
        }
        let prior_group_count = self.existing_groups.len();
        let all_groups = engine.dedup(representatives, std::mem::take(&mut self.existing_groups));
        let new_groups = all_groups.len().saturating_sub(prior_group_count);
        self.existing_groups = all_groups;
        funnel.after_pairwise_dedup = new_groups;
        serial.pairwise_dedup = stage_t.elapsed().as_nanos() as u64;
        stage_t = Instant::now();
        // The reports are the representatives of the groups founded in this
        // scan (merged ones were duplicates of known regressions).
        let mut reports: Vec<Regression> = self.existing_groups[prior_group_count..]
            .iter()
            .map(|g| g.representative().clone())
            .collect();
        // --- Stage 9: root cause analysis. An RCA failure leaves the
        // report un-attributed rather than losing it. ---
        if let Some(log) = context.changelog {
            for r in reports.iter_mut() {
                let (before, after) = split_samples(context.samples, r.change_time);
                let rca_context = RcaContext {
                    samples_before: before,
                    samples_after: after,
                    graph: context.graph,
                };
                match self.rca.analyze(r, log, &rca_context) {
                    Ok(ranked) => {
                        r.root_cause_candidates =
                            ranked.into_iter().map(|c| c.change_id).collect();
                    }
                    Err(_) => health.stage_errors += 1,
                }
            }
        }
        serial.root_cause = stage_t.elapsed().as_nanos() as u64;
        self.stage_profile.add(&serial);
        Ok(ScanOutcome {
            reports,
            funnel,
            health,
        })
    }

    /// Runs detection on freshly extracted *raw* windows (the store /
    /// snapshot path): data-quality gate, orientation, then the detectors.
    /// Never called outside the `catch_unwind` isolation in
    /// [`Pipeline::detect_parallel`].
    fn detect_windowed(
        &self,
        id: &SeriesId,
        windows: fbd_tsdb::Result<WindowedData>,
        now: Timestamp,
        prof: &mut StageNanos,
    ) -> SeriesScan {
        let mut windows = match windows {
            Ok(w) => w,
            Err(e) => return SeriesScan::NoData(e.to_string()),
        };
        // Data-quality gate: a window drowned in non-finite values (a NaN
        // burst from a broken collector) is a fault, not an input.
        for (name, values) in [("historic", windows.historic()), ("analysis", windows.analysis())] {
            let finite = values.iter().filter(|v| v.is_finite()).count();
            if (finite as f64) < self.budget.min_finite_fraction * values.len() as f64 {
                return SeriesScan::BadData(format!(
                    "{name} window: only {finite}/{} finite values",
                    values.len()
                ));
            }
        }
        let partial = windows.coverage.is_partial(self.budget.min_coverage);
        Self::orient(&mut windows, id.metric);
        let t = Instant::now();
        let short = match self.change_point.detect(id, &windows, now) {
            Ok(r) => r,
            Err(e) => return SeriesScan::Error(e),
        };
        prof.short_term += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let long = if self.config.long_term_enabled {
            match self.long_term.detect_cached(id, &windows, now, Some(&self.cache)) {
                Ok(r) => r,
                Err(e) => return SeriesScan::Error(e),
            }
        } else {
            None
        };
        prof.long_term += t.elapsed().as_nanos() as u64;
        SeriesScan::Ok(Box::new(SeriesDetections {
            short,
            long,
            partial,
        }))
    }

    /// Runs detection for one series through the streaming engine: replays
    /// reusable outcomes, runs the detectors on engine-extracted
    /// (pre-oriented, pre-gated) windows, and falls back to the plain store
    /// path when the engine cannot serve the series. Decisions are
    /// bit-identical to [`Pipeline::detect_windowed`] on the same data.
    fn detect_one_streaming(
        &self,
        store: &TsdbStore,
        engine: &StreamingEngine,
        id: &SeriesId,
        now: Timestamp,
        prof: &mut StageNanos,
    ) -> SeriesScan {
        let t = Instant::now();
        let prepared = engine.prepare(id, self.budget.min_finite_fraction, self.budget.min_coverage);
        prof.windowing += t.elapsed().as_nanos() as u64;
        match prepared {
            Prepared::Fallback => {
                let t = Instant::now();
                let windows = store.windows(id, &self.config.windows, now);
                prof.windowing += t.elapsed().as_nanos() as u64;
                self.detect_windowed(id, windows, now, prof)
            }
            Prepared::Reuse(outcome) => match outcome {
                CachedScan::Ok {
                    short,
                    long,
                    partial,
                } => SeriesScan::Ok(Box::new(SeriesDetections {
                    short,
                    long,
                    partial,
                })),
                CachedScan::NoData(detail) => SeriesScan::NoData(detail),
                CachedScan::BadData(detail) => SeriesScan::BadData(detail),
            },
            Prepared::Scan { windows, token } => {
                // Engine windows are already oriented and passed the
                // data-quality gate in `prepare`.
                let partial = windows.coverage.is_partial(self.budget.min_coverage);
                let t = Instant::now();
                let short = match self.change_point.detect(id, &windows, now) {
                    Ok(r) => r,
                    Err(e) => {
                        engine.complete(id, token, None, windows);
                        return SeriesScan::Error(e);
                    }
                };
                prof.short_term += t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                let long = if self.config.long_term_enabled {
                    match self.long_term.detect_streaming(id, &windows, now, &self.cache) {
                        Ok(r) => r,
                        Err(e) => {
                            engine.complete(id, token, None, windows);
                            return SeriesScan::Error(e);
                        }
                    }
                } else {
                    None
                };
                prof.long_term += t.elapsed().as_nanos() as u64;
                let outcome = CachedScan::Ok {
                    short: short.clone(),
                    long: long.clone(),
                    partial,
                };
                let t = Instant::now();
                engine.complete(id, token, Some(outcome), windows);
                prof.complete += t.elapsed().as_nanos() as u64;
                SeriesScan::Ok(Box::new(SeriesDetections {
                    short,
                    long,
                    partial,
                }))
            }
        }
    }

    /// Folds one supervised per-series result into a worker's partial
    /// batch (shared by both fan-out drivers).
    fn record_scan(
        part: &mut DetectBatch,
        id: &SeriesId,
        outcome: std::result::Result<SeriesScan, Box<dyn std::any::Any + Send>>,
    ) {
        match outcome {
            Ok(SeriesScan::Ok(detections)) => {
                part.short.extend(detections.short);
                part.long.extend(detections.long);
                part.partial += usize::from(detections.partial);
            }
            Ok(SeriesScan::NoData(detail)) => {
                part.faults.push((id.clone(), FaultKind::NoData, detail));
            }
            Ok(SeriesScan::BadData(detail)) => {
                part.faults.push((id.clone(), FaultKind::DataQuality, detail));
            }
            Ok(SeriesScan::Error(e)) => {
                part.faults
                    .push((id.clone(), FaultKind::DetectorError, e.to_string()));
            }
            Err(payload) => {
                part.faults
                    .push((id.clone(), FaultKind::Panic, panic_message(payload)));
            }
        }
    }

    /// Merges the workers' partial batches and restores a deterministic
    /// order regardless of thread interleaving.
    fn join_batches(joined: Vec<std::thread::Result<DetectBatch>>) -> Result<DetectBatch> {
        let mut batch = DetectBatch::default();
        for worker in joined {
            // Per-series panics are already caught; a worker dying here
            // means the supervisor loop itself broke.
            let part = worker.map_err(panic_message).map_err(DetectError::Panic)?;
            batch.short.extend(part.short);
            batch.long.extend(part.long);
            batch.partial += part.partial;
            batch.faults.extend(part.faults);
        }
        batch.short.sort_by(|a, b| a.series.cmp(&b.series));
        batch.long.sort_by(|a, b| a.series.cmp(&b.series));
        batch.faults.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(batch)
    }

    /// Stage-1 detection fanned out over worker threads, with each series
    /// supervised: a panicking or erroring detector loses that series
    /// only, never the scan.
    ///
    /// With the streaming engine on, workers steal whole *shards*
    /// ([`Pipeline::detect_sharded`]): the shard's delta ingest and its
    /// series' detection stay on one core, so engine/store shard locks are
    /// uncontended and the 1→N thread sweep scales with the shard count.
    /// Lock acquisition order across both drivers follows the workspace
    /// hierarchy in `LOCK_ORDER.manifest` (engine-shard before
    /// store-shard, scan-cache as a leaf), enforced statically by
    /// fbd-lint's `lock-order` rule and dynamically by the
    /// [`fbd_sync`] debug validator.
    /// With the engine off, workers steal series one at a time from a
    /// shared atomic cursor instead of walking fixed chunks, so a run of
    /// slow seasonal/STL series cannot straggle a whole chunk while other
    /// workers sit idle — every thread stays busy until the list is
    /// drained.
    fn detect_parallel(
        &self,
        store: &TsdbStore,
        series: &[&SeriesId],
        now: Timestamp,
    ) -> Result<DetectBatch> {
        if let Some(engine) = self.streaming.as_ref() {
            return self.detect_sharded(store, series, now, engine);
        }
        let threads = self.threads.clamp(1, 64).min(series.len().max(1));
        // Engine off: extract every series' windows up front in one batched
        // snapshot (one short read-lock hold per shard), so the workers
        // below never touch a shard lock. Each slot is taken exactly once
        // by whichever worker steals its index.
        let t = Instant::now();
        let snapshots: Vec<OrderedMutex<Option<fbd_tsdb::Result<WindowedData>>>> = store
            .snapshot_windows(series, &self.config.windows, now)
            .into_iter()
            .map(|r| OrderedMutex::new(LockDomain::SnapshotSlot, Some(r)))
            .collect();
        self.stage_profile.add(&StageNanos {
            windowing: t.elapsed().as_nanos() as u64,
            ..StageNanos::default()
        });
        let next = AtomicUsize::new(0);
        let joined = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let snapshots = &snapshots;
                handles.push(scope.spawn(move |_| {
                    let mut part = DetectBatch::default();
                    let mut prof = StageNanos::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&id) = series.get(i) else { break };
                        let detect = |prof: &mut StageNanos| {
                            if let Some(hook) = &self.chaos_hook {
                                hook(id);
                            }
                            let windows = match snapshots.get(i).and_then(|slot| slot.lock().take()) {
                                Some(w) => w,
                                None => store.windows(id, &self.config.windows, now),
                            };
                            self.detect_windowed(id, windows, now, prof)
                        };
                        Self::record_scan(
                            &mut part,
                            id,
                            catch_unwind(AssertUnwindSafe(|| detect(&mut prof))),
                        );
                    }
                    self.stage_profile.add(&prof);
                    part
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<_>>()
        })
        .map_err(|_| DetectError::Panic("detection thread pool panicked".to_string()))?;
        Self::join_batches(joined)
    }

    /// Shard-per-core detection drive for the streaming engine. Eligible
    /// series are partitioned by their store shard
    /// ([`fbd_tsdb::TsdbStore::shard_of`]) and workers steal whole shards
    /// from an atomic cursor: a worker first ingests its shard's deltas
    /// (one engine shard lock, one store shard read lock), then runs
    /// supervised detection for every series in the shard. One shard's
    /// locks therefore stay on one core for the whole round, and distinct
    /// shards proceed fully in parallel — scan throughput scales with
    /// threads up to the store's shard count.
    /// [`StreamingEngine::round_prologue`] and
    /// [`StreamingEngine::finish_round`] bracket this call in
    /// [`Pipeline::scan`].
    fn detect_sharded(
        &self,
        store: &TsdbStore,
        series: &[&SeriesId],
        now: Timestamp,
        engine: &StreamingEngine,
    ) -> Result<DetectBatch> {
        let shard_count = engine.shard_count();
        let mut by_shard: Vec<Vec<&SeriesId>> = (0..shard_count).map(|_| Vec::new()).collect();
        for &id in series {
            by_shard[TsdbStore::shard_of(id) % shard_count].push(id);
        }
        let work: Vec<(usize, Vec<&SeriesId>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, ids)| !ids.is_empty())
            .collect();
        let threads = self.threads.clamp(1, 64).min(work.len().max(1));
        let next = AtomicUsize::new(0);
        let joined = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let work = &work;
                handles.push(scope.spawn(move |_| {
                    let mut part = DetectBatch::default();
                    let mut prof = StageNanos::default();
                    loop {
                        let w = next.fetch_add(1, Ordering::Relaxed);
                        let Some((shard_idx, ids)) = work.get(w) else { break };
                        let t = Instant::now();
                        engine.ingest_shard(store, *shard_idx, ids, now);
                        prof.ingest += t.elapsed().as_nanos() as u64;
                        for &id in ids {
                            let detect = |prof: &mut StageNanos| {
                                if let Some(hook) = &self.chaos_hook {
                                    hook(id);
                                }
                                self.detect_one_streaming(store, engine, id, now, prof)
                            };
                            Self::record_scan(
                                &mut part,
                                id,
                                catch_unwind(AssertUnwindSafe(|| detect(&mut prof))),
                            );
                        }
                    }
                    self.stage_profile.add(&prof);
                    part
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<_>>()
        })
        .map_err(|_| DetectError::Panic("detection thread pool panicked".to_string()))?;
        Self::join_batches(joined)
    }

    /// Sums the cost domain's gCPU series and applies the §5.4 rules.
    fn is_cost_shift(
        &self,
        store: &TsdbStore,
        regression: &Regression,
        now: Timestamp,
        context: &ScanContext<'_>,
    ) -> Result<bool> {
        let subroutine = regression.series.target.clone();
        let service = regression.series.service.clone();
        let windows_config = self.config.windows;
        let cp = regression.change_index;
        self.cost_shift.is_cost_shift(
            regression,
            &subroutine,
            &context.domain_providers,
            |members| {
                // Sum the members' windows, aligned with the regression's.
                let mut sum: Option<Vec<f64>> = None;
                for m in members {
                    let id = SeriesId::new(service.clone(), MetricKind::GCpu, m.clone());
                    let w = store.windows(&id, &windows_config, now).ok()?;
                    let values = w.into_values();
                    match sum.as_mut() {
                        None => sum = Some(values),
                        Some(acc) => {
                            if acc.len() != values.len() {
                                return None;
                            }
                            for (a, v) in acc.iter_mut().zip(values) {
                                *a += v;
                            }
                        }
                    }
                }
                let total = sum?;
                if cp + 1 >= total.len() {
                    return None;
                }
                let (before, after) = total.split_at(cp + 1);
                Some((before.to_vec(), after.to_vec()))
            },
        )
    }
}

/// Splits retained stack samples at the regression's change time.
fn split_samples(
    samples: Option<&[StackSample]>,
    change_time: Timestamp,
) -> (&[StackSample], &[StackSample]) {
    let Some(samples) = samples else {
        return (&[], &[]);
    };
    let split = samples.partition_point(|s| s.timestamp < change_time);
    samples.split_at(split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Threshold;
    use fbd_tsdb::WindowConfig;

    fn test_config(threshold: f64) -> DetectorConfig {
        let windows = WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        };
        DetectorConfig::new("test", windows, Threshold::Absolute(threshold))
    }

    fn fill_series(store: &TsdbStore, id: &SeriesId, len: u64, f: impl Fn(u64) -> f64) {
        for t in 0..len {
            store.append(id, t * 10, f(t * 10)).unwrap();
        }
    }

    fn noise(t: u64, scale: f64) -> f64 {
        let mut z = t.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * scale
    }

    #[test]
    fn end_to_end_step_regression_detected() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        // 4500 seconds of data at 10s cadence; step at t=3800.
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(
                &store,
                std::slice::from_ref(&id),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
        let r = &out.reports[0];
        assert_eq!(r.series, id);
        assert!((r.magnitude() - 0.01).abs() < 0.003);
    }

    #[test]
    fn transient_is_filtered_end_to_end() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        // A dip that recovers within the analysis+extended region.
        fill_series(&store, &id, 450, |t| {
            if (3_500..3_900).contains(&t) {
                0.03 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty(), "funnel = {:?}", out.funnel);
        assert!(out.funnel.change_points >= 1);
    }

    #[test]
    fn quiet_series_produces_nothing() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "calm");
        fill_series(&store, &id, 450, |t| 0.01 + noise(t, 0.001));
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty());
        assert_eq!(out.funnel.change_points, 0);
    }

    #[test]
    fn rescans_are_deduplicated_by_merger() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        fill_series(&store, &id, 500, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let first = p
            .scan(
                &store,
                std::slice::from_ref(&id),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        let second = p
            .scan(&store, &[id], 5_000, &ScanContext::default())
            .unwrap();
        assert_eq!(first.reports.len(), 1);
        assert!(
            second.reports.is_empty(),
            "second funnel = {:?}",
            second.funnel
        );
    }

    #[test]
    fn threshold_suppresses_small_shifts() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                0.012 + noise(t, 0.0005)
            } else {
                0.01 + noise(t, 0.0005)
            }
        });
        // Threshold far above the injected 0.002 shift.
        let mut p = Pipeline::new(test_config(0.05)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.reports.is_empty());
        assert!(out.funnel.after_threshold == 0);
    }

    #[test]
    fn throughput_drop_counts_as_regression() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::Throughput, "");
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                80.0 + noise(t, 2.0)
            } else {
                100.0 + noise(t, 2.0)
            }
        });
        let mut p = Pipeline::new(test_config(5.0)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
    }

    #[test]
    fn panicking_detector_is_isolated_and_quarantined() {
        let store = TsdbStore::new();
        let hot = SeriesId::new("svc", MetricKind::GCpu, "hot");
        let calm = SeriesId::new("svc", MetricKind::GCpu, "calm");
        let poison = SeriesId::new("svc", MetricKind::GCpu, "poison");
        fill_series(&store, &hot, 450, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        fill_series(&store, &calm, 450, |t| 0.01 + noise(t, 0.001));
        fill_series(&store, &poison, 450, |t| 0.01 + noise(t, 0.001));
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        p.set_chaos_hook(std::sync::Arc::new(|id: &SeriesId| {
            assert!(id.target != "poison", "injected detector bug");
        }));
        let out = p
            .scan(
                &store,
                &[hot.clone(), calm, poison.clone()],
                4_500,
                &ScanContext::default(),
            )
            .expect("a panicking series must not abort the scan");
        // The healthy regression is still caught.
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].series, hot);
        // The panic is counted and the series parked.
        assert_eq!(out.health.panicked, 1);
        assert_eq!(out.health.series_scanned, 2);
        let entry = p.quarantine().entry(&poison).expect("poison quarantined");
        assert_eq!(entry.kind, crate::quarantine::FaultKind::Panic);
        assert!(entry.detail.contains("injected detector bug"));
        assert!(p.quarantine().is_quarantined(&poison, 4_500));
        // Within the backoff span the series is skipped entirely.
        let out2 = p
            .scan(&store, std::slice::from_ref(&poison), 4_600, &ScanContext::default())
            .unwrap();
        assert_eq!(out2.health.series_quarantined, 1);
        assert_eq!(out2.health.panicked, 0);
        // After the hook is fixed and the backoff expires, it is
        // re-admitted on the next successful scan.
        p.clear_chaos_hook();
        let out3 = p
            .scan(&store, std::slice::from_ref(&poison), 5_000, &ScanContext::default())
            .unwrap();
        assert_eq!(out3.health.series_scanned, 1);
        assert!(p.quarantine().entry(&poison).is_none());
    }

    #[test]
    fn zero_deadline_sheds_expensive_stages() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        fill_series(&store, &id, 450, |t| {
            if t >= 3_800 {
                0.02 + noise(t, 0.001)
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        p.budget.deadline = Some(std::time::Duration::ZERO);
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert!(out.health.degraded);
        assert_eq!(
            out.health.stages_skipped,
            vec!["som_dedup", "cost_shift", "pairwise_dedup", "root_cause"]
        );
        // Degraded mode still ships the thresholded candidates.
        assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
        // Funnel counters stay monotone through the shed stages.
        assert_eq!(out.funnel.after_pairwise_dedup, out.funnel.after_same_merger);
    }

    #[test]
    fn nan_burst_is_a_data_quality_fault() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "broken-collector");
        // The analysis window [3000, 4000) is drowned in NaN.
        fill_series(&store, &id, 450, |t| {
            if (3_000..4_000).contains(&t) {
                f64::NAN
            } else {
                0.01 + noise(t, 0.001)
            }
        });
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(
                &store,
                std::slice::from_ref(&id),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        assert!(out.reports.is_empty());
        assert_eq!(out.health.series_skipped, 1);
        assert_eq!(out.health.series_scanned, 0);
        let entry = p.quarantine().entry(&id).unwrap();
        assert_eq!(entry.kind, crate::quarantine::FaultKind::DataQuality);
    }

    #[test]
    fn missing_data_is_skipped_and_quarantined() {
        let store = TsdbStore::new();
        let empty = SeriesId::new("svc", MetricKind::GCpu, "empty");
        store.insert_series(empty.clone(), fbd_tsdb::TimeSeries::new());
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(
                &store,
                std::slice::from_ref(&empty),
                4_500,
                &ScanContext::default(),
            )
            .unwrap();
        assert_eq!(out.health.series_skipped, 1);
        assert_eq!(
            p.quarantine().entry(&empty).unwrap().kind,
            crate::quarantine::FaultKind::NoData
        );
    }

    #[test]
    fn sparse_series_counts_as_partial() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "gappy");
        // 10s cadence, but 70% of the analysis window's samples dropped.
        for t in 0..450u64 {
            let ts = t * 10;
            if (3_000..4_000).contains(&ts) && ts % 100 != 0 {
                continue;
            }
            store.append(&id, ts, 0.01 + noise(ts, 0.001)).unwrap();
        }
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &[id], 4_500, &ScanContext::default())
            .unwrap();
        assert_eq!(out.health.series_partial, 1);
        assert_eq!(out.health.series_scanned, 1);
    }

    #[test]
    fn funnel_counters_are_monotone() {
        let store = TsdbStore::new();
        let mut ids = Vec::new();
        for i in 0..20 {
            let id = SeriesId::new("svc", MetricKind::GCpu, format!("s{i}"));
            let step = i % 3 == 0;
            fill_series(&store, &id, 450, move |t| {
                let base = if step && t >= 3_800 { 0.02 } else { 0.01 };
                base + noise(t ^ i, 0.001)
            });
            ids.push(id);
        }
        let mut p = Pipeline::new(test_config(0.005)).unwrap();
        let out = p
            .scan(&store, &ids, 4_500, &ScanContext::default())
            .unwrap();
        let f = out.funnel;
        assert!(f.change_points >= f.after_went_away);
        assert!(f.after_went_away >= f.after_seasonality);
        assert!(f.after_seasonality >= f.after_threshold);
        assert!(f.after_threshold >= f.after_same_merger);
        assert!(f.after_same_merger >= f.after_som_dedup);
        assert!(f.after_som_dedup >= f.after_cost_shift);
        assert!(f.after_cost_shift >= f.after_pairwise_dedup);
    }
}
