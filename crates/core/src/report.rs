//! Human-readable regression reports.
//!
//! Production FBDetect files tickets; this module renders the equivalent
//! plain-text report: the regressed metric, magnitude, timing, and ranked
//! root-cause candidates.

use crate::types::{Regression, RegressionKind};
use fbd_changelog::ChangeLog;
use std::fmt::Write as _;

/// Renders one regression as a report block.
pub fn render(regression: &Regression, log: Option<&ChangeLog>) -> String {
    let mut out = String::new();
    let kind = match regression.kind {
        RegressionKind::ShortTerm => "short-term",
        RegressionKind::LongTerm => "long-term",
    };
    let _ = writeln!(out, "REGRESSION [{kind}] {}", regression.metric_id());
    let _ = writeln!(
        out,
        "  change at t={} (index {})",
        regression.change_time, regression.change_index
    );
    let _ = writeln!(
        out,
        "  mean: {:.6} -> {:.6}  (absolute {:+.6}, relative {:+.2}%)",
        regression.mean_before,
        regression.mean_after,
        regression.magnitude(),
        regression.relative_change() * 100.0
    );
    if regression.root_cause_candidates.is_empty() {
        let _ = writeln!(out, "  root cause: no high-confidence candidates");
    } else {
        let _ = writeln!(out, "  root-cause candidates (ranked):");
        for (rank, id) in regression.root_cause_candidates.iter().enumerate() {
            match log.and_then(|l| l.get(*id)) {
                Some(change) => {
                    let _ = writeln!(
                        out,
                        "    {}. change #{id}: \"{}\" by {} (deployed t={})",
                        rank + 1,
                        change.title,
                        change.author,
                        change.deploy_time
                    );
                }
                None => {
                    let _ = writeln!(out, "    {}. change #{id}", rank + 1);
                }
            }
        }
    }
    out
}

/// Renders a batch of regressions with a summary header.
pub fn render_batch(regressions: &[Regression], log: Option<&ChangeLog>) -> String {
    let mut out = format!("{} regression(s) reported\n", regressions.len());
    for r in regressions {
        out.push_str(&render(r, log));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_changelog::{Change, ChangeKind};
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression(candidates: Vec<u64>) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, "hot"),
            kind: RegressionKind::ShortTerm,
            change_index: 5,
            change_time: 1_234,
            mean_before: 0.01,
            mean_after: 0.02,
            windows: WindowedData::from_regions(&[0.01; 5], &[0.02; 5], &[], 0, 1),
            root_cause_candidates: candidates,
        }
    }

    #[test]
    fn report_contains_key_fields() {
        let text = render(&regression(vec![]), None);
        assert!(text.contains("svc::hot.gcpu"));
        assert!(text.contains("t=1234"));
        assert!(text.contains("+0.010000"));
        assert!(text.contains("no high-confidence candidates"));
    }

    #[test]
    fn report_resolves_change_titles() {
        let mut log = ChangeLog::new();
        log.record(Change {
            id: 42,
            kind: ChangeKind::Code,
            service: "svc".into(),
            deploy_time: 1_200,
            modified_subroutines: vec!["hot".into()],
            title: "Add expensive check".into(),
            summary: String::new(),
            files: vec![],
            author: "dev7".into(),
        });
        let text = render(&regression(vec![42]), Some(&log));
        assert!(text.contains("Add expensive check"));
        assert!(text.contains("dev7"));
        assert!(text.contains("1. change #42"));
    }

    #[test]
    fn batch_header_counts() {
        let text = render_batch(&[regression(vec![]), regression(vec![])], None);
        assert!(text.starts_with("2 regression(s)"));
    }
}
