//! The seasonality detector (§5.2.3).
//!
//! Removes seasonality and re-checks whether the regression persists. The
//! flow: an autocorrelation gate decides whether seasonality is present at
//! all; if so, STL decomposes the series, the seasonal component is
//! removed, and a pseudo z-score — the deseasonalized median shift across
//! the change point normalized by the residual standard deviation — is
//! computed in both the analysis and the extended window. The regression is
//! attributed to seasonality (filtered) only when *both* z-scores fall
//! below the threshold.

use crate::config::DetectorConfig;
use crate::scan_cache::ScanCache;
use crate::types::Regression;
use crate::Result;
use fbd_stats::acf;
use fbd_stats::descriptive;
use fbd_stats::stl::{decompose, StlConfig};

/// Outcome of the seasonality check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalityVerdict {
    /// Whether significant seasonality was found (ACF gate).
    pub seasonal: bool,
    /// Pseudo z-score within the analysis window (NaN when not seasonal).
    pub z_analysis: f64,
    /// Pseudo z-score including the extended window (NaN when not
    /// seasonal or the extended window is empty).
    pub z_extended: f64,
    /// `true` keeps the regression; `false` filters it as seasonal.
    pub keep: bool,
}

/// The seasonality detector.
#[derive(Debug, Clone)]
pub struct SeasonalityDetector {
    acf_threshold: f64,
    z_threshold: f64,
    max_period: usize,
}

impl SeasonalityDetector {
    /// Creates a detector from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        SeasonalityDetector {
            acf_threshold: config.seasonality_acf_threshold,
            z_threshold: config.seasonality_z_threshold,
            max_period: config.max_seasonal_period,
        }
    }

    /// Evaluates the check; `verdict.keep == true` means the regression is
    /// not explained by seasonality.
    pub fn evaluate(&self, regression: &Regression) -> Result<SeasonalityVerdict> {
        self.evaluate_with_cache(regression, None)
    }

    /// [`Self::evaluate`] with a cross-scan [`ScanCache`]: the ACF gate and
    /// the STL decomposition are reused when this series' window is
    /// unchanged since a previous round (the long-term detector seeds the
    /// same seasonality key during the parallel stage).
    pub fn evaluate_with_cache(
        &self,
        regression: &Regression,
        cache: Option<&ScanCache>,
    ) -> Result<SeasonalityVerdict> {
        let data = regression.windows.all();
        let cp = regression.change_index;
        // ACF gate: no significant periodicity, nothing to remove.
        let gate = match cache {
            Some(c) => c.seasonality(
                &regression.series,
                data,
                2,
                self.max_period,
                self.acf_threshold,
            )?,
            None => acf::find_seasonality(data, 2, self.max_period, self.acf_threshold)?,
        };
        let Some(season) = gate else {
            return Ok(SeasonalityVerdict {
                seasonal: false,
                z_analysis: f64::NAN,
                z_extended: f64::NAN,
                keep: true,
            });
        };
        if data.len() < season.period * 2 || cp + 2 >= data.len() || cp < 2 {
            return Ok(SeasonalityVerdict {
                seasonal: true,
                z_analysis: f64::NAN,
                z_extended: f64::NAN,
                keep: true,
            });
        }
        let decomposition = match cache {
            Some(c) => c.decomposition(&regression.series, data, season.period)?,
            None => decompose(data, StlConfig::for_period(season.period))?,
        };
        let deseasonalized = decomposition.deseasonalized();
        let residual_std = descriptive::std_dev(&decomposition.residual)?.max(1e-12);
        // z over the analysis window region.
        let analysis_end =
            (regression.windows.historic_len() + regression.windows.analysis_len()).min(data.len());
        let z_analysis = self.z_score(&deseasonalized[..analysis_end], cp, residual_std)?;
        // z including the extended window (when present).
        let z_extended = if regression.windows.extended_len() == 0 {
            z_analysis
        } else {
            self.z_score(&deseasonalized, cp, residual_std)?
        };
        // Filter only when BOTH windows say the deseasonalized shift is
        // insignificant.
        let keep = !(z_analysis.abs() < self.z_threshold && z_extended.abs() < self.z_threshold);
        Ok(SeasonalityVerdict {
            seasonal: true,
            z_analysis,
            z_extended,
            keep,
        })
    }

    /// Median shift across `cp`, normalized by the residual deviation.
    fn z_score(&self, deseasonalized: &[f64], cp: usize, residual_std: f64) -> Result<f64> {
        if cp + 2 >= deseasonalized.len() {
            return Ok(f64::NAN);
        }
        let before = descriptive::median(&deseasonalized[..=cp])?;
        let after = descriptive::median(&deseasonalized[cp + 1..])?;
        Ok((after - before) / residual_std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression_from(
        historic: Vec<f64>,
        analysis: Vec<f64>,
        extended: Vec<f64>,
        change_index: usize,
        mean_before: f64,
        mean_after: f64,
    ) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::Cpu, ""),
            kind: RegressionKind::ShortTerm,
            change_index,
            change_time: 0,
            mean_before,
            mean_after,
            windows: WindowedData::from_regions(&historic, &analysis, &extended, 0, 1),
            root_cause_candidates: vec![],
        }
    }

    fn detector() -> SeasonalityDetector {
        SeasonalityDetector {
            acf_threshold: 0.4,
            z_threshold: 2.0,
            max_period: 30,
        }
    }

    fn sine(n: usize, period: usize, amp: f64, base: f64) -> Vec<f64> {
        (0..n)
            .map(|i| base + amp * (i as f64 / period as f64 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn seasonal_upswing_is_filtered() {
        // A pure daily cycle: a "regression" caught on the rising edge must
        // be attributed to seasonality.
        let full = sine(480, 24, 1.0, 10.0);
        let historic = full[..380].to_vec();
        let analysis = full[380..440].to_vec();
        let extended = full[440..].to_vec();
        // Pretend the change point is where the cycle last crossed upward.
        let r = regression_from(historic, analysis, extended, 390, 10.0, 10.8);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.seasonal);
        assert!(!v.keep, "verdict = {v:?}");
    }

    #[test]
    fn real_step_on_seasonal_series_is_kept() {
        // Seasonality plus a genuine +2 step late in the series.
        let mut full = sine(480, 24, 1.0, 10.0);
        for v in full[400..].iter_mut() {
            *v += 2.0;
        }
        let historic = full[..380].to_vec();
        let analysis = full[380..440].to_vec();
        let extended = full[440..].to_vec();
        let r = regression_from(historic, analysis, extended, 399, 10.0, 12.0);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.seasonal);
        assert!(v.keep, "verdict = {v:?}");
        assert!(v.z_analysis > 2.0 || v.z_extended > 2.0);
    }

    #[test]
    fn non_seasonal_series_passes_through() {
        let noise: Vec<f64> = (0..300)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                1.0 + ((z >> 33) % 100) as f64 / 1000.0
            })
            .collect();
        let historic = noise[..200].to_vec();
        let analysis = noise[200..].to_vec();
        let r = regression_from(historic, analysis, vec![], 220, 1.0, 1.05);
        let v = detector().evaluate(&r).unwrap();
        assert!(!v.seasonal);
        assert!(v.keep);
        assert!(v.z_analysis.is_nan());
    }

    #[test]
    fn both_windows_must_be_quiet_to_filter() {
        // Seasonal series whose extended window carries a true step: the
        // extended z-score alone must keep the regression.
        let mut full = sine(480, 24, 1.0, 10.0);
        for v in full[440..].iter_mut() {
            *v += 3.0;
        }
        let historic = full[..380].to_vec();
        let analysis = full[380..440].to_vec();
        let extended = full[440..].to_vec();
        let r = regression_from(historic, analysis, extended, 400, 10.0, 10.5);
        let v = detector().evaluate(&r).unwrap();
        assert!(v.keep, "verdict = {v:?}");
    }
}
