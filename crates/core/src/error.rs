//! Error type for the detection pipeline.

use std::fmt;

/// Errors produced by the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// A statistics routine failed.
    Stats(String),
    /// A time-series store operation failed.
    Tsdb(String),
    /// A clustering operation failed.
    Cluster(String),
    /// A profiler operation failed.
    Profiler(String),
    /// Configuration was invalid.
    InvalidConfig(&'static str),
    /// Not enough data for the requested analysis.
    InsufficientData(&'static str),
    /// A detection task panicked; the payload is the panic message.
    Panic(String),
    /// An internal invariant did not hold (surfaced as an error instead of
    /// panicking on a fallible path).
    Internal(&'static str),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Stats(e) => write!(f, "stats error: {e}"),
            DetectError::Tsdb(e) => write!(f, "tsdb error: {e}"),
            DetectError::Cluster(e) => write!(f, "cluster error: {e}"),
            DetectError::Profiler(e) => write!(f, "profiler error: {e}"),
            DetectError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            DetectError::InsufficientData(what) => write!(f, "insufficient data: {what}"),
            DetectError::Panic(payload) => write!(f, "detection task panicked: {payload}"),
            DetectError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for DetectError {}

impl From<fbd_stats::StatsError> for DetectError {
    fn from(e: fbd_stats::StatsError) -> Self {
        DetectError::Stats(e.to_string())
    }
}

impl From<fbd_tsdb::TsdbError> for DetectError {
    fn from(e: fbd_tsdb::TsdbError) -> Self {
        DetectError::Tsdb(e.to_string())
    }
}

impl From<fbd_cluster::ClusterError> for DetectError {
    fn from(e: fbd_cluster::ClusterError) -> Self {
        DetectError::Cluster(e.to_string())
    }
}

impl From<fbd_profiler::ProfilerError> for DetectError {
    fn from(e: fbd_profiler::ProfilerError) -> Self {
        DetectError::Profiler(e.to_string())
    }
}
