//! Continuous monitoring: the re-run loop (Table 1's "Re-run Interval").
//!
//! Production FBDetect periodically re-scans every workload at its
//! configured interval. [`MonitoringScheduler`] drives one pipeline over
//! simulated time: scans fire every `rerun_interval`, reports accumulate,
//! planned-change suppression applies (§8), and per-report **detection
//! latency** — change-point time to first report — is tracked, the
//! timeliness metric behind the paper's window-length trade-offs (§6.2).

use crate::known_changes::PlannedChangeRegistry;
use crate::pipeline::{Pipeline, ScanContext};
use crate::types::Regression;
use crate::Result;
use fbd_tsdb::{SeriesId, Timestamp, TsdbStore};

/// One report with its detection timing.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// The regression.
    pub regression: Regression,
    /// Scan time that produced the report.
    pub reported_at: Timestamp,
    /// `reported_at - change_time`: how long the regression ran before
    /// FBDetect reported it.
    pub detection_latency: u64,
}

/// The accumulated outcome of a monitoring run.
#[derive(Debug, Clone, Default)]
pub struct MonitoringOutcome {
    /// All reports, in report order.
    pub reports: Vec<TimedReport>,
    /// Reports suppressed because a planned change explained them, with
    /// the explanation.
    pub suppressed: Vec<(Regression, String)>,
    /// Number of scans performed.
    pub scans: usize,
    /// Accumulated funnel across all scans.
    pub funnel: crate::types::FunnelCounters,
    /// Accumulated scan-health telemetry across all scans: series
    /// scanned/skipped/quarantined, panics isolated, stages shed.
    pub health: crate::types::ScanHealth,
}

impl MonitoringOutcome {
    /// Median detection latency across reports, if any.
    pub fn median_latency(&self) -> Option<u64> {
        if self.reports.is_empty() {
            return None;
        }
        let mut latencies: Vec<u64> = self.reports.iter().map(|r| r.detection_latency).collect();
        latencies.sort_unstable();
        Some(latencies[latencies.len() / 2])
    }
}

/// Drives a pipeline over simulated time.
pub struct MonitoringScheduler {
    pipeline: Pipeline,
    planned: PlannedChangeRegistry,
}

impl MonitoringScheduler {
    /// Wraps a pipeline.
    pub fn new(pipeline: Pipeline) -> Self {
        MonitoringScheduler {
            pipeline,
            planned: PlannedChangeRegistry::new(),
        }
    }

    /// The planned-change registry (mutable, for operator registration).
    pub fn planned_changes_mut(&mut self) -> &mut PlannedChangeRegistry {
        &mut self.planned
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The wrapped pipeline, mutable (budget, quarantine policy, chaos
    /// hooks).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Runs scans from `start` to `end` at the pipeline's re-run interval,
    /// scanning `series` in `store` each time.
    pub fn run(
        &mut self,
        store: &TsdbStore,
        series: &[SeriesId],
        start: Timestamp,
        end: Timestamp,
        context: &ScanContext<'_>,
    ) -> Result<MonitoringOutcome> {
        let interval = self.pipeline.config().windows.rerun_interval.max(1);
        let mut outcome = MonitoringOutcome::default();
        let mut now = start;
        while now <= end {
            let scan = self.pipeline.scan(store, series, now, context)?;
            outcome.scans += 1;
            outcome.funnel.accumulate(&scan.funnel);
            outcome.health.accumulate(&scan.health);
            let (kept, suppressed) = self.planned.partition(scan.reports);
            outcome.suppressed.extend(suppressed);
            for regression in kept {
                let detection_latency = now.saturating_sub(regression.change_time);
                outcome.reports.push(TimedReport {
                    regression,
                    reported_at: now,
                    detection_latency,
                });
            }
            now += interval;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectorConfig, Threshold};
    use crate::known_changes::PlannedChange;
    use fbd_tsdb::{MetricKind, TimeSeries, WindowConfig};

    fn noisy(t: u64, scale: f64) -> f64 {
        let mut z = t.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * scale
    }

    fn step_store(step_at: u64, total: u64) -> (TsdbStore, SeriesId) {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "hot");
        let values: Vec<f64> = (0..total / 10)
            .map(|i| {
                let t = i * 10;
                if t >= step_at {
                    0.02 + noisy(t, 0.001)
                } else {
                    0.01 + noisy(t, 0.001)
                }
            })
            .collect();
        store.insert_series(id.clone(), TimeSeries::from_values(0, 10, &values));
        (store, id)
    }

    fn config() -> DetectorConfig {
        DetectorConfig::new(
            "sched",
            WindowConfig {
                historic: 3_000,
                analysis: 1_000,
                extended: 500,
                rerun_interval: 500,
            },
            Threshold::Absolute(0.005),
        )
    }

    #[test]
    fn reports_once_with_latency() {
        let (store, id) = step_store(5_200, 8_000);
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        let outcome = scheduler
            .run(&store, &[id], 5_000, 8_000, &ScanContext::default())
            .unwrap();
        assert!(outcome.scans >= 6);
        assert_eq!(outcome.reports.len(), 1, "funnel = {:?}", outcome.funnel);
        let report = &outcome.reports[0];
        // Reported within a few re-run intervals of the change.
        assert!(
            report.detection_latency <= 2_000,
            "latency = {}",
            report.detection_latency
        );
        assert_eq!(outcome.median_latency(), Some(report.detection_latency));
    }

    #[test]
    fn planned_change_suppresses_report() {
        let (store, id) = step_store(5_200, 8_000);
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        scheduler.planned_changes_mut().register(PlannedChange {
            description: "capacity drain".into(),
            start: 5_000,
            end: 6_000,
            services: vec!["svc".into()],
            metrics: vec![],
            expect_increase: Some(true),
        });
        let outcome = scheduler
            .run(&store, &[id], 5_000, 8_000, &ScanContext::default())
            .unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.suppressed[0].1, "capacity drain");
    }

    #[test]
    fn quarantine_backoff_limits_retries_across_reruns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let (store, id) = step_store(5_200, 8_000);
        let poison = SeriesId::new("svc", MetricKind::GCpu, "poison");
        store.insert_series(
            poison.clone(),
            TimeSeries::from_values(0, 10, &vec![0.01; 800]),
        );
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        let attempts = Arc::new(AtomicUsize::new(0));
        let seen = attempts.clone();
        scheduler
            .pipeline_mut()
            .set_chaos_hook(Arc::new(move |sid: &SeriesId| {
                if sid.target == "poison" {
                    seen.fetch_add(1, Ordering::SeqCst);
                    panic!("always broken");
                }
            }));
        // 7 scans at t = 5000, 5500, …, 8000 (interval 500).
        let outcome = scheduler
            .run(
                &store,
                &[id, poison.clone()],
                5_000,
                8_000,
                &ScanContext::default(),
            )
            .unwrap();
        assert_eq!(outcome.scans, 7);
        // Exponential backoff (1, 2, 4 intervals): attempts at 5000, 5500,
        // 6500 only — the remaining four scans skip the parked series.
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(outcome.health.panicked, 3);
        assert_eq!(outcome.health.series_quarantined, 4);
        // The healthy series' regression is still reported.
        assert_eq!(outcome.reports.len(), 1, "funnel = {:?}", outcome.funnel);
        let entry = scheduler.pipeline().quarantine().entry(&poison).unwrap();
        assert_eq!(entry.consecutive_failures, 3);
    }

    #[test]
    fn quiet_store_reports_nothing() {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "calm");
        let values: Vec<f64> = (0..800).map(|i| 0.01 + noisy(i * 10, 0.001)).collect();
        store.insert_series(id.clone(), TimeSeries::from_values(0, 10, &values));
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        let outcome = scheduler
            .run(&store, &[id], 5_000, 8_000, &ScanContext::default())
            .unwrap();
        assert!(outcome.reports.is_empty());
        assert!(outcome.median_latency().is_none());
    }
}
