//! Correlating regressions with planned operational changes (§8).
//!
//! "Planned capacity changes also trigger false positives, so we plan to
//! correlate regressions with these known changes." This module implements
//! that future-work item: operators register planned changes (capacity
//! resizes, region failovers, experiment ramp-ups) with a time window and
//! the services/metrics they are expected to move; a regression whose
//! change point falls inside a matching window is annotated as *explained*
//! and can be suppressed from reports.

use crate::types::Regression;
use fbd_tsdb::MetricKind;

/// A planned operational change registered by an operator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedChange {
    /// Operator-facing description (e.g. "us-east capacity -20%").
    pub description: String,
    /// Window in which effects are expected, `[start, end)` seconds.
    pub start: u64,
    /// End of the expected-effects window.
    pub end: u64,
    /// Affected services; empty = all services.
    pub services: Vec<String>,
    /// Metric kinds the change is expected to move; empty = all kinds.
    pub metrics: Vec<MetricKind>,
    /// Expected direction: `true` when the metric is expected to increase.
    /// `None` when either direction is expected.
    pub expect_increase: Option<bool>,
}

impl PlannedChange {
    /// Whether this planned change explains the given regression.
    pub fn explains(&self, regression: &Regression) -> bool {
        if regression.change_time < self.start || regression.change_time >= self.end {
            return false;
        }
        if !self.services.is_empty() && !self.services.contains(&regression.series.service) {
            return false;
        }
        if !self.metrics.is_empty() && !self.metrics.contains(&regression.series.metric) {
            return false;
        }
        match self.expect_increase {
            None => true,
            Some(expect_up) => {
                let increased = regression.magnitude() > 0.0;
                increased == expect_up
            }
        }
    }
}

/// A registry of planned changes with suppression queries.
#[derive(Debug, Clone, Default)]
pub struct PlannedChangeRegistry {
    changes: Vec<PlannedChange>,
}

impl PlannedChangeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a planned change.
    pub fn register(&mut self, change: PlannedChange) {
        self.changes.push(change);
    }

    /// Number of registered changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The first planned change explaining the regression, if any.
    pub fn explanation(&self, regression: &Regression) -> Option<&PlannedChange> {
        self.changes.iter().find(|c| c.explains(regression))
    }

    /// Splits a report batch into (unexplained, explained-with-reason).
    pub fn partition(
        &self,
        reports: Vec<Regression>,
    ) -> (Vec<Regression>, Vec<(Regression, String)>) {
        let mut unexplained = Vec::new();
        let mut explained = Vec::new();
        for r in reports {
            match self.explanation(&r) {
                Some(c) => explained.push((r, c.description.clone())),
                None => unexplained.push(r),
            }
        }
        (unexplained, explained)
    }

    /// Drops planned changes whose windows ended before `cutoff`.
    pub fn expire_before(&mut self, cutoff: u64) {
        self.changes.retain(|c| c.end > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_tsdb::{SeriesId, WindowedData};

    fn regression(service: &str, metric: MetricKind, change_time: u64, up: bool) -> Regression {
        let (before, after) = if up { (1.0, 2.0) } else { (2.0, 1.0) };
        Regression {
            series: SeriesId::new(service, metric, "x"),
            kind: RegressionKind::ShortTerm,
            change_index: 5,
            change_time,
            mean_before: before,
            mean_after: after,
            windows: WindowedData::from_regions(&[before; 5], &[after; 5], &[], 0, 1),
            root_cause_candidates: vec![],
        }
    }

    fn capacity_change() -> PlannedChange {
        PlannedChange {
            description: "us-east capacity -20%".into(),
            start: 1_000,
            end: 2_000,
            services: vec!["web".into()],
            metrics: vec![MetricKind::Cpu],
            expect_increase: Some(true),
        }
    }

    #[test]
    fn explains_matching_regression() {
        let c = capacity_change();
        assert!(c.explains(&regression("web", MetricKind::Cpu, 1_500, true)));
    }

    #[test]
    fn window_service_metric_and_direction_all_matter() {
        let c = capacity_change();
        // Outside the window.
        assert!(!c.explains(&regression("web", MetricKind::Cpu, 999, true)));
        assert!(!c.explains(&regression("web", MetricKind::Cpu, 2_000, true)));
        // Wrong service.
        assert!(!c.explains(&regression("db", MetricKind::Cpu, 1_500, true)));
        // Wrong metric.
        assert!(!c.explains(&regression("web", MetricKind::Memory, 1_500, true)));
        // Wrong direction.
        assert!(!c.explains(&regression("web", MetricKind::Cpu, 1_500, false)));
    }

    #[test]
    fn empty_filters_match_everything() {
        let c = PlannedChange {
            description: "global maintenance".into(),
            start: 0,
            end: 10_000,
            services: vec![],
            metrics: vec![],
            expect_increase: None,
        };
        assert!(c.explains(&regression("anything", MetricKind::Latency, 5, false)));
    }

    #[test]
    fn partition_splits_reports() {
        let mut reg = PlannedChangeRegistry::new();
        reg.register(capacity_change());
        let reports = vec![
            regression("web", MetricKind::Cpu, 1_500, true), // Explained.
            regression("web", MetricKind::Cpu, 5_000, true), // Not.
        ];
        let (unexplained, explained) = reg.partition(reports);
        assert_eq!(unexplained.len(), 1);
        assert_eq!(explained.len(), 1);
        assert_eq!(explained[0].1, "us-east capacity -20%");
        assert_eq!(unexplained[0].change_time, 5_000);
    }

    #[test]
    fn expiry_drops_stale_changes() {
        let mut reg = PlannedChangeRegistry::new();
        reg.register(capacity_change());
        reg.expire_before(3_000);
        assert!(reg.is_empty());
        let mut reg = PlannedChangeRegistry::new();
        reg.register(capacity_change());
        reg.expire_before(1_500);
        assert_eq!(reg.len(), 1);
    }
}
