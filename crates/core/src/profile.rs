//! Per-stage wall-time attribution for scan rounds.
//!
//! The round-cadence benchmark asserts that warm (streaming) and cold scan
//! outcomes are byte-identical, fingerprinting `reports + funnel + health`
//! every round. Wall time is never byte-identical, so stage timings must
//! live *outside* [`crate::types::ScanHealth`] and
//! [`crate::types::FunnelCounters`]: this module keeps them in a separate
//! atomic accumulator on the pipeline, read through
//! [`crate::pipeline::Pipeline::stage_profile`]. Workers accumulate into a
//! plain [`StageNanos`] on the stack and flush once per shard/worker, so
//! the per-series cost is two monotonic clock reads, not contended atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Plain per-stage nanosecond totals; the unit both of worker-local
/// accumulation and of [`StageProfile::snapshot`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageNanos {
    /// Streaming-engine delta ingest (tail copies from the store).
    pub ingest: u64,
    /// Window production: engine `prepare` (partitioning, replay checks,
    /// window assembly) or store extraction on the non-engine path.
    pub windowing: u64,
    /// Short-term change-point detection.
    pub short_term: u64,
    /// Long-term / trend detection (incl. seasonality search + STL).
    pub long_term: u64,
    /// Streaming-engine outcome recording and buffer reclaim.
    pub complete: u64,
    /// Went-away filtering of short-term candidates.
    pub went_away: u64,
    /// Seasonality filtering of short-term candidates.
    pub seasonality: u64,
    /// Threshold filter plus SameRegressionMerger.
    pub threshold: u64,
    /// SOMDedup grouping.
    pub som_dedup: u64,
    /// Cost-shift analysis.
    pub cost_shift: u64,
    /// PairwiseDedup into accumulated groups.
    pub pairwise_dedup: u64,
    /// Root cause analysis.
    pub root_cause: u64,
}

impl StageNanos {
    /// `(name, nanos)` pairs in pipeline stage order.
    pub fn named(&self) -> [(&'static str, u64); 12] {
        [
            ("ingest", self.ingest),
            ("windowing", self.windowing),
            ("short_term", self.short_term),
            ("long_term", self.long_term),
            ("complete", self.complete),
            ("went_away", self.went_away),
            ("seasonality", self.seasonality),
            ("threshold", self.threshold),
            ("som_dedup", self.som_dedup),
            ("cost_shift", self.cost_shift),
            ("pairwise_dedup", self.pairwise_dedup),
            ("root_cause", self.root_cause),
        ]
    }

    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.named().iter().map(|(_, ns)| ns).sum()
    }

    /// Per-stage difference `self - earlier`, saturating at zero (for
    /// deltas across two snapshots of a monotone accumulator).
    pub fn since(&self, earlier: &StageNanos) -> StageNanos {
        StageNanos {
            ingest: self.ingest.saturating_sub(earlier.ingest),
            windowing: self.windowing.saturating_sub(earlier.windowing),
            short_term: self.short_term.saturating_sub(earlier.short_term),
            long_term: self.long_term.saturating_sub(earlier.long_term),
            complete: self.complete.saturating_sub(earlier.complete),
            went_away: self.went_away.saturating_sub(earlier.went_away),
            seasonality: self.seasonality.saturating_sub(earlier.seasonality),
            threshold: self.threshold.saturating_sub(earlier.threshold),
            som_dedup: self.som_dedup.saturating_sub(earlier.som_dedup),
            cost_shift: self.cost_shift.saturating_sub(earlier.cost_shift),
            pairwise_dedup: self.pairwise_dedup.saturating_sub(earlier.pairwise_dedup),
            root_cause: self.root_cause.saturating_sub(earlier.root_cause),
        }
    }

    /// Adds another accumulation into this one.
    pub fn accumulate(&mut self, other: &StageNanos) {
        self.ingest += other.ingest;
        self.windowing += other.windowing;
        self.short_term += other.short_term;
        self.long_term += other.long_term;
        self.complete += other.complete;
        self.went_away += other.went_away;
        self.seasonality += other.seasonality;
        self.threshold += other.threshold;
        self.som_dedup += other.som_dedup;
        self.cost_shift += other.cost_shift;
        self.pairwise_dedup += other.pairwise_dedup;
        self.root_cause += other.root_cause;
    }
}

/// Shared cumulative stage clock: workers flush [`StageNanos`] batches in,
/// benchmarks snapshot deltas out. Relaxed atomics — the values are
/// telemetry, ordered only by the caller's own round structure.
#[derive(Debug, Default)]
pub struct StageProfile {
    ingest: AtomicU64,
    windowing: AtomicU64,
    short_term: AtomicU64,
    long_term: AtomicU64,
    complete: AtomicU64,
    went_away: AtomicU64,
    seasonality: AtomicU64,
    threshold: AtomicU64,
    som_dedup: AtomicU64,
    cost_shift: AtomicU64,
    pairwise_dedup: AtomicU64,
    root_cause: AtomicU64,
}

impl StageProfile {
    /// Folds one worker-local batch into the shared totals.
    pub fn add(&self, delta: &StageNanos) {
        for (field, value) in self.fields().into_iter().zip(delta.named()) {
            if value.1 != 0 {
                field.fetch_add(value.1, Ordering::Relaxed);
            }
        }
    }

    /// Current cumulative totals.
    pub fn snapshot(&self) -> StageNanos {
        StageNanos {
            ingest: self.ingest.load(Ordering::Relaxed),
            windowing: self.windowing.load(Ordering::Relaxed),
            short_term: self.short_term.load(Ordering::Relaxed),
            long_term: self.long_term.load(Ordering::Relaxed),
            complete: self.complete.load(Ordering::Relaxed),
            went_away: self.went_away.load(Ordering::Relaxed),
            seasonality: self.seasonality.load(Ordering::Relaxed),
            threshold: self.threshold.load(Ordering::Relaxed),
            som_dedup: self.som_dedup.load(Ordering::Relaxed),
            cost_shift: self.cost_shift.load(Ordering::Relaxed),
            pairwise_dedup: self.pairwise_dedup.load(Ordering::Relaxed),
            root_cause: self.root_cause.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every stage counter.
    pub fn reset(&self) {
        for field in self.fields() {
            field.store(0, Ordering::Relaxed);
        }
    }

    fn fields(&self) -> [&AtomicU64; 12] {
        [
            &self.ingest,
            &self.windowing,
            &self.short_term,
            &self.long_term,
            &self.complete,
            &self.went_away,
            &self.seasonality,
            &self.threshold,
            &self.som_dedup,
            &self.cost_shift,
            &self.pairwise_dedup,
            &self.root_cause,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_snapshot_delta_roundtrip() {
        let profile = StageProfile::default();
        let mut batch = StageNanos::default();
        batch.windowing = 100;
        batch.long_term = 250;
        profile.add(&batch);
        profile.add(&batch);
        let first = profile.snapshot();
        assert_eq!(first.windowing, 200);
        assert_eq!(first.long_term, 500);
        profile.add(&batch);
        let delta = profile.snapshot().since(&first);
        assert_eq!(delta.windowing, 100);
        assert_eq!(delta.long_term, 250);
        assert_eq!(delta.short_term, 0);
        assert_eq!(delta.total(), 350);
    }

    #[test]
    fn named_covers_every_stage_once() {
        let mut n = StageNanos::default();
        n.ingest = 1;
        n.windowing = 2;
        n.short_term = 3;
        n.long_term = 4;
        n.complete = 5;
        n.went_away = 6;
        n.seasonality = 7;
        n.threshold = 8;
        n.som_dedup = 9;
        n.cost_shift = 10;
        n.pairwise_dedup = 11;
        n.root_cause = 12;
        let named = n.named();
        assert_eq!(named.len(), 12);
        assert_eq!(n.total(), (1..=12).sum::<u64>());
        let mut names: Vec<&str> = named.iter().map(|(s, _)| *s).collect();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn reset_zeroes_and_accumulate_adds() {
        let profile = StageProfile::default();
        let mut a = StageNanos::default();
        a.rca_set_for_test();
        profile.add(&a);
        profile.reset();
        assert_eq!(profile.snapshot().total(), 0);
        let mut acc = StageNanos::default();
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.total(), 2 * a.total());
    }

    impl StageNanos {
        fn rca_set_for_test(&mut self) {
            self.root_cause = 7;
            self.went_away = 3;
        }
    }
}
