//! Short-term change-point detection (§5.2.1).
//!
//! Applies CUSUM and EM iteratively to find the change point with the
//! maximum likelihood of separating two means, then validates it with a
//! likelihood-ratio chi-squared test at significance 0.01. A candidate is
//! produced only when the change point falls inside the analysis window —
//! the historic window is the baseline, not the region under scan.

use crate::config::DetectorConfig;
use crate::types::{Regression, RegressionKind};
use crate::Result;
use fbd_stats::{distributions, em, hypothesis, prefix};
use fbd_tsdb::{SeriesId, Timestamp, WindowedData};

/// The short-term change-point detector.
#[derive(Debug, Clone)]
pub struct ChangePointDetector {
    significance: f64,
    max_iterations: usize,
}

impl ChangePointDetector {
    /// Creates a detector from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        ChangePointDetector {
            significance: config.significance,
            max_iterations: config.max_em_iterations,
        }
    }

    /// Scans one series' windows; returns a regression candidate when a
    /// statistically validated change point lies in the analysis region.
    ///
    /// `now` is the scan time used to timestamp the change point.
    pub fn detect(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        now: Timestamp,
    ) -> Result<Option<Regression>> {
        let data = windows.all();
        if data.len() < 8 || windows.analysis_len() == 0 {
            return Ok(None);
        }
        // Degenerate series (non-finite samples) carry no change point. One
        // prefix build serves the skip bound, the EM fit, and the LRT.
        let Ok(ps) = prefix::validated(data, 8) else {
            return Ok(None);
        };
        // The change must fall within the analysis region (or its boundary);
        // shifts buried deep in the historic window are old news, and the
        // extended window exists to check persistence, not to report from.
        let analysis_begin = windows.historic_len().saturating_sub(1);
        let analysis_end = windows.historic_len() + windows.analysis_len();
        // Sound EM skip: the strongest in-region split upper-bounds the
        // statistic of any change point the fit could report. If even that
        // split cannot reject H0, no in-region candidate can, and every
        // out-of-region candidate is dropped by the gate below anyway.
        let Some(bound) =
            hypothesis::max_lrt_statistic_in_range(&ps, analysis_begin, analysis_end.saturating_sub(1))
        else {
            return Ok(None);
        };
        if distributions::chi_squared_p_value(bound, 2.0) >= self.significance {
            return Ok(None);
        }
        let Ok(fit) = em::fit_two_segment_from_prefix(&ps, self.max_iterations) else {
            return Ok(None);
        };
        if fit.change_point < analysis_begin || fit.change_point >= analysis_end {
            return Ok(None);
        }
        let test =
            hypothesis::likelihood_ratio_test_from_prefix(&ps, fit.change_point, self.significance)?;
        if !test.reject_null {
            return Ok(None);
        }
        // Recompute the post-change mean over the analysis region only so a
        // recovery inside the extended window does not dilute the estimate.
        let post = &data[fit.change_point + 1..analysis_end.min(data.len())];
        let mean_after = if post.is_empty() {
            fit.mean_after
        } else {
            post.iter().sum::<f64>() / post.len() as f64
        };
        // Timestamp: linear position of the change point within the span.
        let span = windows.analysis_end.saturating_sub(windows.analysis_start);
        let into_analysis = fit.change_point.saturating_sub(windows.historic_len());
        let change_time = if windows.analysis_len() == 0 {
            now
        } else {
            windows.analysis_start
                + span * into_analysis as u64 / windows.analysis_len().max(1) as u64
        };
        Ok(Some(Regression {
            series: series.clone(),
            kind: RegressionKind::ShortTerm,
            change_index: fit.change_point,
            change_time,
            mean_before: fit.mean_before,
            mean_after,
            windows: windows.clone(),
            root_cause_candidates: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn sid() -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, "foo")
    }

    fn windows(historic: Vec<f64>, analysis: Vec<f64>, extended: Vec<f64>) -> WindowedData {
        WindowedData::from_regions(&historic, &analysis, &extended, 1_000, 2_000)
    }

    fn noisy(n: usize, mean: f64, amp: f64, phase: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ phase).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                mean + (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * amp
            })
            .collect()
    }

    fn detector() -> ChangePointDetector {
        ChangePointDetector {
            significance: 0.01,
            max_iterations: 50,
        }
    }

    #[test]
    fn detects_step_in_analysis_window() {
        let hist = noisy(300, 1.0, 0.1, 1);
        let mut analysis = noisy(50, 1.0, 0.1, 2);
        analysis.extend(noisy(50, 1.3, 0.1, 3));
        let w = windows(hist, analysis, vec![]);
        let r = detector().detect(&sid(), &w, 5_000).unwrap().unwrap();
        assert!(
            (340..=360).contains(&r.change_index),
            "idx {}",
            r.change_index
        );
        assert!((r.magnitude() - 0.3).abs() < 0.05);
        assert_eq!(r.kind, RegressionKind::ShortTerm);
    }

    #[test]
    fn ignores_flat_series() {
        let w = windows(noisy(300, 1.0, 0.1, 1), noisy(100, 1.0, 0.1, 9), vec![]);
        assert!(detector().detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn ignores_constant_series() {
        let w = windows(vec![1.0; 300], vec![1.0; 100], vec![]);
        assert!(detector().detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn ignores_change_deep_in_historic_window() {
        // A big step in the middle of the historic window: old news.
        let mut hist = noisy(150, 1.0, 0.05, 1);
        hist.extend(noisy(150, 2.0, 0.05, 2));
        let w = windows(hist, noisy(100, 2.0, 0.05, 3), vec![]);
        assert!(detector().detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn post_mean_uses_analysis_region_only() {
        // The shift recovers inside the extended window; mean_after must
        // reflect the analysis region, not the recovered tail.
        let hist = noisy(300, 1.0, 0.05, 1);
        let analysis = noisy(100, 1.5, 0.05, 2);
        let extended = noisy(100, 1.0, 0.05, 3);
        let w = windows(hist, analysis, extended);
        if let Some(r) = detector().detect(&sid(), &w, 0).unwrap() {
            assert!(
                (r.mean_after - 1.5).abs() < 0.1,
                "mean_after = {}",
                r.mean_after
            );
        } else {
            panic!("step at analysis boundary should be detected");
        }
    }

    #[test]
    fn change_time_is_within_analysis_span() {
        let hist = noisy(200, 1.0, 0.05, 1);
        let mut analysis = noisy(50, 1.0, 0.05, 2);
        analysis.extend(noisy(50, 1.4, 0.05, 3));
        let w = windows(hist, analysis, vec![]);
        let r = detector().detect(&sid(), &w, 0).unwrap().unwrap();
        assert!(
            (1_000..2_000).contains(&r.change_time),
            "t = {}",
            r.change_time
        );
    }

    #[test]
    fn tiny_series_yields_none() {
        let w = windows(vec![1.0, 2.0], vec![1.0], vec![]);
        assert!(detector().detect(&sid(), &w, 0).unwrap().is_none());
    }
}
