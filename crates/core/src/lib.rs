//! FBDetect core: in-production performance-regression detection.
//!
//! This crate implements the paper's primary contribution — the full
//! detection workflow of Figure 6:
//!
//! 1. [`change_point`] — CUSUM+EM change-point detection with
//!    likelihood-ratio validation (§5.2.1);
//! 2. [`went_away`] — filtering of transient regressions via SAX patterns,
//!    Mann-Kendall trends, and Theil-Sen slopes (§5.2.2);
//! 3. [`seasonality`] — STL-based seasonal false-positive filtering
//!    (§5.2.3);
//! 4. [`dedup::som_dedup`] — fast SOM-based deduplication with
//!    `ImportanceScore` representative selection (§5.5.1);
//! 5. [`cost_shift`] — cost-domain analysis filtering refactoring-induced
//!    false positives (§5.4);
//! 6. [`dedup::pairwise_dedup`] — accurate rule-driven pairwise
//!    deduplication (§5.5.2);
//! 7. [`root_cause`] — ranked root-cause candidates from gCPU attribution,
//!    text similarity, and time-series correlation (§5.6).
//!
//! [`long_term`] implements the separate long-term (gradual) regression
//! path (§5.3), and [`pipeline`] orchestrates everything with the
//! fast-filters-first ordering the paper describes, exposing the per-stage
//! funnel counters behind Table 3.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod change_point;
pub mod config;
pub mod cost_shift;
pub mod dedup;
pub mod error;
pub mod known_changes;
pub mod long_term;
pub mod pipeline;
pub mod profile;
pub mod quarantine;
pub mod report;
pub mod root_cause;
pub mod scan_cache;
pub mod scan_state;
pub mod scheduler;
pub mod seasonality;
pub mod types;
pub mod went_away;

pub use config::{DetectorConfig, Threshold};
pub use error::DetectError;
pub use pipeline::{Pipeline, ScanBudget, ScanContext, ScanOutcome};
pub use profile::{StageNanos, StageProfile};
pub use quarantine::{FaultKind, Quarantine, QuarantineConfig};
pub use scan_state::{EngineStats, OnlinePolicy, StreamingEngine};
pub use types::{FunnelCounters, Regression, RegressionKind, ScanHealth};

/// Convenience alias used by fallible routines in this crate.
pub type Result<T> = std::result::Result<T, DetectError>;
