//! Series quarantine with deterministic exponential backoff.
//!
//! At production scale some fraction of the ~800,000 monitored series is
//! always broken — collectors emitting garbage, detectors hitting
//! pathological inputs, even panicking on them. Aborting a whole scan for
//! one bad series is unacceptable, but so is burning a full detection pass
//! on a series that has failed the last ten scans. The [`Quarantine`]
//! registry records per-series failures and parks failing series for an
//! exponentially growing number of re-run intervals, re-admitting them on
//! the first successful scan.
//!
//! Backoff is keyed entirely on the *simulated* scan timestamps the
//! scheduler already runs on — no wall clock — so quarantine decisions are
//! deterministic and reproducible in tests.

use fbd_tsdb::{SeriesId, Timestamp};
use std::collections::BTreeMap;

/// Why a series was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The detector panicked on this series (caught by the supervisor).
    Panic,
    /// The detector returned an error.
    DetectorError,
    /// Window extraction found no usable data.
    NoData,
    /// The series' data failed quality checks (e.g. a non-finite burst).
    DataQuality,
}

/// Backoff policy for quarantined series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Re-run intervals to skip after the first failure.
    pub initial_backoff: u64,
    /// Multiplier applied for each additional consecutive failure.
    pub growth: u64,
    /// Cap on skipped intervals. This bounds how long a series can be
    /// parked, so no series is ever lost forever.
    pub max_backoff: u64,
}

impl Default for QuarantineConfig {
    /// Retry after 1 interval, doubling up to 32 intervals.
    fn default() -> Self {
        QuarantineConfig {
            initial_backoff: 1,
            growth: 2,
            max_backoff: 32,
        }
    }
}

/// The failure record for one quarantined series.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// The most recent fault.
    pub kind: FaultKind,
    /// Human-readable detail of the most recent fault (panic payload,
    /// error message).
    pub detail: String,
    /// Consecutive failures without an intervening success.
    pub consecutive_failures: u64,
    /// Total failures recorded for this series while quarantined.
    pub total_failures: u64,
    /// Scan time of the most recent failure.
    pub last_failure_at: Timestamp,
    /// First scan time at which the series is eligible to run again.
    pub eligible_at: Timestamp,
}

/// Registry of failing series and their backoff state.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    config: QuarantineConfig,
    rerun_interval: u64,
    entries: BTreeMap<SeriesId, QuarantineEntry>,
}

impl Quarantine {
    /// Builds a registry for a pipeline re-running every `rerun_interval`
    /// simulated seconds.
    pub fn new(config: QuarantineConfig, rerun_interval: u64) -> Self {
        Quarantine {
            config,
            rerun_interval: rerun_interval.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// The backoff policy in force.
    pub fn config(&self) -> &QuarantineConfig {
        &self.config
    }

    /// Number of re-run intervals skipped after `consecutive_failures`
    /// consecutive failures: `initial * growth^(n-1)`, capped at
    /// `max_backoff`.
    pub fn backoff_intervals(&self, consecutive_failures: u64) -> u64 {
        let cap = self.config.max_backoff.max(1);
        let mut backoff = self.config.initial_backoff.max(1);
        for _ in 1..consecutive_failures {
            backoff = backoff.saturating_mul(self.config.growth.max(1));
            if backoff >= cap {
                return cap;
            }
        }
        backoff.min(cap)
    }

    /// Records a failure observed at scan time `now` and parks the series
    /// until its backoff expires. Returns the updated entry.
    pub fn record_failure(
        &mut self,
        id: &SeriesId,
        kind: FaultKind,
        detail: impl Into<String>,
        now: Timestamp,
    ) -> &QuarantineEntry {
        let entry = self
            .entries
            .entry(id.clone())
            .or_insert_with(|| QuarantineEntry {
                kind,
                detail: String::new(),
                consecutive_failures: 0,
                total_failures: 0,
                last_failure_at: now,
                eligible_at: now,
            });
        entry.kind = kind;
        entry.detail = detail.into();
        entry.consecutive_failures += 1;
        entry.total_failures += 1;
        entry.last_failure_at = now;
        let skip = {
            let cap = self.config.max_backoff.max(1);
            let mut backoff = self.config.initial_backoff.max(1);
            for _ in 1..entry.consecutive_failures {
                backoff = backoff.saturating_mul(self.config.growth.max(1));
                if backoff >= cap {
                    backoff = cap;
                    break;
                }
            }
            backoff.min(cap)
        };
        entry.eligible_at = now.saturating_add(skip.saturating_mul(self.rerun_interval));
        entry
    }

    /// Re-admits a series after a successful scan. Returns whether the
    /// series had been quarantined.
    pub fn record_success(&mut self, id: &SeriesId) -> bool {
        self.entries.remove(id).is_some()
    }

    /// Whether the series should be skipped at scan time `now`.
    pub fn is_quarantined(&self, id: &SeriesId, now: Timestamp) -> bool {
        self.entries.get(id).is_some_and(|e| now < e.eligible_at)
    }

    /// The failure record for a series, if any.
    pub fn entry(&self, id: &SeriesId) -> Option<&QuarantineEntry> {
        self.entries.get(id)
    }

    /// All failure records.
    pub fn entries(&self) -> impl Iterator<Item = (&SeriesId, &QuarantineEntry)> {
        self.entries.iter()
    }

    /// Number of series with failure records (quarantined or awaiting
    /// their retry).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no series has a failure record.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of series parked (ineligible) at scan time `now`.
    pub fn quarantined_count(&self, now: Timestamp) -> usize {
        self.entries
            .values()
            .filter(|e| now < e.eligible_at)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn id(n: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, n)
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let q = Quarantine::new(QuarantineConfig::default(), 100);
        assert_eq!(q.backoff_intervals(1), 1);
        assert_eq!(q.backoff_intervals(2), 2);
        assert_eq!(q.backoff_intervals(3), 4);
        assert_eq!(q.backoff_intervals(4), 8);
        assert_eq!(q.backoff_intervals(6), 32);
        // Capped thereafter, even for absurd failure counts.
        assert_eq!(q.backoff_intervals(7), 32);
        assert_eq!(q.backoff_intervals(10_000), 32);
    }

    #[test]
    fn failures_park_for_growing_spans() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 100);
        let s = id("bad");
        q.record_failure(&s, FaultKind::Panic, "boom", 1_000);
        assert!(q.is_quarantined(&s, 1_000));
        assert!(q.is_quarantined(&s, 1_099));
        // Eligible exactly at the end of the backoff span.
        assert!(!q.is_quarantined(&s, 1_100));
        // A second failure at the retry parks for two intervals.
        q.record_failure(&s, FaultKind::Panic, "boom", 1_100);
        assert!(q.is_quarantined(&s, 1_200));
        assert!(!q.is_quarantined(&s, 1_300));
        let e = q.entry(&s).unwrap();
        assert_eq!(e.consecutive_failures, 2);
        assert_eq!(e.total_failures, 2);
        assert_eq!(e.eligible_at, 1_300);
    }

    #[test]
    fn success_readmits_immediately() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 100);
        let s = id("flaky");
        for i in 0..5 {
            q.record_failure(&s, FaultKind::DetectorError, "err", i * 100);
        }
        assert!(q.is_quarantined(&s, 500));
        assert!(q.record_success(&s));
        assert!(!q.is_quarantined(&s, 500));
        assert!(q.entry(&s).is_none());
        // A fresh failure starts the schedule over.
        q.record_failure(&s, FaultKind::DetectorError, "err", 1_000);
        assert_eq!(q.entry(&s).unwrap().consecutive_failures, 1);
        assert!(!q.is_quarantined(&s, 1_100));
    }

    #[test]
    fn unknown_series_are_never_quarantined() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 100);
        assert!(!q.is_quarantined(&id("x"), 0));
        assert!(!q.record_success(&id("x")));
        assert_eq!(q.quarantined_count(0), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn latest_fault_kind_and_detail_are_kept() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 100);
        let s = id("bad");
        q.record_failure(&s, FaultKind::NoData, "empty window", 0);
        q.record_failure(&s, FaultKind::Panic, "index out of bounds", 100);
        let e = q.entry(&s).unwrap();
        assert_eq!(e.kind, FaultKind::Panic);
        assert_eq!(e.detail, "index out of bounds");
    }

    #[test]
    fn degenerate_configs_still_bound_backoff() {
        // Zero growth/backoff values are treated as 1: always retry on the
        // next interval, never park forever.
        let q = Quarantine::new(
            QuarantineConfig {
                initial_backoff: 0,
                growth: 0,
                max_backoff: 0,
            },
            100,
        );
        assert_eq!(q.backoff_intervals(1), 1);
        assert_eq!(q.backoff_intervals(50), 1);
    }

    #[test]
    fn timestamps_never_overflow() {
        let mut q = Quarantine::new(QuarantineConfig::default(), u64::MAX);
        let s = id("edge");
        q.record_failure(&s, FaultKind::Panic, "late in time", u64::MAX - 10);
        assert_eq!(q.entry(&s).unwrap().eligible_at, u64::MAX);
    }

    #[test]
    fn quarantined_count_tracks_eligibility() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 100);
        q.record_failure(&id("a"), FaultKind::Panic, "", 0);
        q.record_failure(&id("b"), FaultKind::Panic, "", 0);
        q.record_failure(&id("b"), FaultKind::Panic, "", 100);
        assert_eq!(q.quarantined_count(50), 2);
        // `a` is eligible at 100; `b` is parked until 300.
        assert_eq!(q.quarantined_count(100), 1);
        assert_eq!(q.quarantined_count(300), 0);
        assert_eq!(q.len(), 2);
    }
}
