//! The cost-shift detector (§5.4, Figure 1(b)).
//!
//! Subroutine-level metrics create false positives when refactoring merely
//! moves code between subroutines. A *cost domain* is a group of
//! subroutines within which a shift is likely: the upstream callers of the
//! regressed subroutine, its class, subroutines sharing a metadata or
//! endpoint prefix, or the set modified by one commit. Given a regression
//! and a domain, the detector applies three rules:
//!
//! 1. a domain that did not exist before the regression cannot host a
//!    shift;
//! 2. a domain whose cost dwarfs the regression is excluded (its seasonal
//!    wiggle alone would swamp the signal);
//! 3. when the domain's total cost change is negligible relative to the
//!    regression's change, the regression is a cost shift — filtered.

use crate::config::DetectorConfig;
use crate::types::Regression;
use crate::Result;
use fbd_changelog::ChangeLog;
use fbd_profiler::callgraph::CallGraph;
use fbd_stats::descriptive;

/// Names the subroutines forming one cost domain for a regressed
/// subroutine.
pub trait CostDomainProvider {
    /// Human-readable provider name (for reports).
    fn name(&self) -> &str;
    /// Domain members for `subroutine`, or `None` when the provider does
    /// not apply. The regressed subroutine itself should be included.
    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>>;
}

/// Domain = the regressed subroutine's upstream callers (from the call
/// graph): refactoring commonly moves code between a callee and its
/// callers.
pub struct UpstreamCallerDomain<'a> {
    /// The service's call graph.
    pub graph: &'a CallGraph,
}

impl CostDomainProvider for UpstreamCallerDomain<'_> {
    fn name(&self) -> &str {
        "upstream-callers"
    }

    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>> {
        let id = self.graph.frame_by_name(subroutine).ok()?;
        let path = self.graph.path_to_root(id).ok()?;
        if path.len() < 2 {
            return None;
        }
        // The immediate caller's inclusive subtree covers the subroutine
        // and its siblings — where moved code would reappear.
        let parent = path[path.len() - 2];
        let mut members: Vec<String> = self
            .graph
            .descendants(parent)
            .ok()?
            .into_iter()
            .filter_map(|f| self.graph.frame(f).ok().map(|fr| fr.name.clone()))
            .collect();
        members.push(self.graph.frame(parent).ok()?.name.clone());
        Some(members)
    }
}

/// Domain = all subroutines in the same class.
pub struct ClassDomain<'a> {
    /// The service's call graph.
    pub graph: &'a CallGraph,
}

impl CostDomainProvider for ClassDomain<'_> {
    fn name(&self) -> &str {
        "same-class"
    }

    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>> {
        let id = self.graph.frame_by_name(subroutine).ok()?;
        let class = &self.graph.frame(id).ok()?.class;
        if class.is_empty() {
            return None;
        }
        let members: Vec<String> = self
            .graph
            .frames_in_class(class)
            .into_iter()
            .filter_map(|f| self.graph.frame(f).ok().map(|fr| fr.name.clone()))
            .collect();
        if members.len() < 2 {
            None
        } else {
            Some(members)
        }
    }
}

/// Domain = subroutines whose name shares a prefix with the regressed one
/// (used for endpoints with matching name prefixes and metadata prefixes).
pub struct PrefixDomain {
    /// All known subroutine/endpoint names.
    pub universe: Vec<String>,
    /// Prefix length in characters.
    pub prefix_len: usize,
}

impl CostDomainProvider for PrefixDomain {
    fn name(&self) -> &str {
        "name-prefix"
    }

    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>> {
        let prefix: String = subroutine.chars().take(self.prefix_len).collect();
        if prefix.is_empty() {
            return None;
        }
        let members: Vec<String> = self
            .universe
            .iter()
            .filter(|n| n.starts_with(&prefix))
            .cloned()
            .collect();
        if members.len() < 2 {
            None
        } else {
            Some(members)
        }
    }
}

/// Domain = all subroutines modified by the same code commit(s) around the
/// regression time.
pub struct CommitDomain<'a> {
    /// The change log.
    pub log: &'a ChangeLog,
    /// Search window around the regression, `[start, end)`.
    pub window: (u64, u64),
}

impl CostDomainProvider for CommitDomain<'_> {
    fn name(&self) -> &str {
        "commit-modified"
    }

    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>> {
        let changes =
            self.log
                .modifying_subroutine_between(subroutine, self.window.0, self.window.1);
        if changes.is_empty() {
            return None;
        }
        let mut members: Vec<String> = changes
            .iter()
            .flat_map(|c| c.modified_subroutines.iter().cloned())
            .collect();
        members.sort();
        members.dedup();
        if members.len() < 2 {
            None
        } else {
            Some(members)
        }
    }
}

/// A custom domain from a user-supplied closure (the paper's "developers
/// can create custom detectors for specific cost domains").
pub struct CustomDomain<F>
where
    F: Fn(&str) -> Option<Vec<String>>,
{
    /// Provider name.
    pub label: String,
    /// The domain function.
    pub f: F,
}

impl<F> CostDomainProvider for CustomDomain<F>
where
    F: Fn(&str) -> Option<Vec<String>>,
{
    fn name(&self) -> &str {
        &self.label
    }

    fn domain_of(&self, subroutine: &str) -> Option<Vec<String>> {
        (self.f)(subroutine)
    }
}

/// Result of checking one regression against one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostShiftVerdict {
    /// The domain did not exist before the regression: not a shift.
    DomainIsNew,
    /// The domain's cost dwarfs the regression: excluded, inconclusive.
    DomainExcluded,
    /// The domain's total barely moved while the subroutine jumped: the
    /// regression is a cost shift — filter it.
    CostShift,
    /// The domain's total moved along with the subroutine: a real
    /// regression (within this domain).
    NotACostShift,
}

/// The cost-shift detector.
#[derive(Debug, Clone)]
pub struct CostShiftDetector {
    exclusion_ratio: f64,
    negligible_fraction: f64,
}

impl CostShiftDetector {
    /// Creates a detector from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        CostShiftDetector {
            exclusion_ratio: config.cost_domain_exclusion_ratio,
            negligible_fraction: config.cost_shift_negligible_fraction,
        }
    }

    /// Applies the three §5.4 rules given the regression and the domain's
    /// summed cost series split at the same change point.
    ///
    /// `domain_before`/`domain_after` are the domain's total-cost values
    /// before/after the regression's change point.
    pub fn check(
        &self,
        regression: &Regression,
        domain_before: &[f64],
        domain_after: &[f64],
    ) -> Result<CostShiftVerdict> {
        if domain_before.is_empty() || domain_after.is_empty() {
            return Ok(CostShiftVerdict::DomainIsNew);
        }
        let before_mean = descriptive::mean(domain_before)?;
        let after_mean = descriptive::mean(domain_after)?;
        let regression_change = regression.magnitude().abs();
        // Rule 1: a domain with ~no cost before the regression is new.
        if before_mean.abs() < regression_change * 1e-3 {
            return Ok(CostShiftVerdict::DomainIsNew);
        }
        // Rule 2: a domain whose scale dwarfs the regression is excluded —
        // its own variation would hide the signal.
        if regression_change <= 0.0 || before_mean.abs() > self.exclusion_ratio * regression_change
        {
            return Ok(CostShiftVerdict::DomainExcluded);
        }
        // Rule 3: negligible domain change relative to the regression's
        // change means cost merely moved within the domain.
        let domain_change = (after_mean - before_mean).abs();
        if domain_change < self.negligible_fraction * regression_change {
            Ok(CostShiftVerdict::CostShift)
        } else {
            Ok(CostShiftVerdict::NotACostShift)
        }
    }

    /// Convenience: runs [`check`](Self::check) against every applicable
    /// provider, where `domain_series` resolves a member list to the
    /// domain's (before, after) summed values. The regression is filtered
    /// when **any** domain says [`CostShiftVerdict::CostShift`].
    pub fn is_cost_shift<F>(
        &self,
        regression: &Regression,
        subroutine: &str,
        providers: &[&dyn CostDomainProvider],
        mut domain_series: F,
    ) -> Result<bool>
    where
        F: FnMut(&[String]) -> Option<(Vec<f64>, Vec<f64>)>,
    {
        for provider in providers {
            let Some(members) = provider.domain_of(subroutine) else {
                continue;
            };
            let Some((before, after)) = domain_series(&members) else {
                continue;
            };
            if self.check(regression, &before, &after)? == CostShiftVerdict::CostShift {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_profiler::callgraph::CallGraphBuilder;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn regression(mean_before: f64, mean_after: f64) -> Regression {
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, "B"),
            kind: RegressionKind::ShortTerm,
            change_index: 10,
            change_time: 100,
            mean_before,
            mean_after,
            windows: WindowedData::from_regions(
                &[mean_before; 10],
                &[mean_after; 10],
                &[],
                0,
                1,
            ),
            root_cause_candidates: vec![],
        }
    }

    fn detector() -> CostShiftDetector {
        CostShiftDetector {
            exclusion_ratio: 100.0,
            negligible_fraction: 0.25,
        }
    }

    #[test]
    fn figure1b_cost_shift_is_filtered() {
        // Subroutine gains 0.0002 gCPU; the domain total is unchanged.
        let r = regression(0.0002, 0.0004);
        let domain_before = vec![0.0007; 20];
        let domain_after = vec![0.0007; 20];
        assert_eq!(
            detector().check(&r, &domain_before, &domain_after).unwrap(),
            CostShiftVerdict::CostShift
        );
    }

    #[test]
    fn real_regression_moves_the_domain_too() {
        let r = regression(0.0002, 0.0004);
        let domain_before = vec![0.0007; 20];
        let domain_after = vec![0.0009; 20]; // Domain grew by the shift.
        assert_eq!(
            detector().check(&r, &domain_before, &domain_after).unwrap(),
            CostShiftVerdict::NotACostShift
        );
    }

    #[test]
    fn huge_domain_is_excluded() {
        // Paper's example: a 20% CPU domain cannot adjudicate a 0.005%
        // regression.
        let r = regression(0.00005, 0.0001);
        let domain_before = vec![0.20; 20];
        let domain_after = vec![0.20; 20];
        assert_eq!(
            detector().check(&r, &domain_before, &domain_after).unwrap(),
            CostShiftVerdict::DomainExcluded
        );
    }

    #[test]
    fn new_domain_is_not_a_shift() {
        let r = regression(0.0, 0.001);
        // No historical presence.
        let domain_before = vec![0.0; 20];
        let domain_after = vec![0.001; 20];
        assert_eq!(
            detector().check(&r, &domain_before, &domain_after).unwrap(),
            CostShiftVerdict::DomainIsNew
        );
        assert_eq!(
            detector().check(&r, &[], &[0.1]).unwrap(),
            CostShiftVerdict::DomainIsNew
        );
    }

    #[test]
    fn class_domain_provider() {
        let mut b = CallGraphBuilder::new("main", 0.1);
        let a = b.add_child(0, "Widget::load", 1.0, "Widget").unwrap();
        b.add_child(0, "Widget::save", 1.0, "Widget").unwrap();
        b.add_child(a, "Other::thing", 1.0, "Other").unwrap();
        let g = b.build().unwrap();
        let p = ClassDomain { graph: &g };
        let d = p.domain_of("Widget::load").unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&"Widget::save".to_string()));
        // A single-member class gives no usable domain.
        assert!(p.domain_of("Other::thing").is_none());
    }

    #[test]
    fn upstream_caller_domain_provider() {
        let mut b = CallGraphBuilder::new("main", 0.1);
        let h = b.add_child(0, "handler", 0.5, "H").unwrap();
        b.add_child(h, "encode", 1.0, "H").unwrap();
        b.add_child(h, "decode", 1.0, "H").unwrap();
        let g = b.build().unwrap();
        let p = UpstreamCallerDomain { graph: &g };
        let d = p.domain_of("encode").unwrap();
        assert!(d.contains(&"handler".to_string()));
        assert!(d.contains(&"decode".to_string()));
    }

    #[test]
    fn prefix_domain_provider() {
        let p = PrefixDomain {
            universe: vec![
                "api/user/get".to_string(),
                "api/user/set".to_string(),
                "api/feed/get".to_string(),
            ],
            prefix_len: 8,
        };
        let d = p.domain_of("api/user/get").unwrap();
        assert_eq!(d.len(), 2);
        assert!(p.domain_of("api/feed/get").is_none()); // Only one member.
    }

    #[test]
    fn is_cost_shift_queries_all_providers() {
        let r = regression(0.001, 0.002);
        let provider = CustomDomain {
            label: "test".to_string(),
            f: |_s: &str| Some(vec!["a".to_string(), "b".to_string()]),
        };
        let providers: Vec<&dyn CostDomainProvider> = vec![&provider];
        // Domain total unchanged -> shift.
        let shifted = detector()
            .is_cost_shift(&r, "a", &providers, |_| {
                Some((vec![0.005; 10], vec![0.005; 10]))
            })
            .unwrap();
        assert!(shifted);
        // Domain total moved -> not a shift.
        let real = detector()
            .is_cost_shift(&r, "a", &providers, |_| {
                Some((vec![0.005; 10], vec![0.006; 10]))
            })
            .unwrap();
        assert!(!real);
    }
}
