//! Property-based tests for the detection pipeline's invariants.

use fbd_tsdb::window::extract_windows;
use fbd_tsdb::{MetricKind, SeriesId, StoreConfig, TimeSeries, TsdbStore, WindowConfig};
use fbdetect_core::change_point::ChangePointDetector;
use fbdetect_core::config::{DetectorConfig, Threshold};
use fbdetect_core::dedup::same_merger::SameRegressionMerger;
use fbdetect_core::long_term::LongTermDetector;
use fbdetect_core::types::{Regression, RegressionKind};
use fbdetect_core::went_away::WentAwayDetector;
use fbdetect_core::{FaultKind, Pipeline, Quarantine, QuarantineConfig, ScanContext, StreamingEngine};
use proptest::prelude::*;

fn config(threshold: f64) -> DetectorConfig {
    DetectorConfig::new(
        "prop",
        WindowConfig {
            historic: 200,
            analysis: 80,
            extended: 40,
            rerun_interval: 40,
        },
        Threshold::Absolute(threshold),
    )
}

fn noisy_series(len: usize, base: f64, noise: f64, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let mut z = (i as u64 ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            base + (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * noise
        })
        .collect()
}

fn regression_from_values(values: &[f64], cp: usize) -> Regression {
    let h = values.len() * 5 / 8;
    let a = values.len() / 4;
    Regression {
        series: SeriesId::new("svc", MetricKind::GCpu, "x"),
        kind: RegressionKind::ShortTerm,
        change_index: cp.min(values.len() - 2),
        change_time: cp as u64,
        mean_before: values[..=cp.min(values.len() - 2)].iter().sum::<f64>()
            / (cp.min(values.len() - 2) + 1) as f64,
        mean_after: values[cp.min(values.len() - 2) + 1..].iter().sum::<f64>()
            / (values.len() - cp.min(values.len() - 2) - 1) as f64,
        windows: fbd_tsdb::WindowedData::from_regions(
            &values[..h],
            &values[h..h + a],
            &values[h + a..],
            h as u64,
            (h + a) as u64,
        ),
        root_cause_candidates: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn change_point_detector_never_fires_outside_analysis(
        seed in 0u64..500,
        step_at in 0usize..200usize,
        delta in 0.5f64..3.0,
    ) {
        // A step inside the HISTORIC region must never produce a candidate.
        let mut values = noisy_series(320, 1.0, 0.05, seed);
        for v in values.iter_mut().skip(step_at) {
            *v += delta;
        }
        let cfg = config(0.1);
        let detector = ChangePointDetector::from_config(&cfg);
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "x");
        store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
        let w = store.windows(&id, &cfg.windows, 320).unwrap();
        if let Some(r) = detector.detect(&id, &w, 320).unwrap() {
            prop_assert!(r.change_index + 1 >= w.historic_len());
            prop_assert!(r.change_index < w.historic_len() + w.analysis_len());
        }
    }

    #[test]
    fn went_away_filters_improvements(seed in 0u64..200) {
        // A downward step is an improvement; never keep it.
        let mut values = noisy_series(320, 2.0, 0.05, seed);
        for v in values.iter_mut().skip(220) {
            *v -= 0.5;
        }
        let r = regression_from_values(&values, 219);
        let cfg = config(0.1);
        let wa = WentAwayDetector::from_config(&cfg);
        prop_assert!(!wa.evaluate(&r).unwrap().keep);
    }

    #[test]
    fn went_away_keeps_large_persistent_steps(seed in 0u64..200) {
        let mut values = noisy_series(320, 1.0, 0.05, seed);
        for v in values.iter_mut().skip(220) {
            *v += 1.0;
        }
        let r = regression_from_values(&values, 219);
        let cfg = config(0.1);
        let wa = WentAwayDetector::from_config(&cfg);
        prop_assert!(wa.evaluate(&r).unwrap().keep);
    }

    #[test]
    fn merger_idempotent(times in prop::collection::vec(0u64..10_000, 1..30)) {
        let mut m = SameRegressionMerger::new(100);
        let mut first_pass = 0;
        for &t in &times {
            let values = vec![1.0; 16];
            let mut r = regression_from_values(&values, 7);
            r.change_time = t;
            if m.is_new(&r) {
                first_pass += 1;
            }
        }
        // Replaying the same regressions yields zero new ones.
        let mut second_pass = 0;
        for &t in &times {
            let values = vec![1.0; 16];
            let mut r = regression_from_values(&values, 7);
            r.change_time = t;
            if m.is_new(&r) {
                second_pass += 1;
            }
        }
        prop_assert!(first_pass >= 1);
        prop_assert_eq!(second_pass, 0);
    }

    #[test]
    fn funnel_is_monotone_for_arbitrary_mixes(
        seeds in prop::collection::vec(0u64..10_000, 1..12),
        threshold in 0.01f64..0.5,
    ) {
        let store = TsdbStore::new();
        let mut ids = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let mut values = noisy_series(320, 1.0, 0.05, seed);
            match seed % 3 {
                0 => {
                    for v in values.iter_mut().skip(230) {
                        *v += 0.4;
                    }
                }
                1 => {
                    let end = 280.min(values.len());
                    for v in values[230..end].iter_mut() {
                        *v += 0.6;
                    }
                }
                _ => {}
            }
            let id = SeriesId::new("svc", MetricKind::GCpu, format!("s{i}"));
            store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
            ids.push(id);
        }
        let mut p = Pipeline::new(config(threshold)).unwrap();
        let out = p.scan(&store, &ids, 320, &ScanContext::default()).unwrap();
        let f = out.funnel;
        prop_assert!(f.change_points >= f.after_went_away);
        prop_assert!(f.after_went_away >= f.after_seasonality);
        prop_assert!(f.after_seasonality >= f.after_threshold);
        prop_assert!(f.after_threshold >= f.after_same_merger);
        prop_assert!(f.after_same_merger >= f.after_som_dedup);
        prop_assert!(f.after_som_dedup >= f.after_cost_shift);
        prop_assert!(f.after_cost_shift >= f.after_pairwise_dedup);
        prop_assert!(out.reports.len() <= f.after_cost_shift);
    }

    #[test]
    fn thresholds_partition_detections(seed in 0u64..200) {
        // A report produced at a high threshold is also produced at a lower
        // threshold (same data, same config otherwise).
        let store = TsdbStore::new();
        let mut values = noisy_series(320, 1.0, 0.03, seed);
        for v in values.iter_mut().skip(230) {
            *v += 0.5;
        }
        let id = SeriesId::new("svc", MetricKind::GCpu, "x");
        store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
        let mut high = Pipeline::new(config(0.4)).unwrap();
        let mut low = Pipeline::new(config(0.05)).unwrap();
        let high_out = high
            .scan(&store, std::slice::from_ref(&id), 320, &ScanContext::default())
            .unwrap();
        let low_out = low.scan(&store, &[id], 320, &ScanContext::default()).unwrap();
        if !high_out.reports.is_empty() {
            prop_assert!(!low_out.reports.is_empty());
        }
    }

    #[test]
    fn quarantine_never_loses_a_series_forever(
        gaps in prop::collection::vec(0u64..50, 1..40),
        initial in 1u64..4,
        growth in 1u64..4,
        max_backoff in 1u64..16,
    ) {
        // No failure sequence may park a series past max_backoff re-run
        // intervals: quarantine is backoff, not a blocklist.
        let interval = 500u64;
        let mut q = Quarantine::new(
            QuarantineConfig {
                initial_backoff: initial,
                growth,
                max_backoff,
            },
            interval,
        );
        let id = SeriesId::new("svc", MetricKind::GCpu, "flaky");
        let mut now = 0u64;
        for &gap in &gaps {
            now += gap * interval;
            // The scheduler only retries (and can only re-fail) once the
            // series is eligible again.
            if !q.is_quarantined(&id, now) {
                let entry = q.record_failure(&id, FaultKind::DetectorError, "prop", now);
                prop_assert!(entry.eligible_at <= now + max_backoff * interval);
            }
        }
        // However many failures accumulated, the series becomes scannable
        // again within max_backoff intervals of the last one.
        prop_assert!(!q.is_quarantined(&id, now + max_backoff * interval));
        // And one success fully re-admits it.
        q.record_success(&id);
        prop_assert!(q.entry(&id).is_none());
        prop_assert!(!q.is_quarantined(&id, 0));
    }

    #[test]
    fn long_term_prefilter_never_changes_the_decision(
        seed in 0u64..300,
        drift_millis in 0u64..12,
        step_at in 150usize..310usize,
        step in 0.0f64..0.8,
    ) {
        // The O(n) flat-series prefilter may only skip work, never flip a
        // verdict: the prefiltered entry point and the full STL path must
        // produce identical regressions (or identical absences) on flats,
        // drifts, and steps alike.
        let drift = drift_millis as f64 / 1000.0 * 0.01;
        let mut values: Vec<f64> = noisy_series(320, 1.0, 0.05, seed)
            .iter()
            .enumerate()
            .map(|(i, v)| v + drift * i as f64)
            .collect();
        for v in values.iter_mut().skip(step_at) {
            *v += step;
        }
        let cfg = config(0.1);
        let detector = LongTermDetector::from_config(&cfg);
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, "lt");
        store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
        let w = store.windows(&id, &cfg.windows, 320).unwrap();
        let fast = detector.detect(&id, &w, 320).unwrap();
        let full = detector.detect_without_prefilter(&id, &w, 320).unwrap();
        prop_assert_eq!(
            format!("{fast:?}"),
            format!("{full:?}"),
            "prefiltered and full long-term paths diverged"
        );
    }

    #[test]
    fn streaming_engine_never_changes_a_scan_outcome(
        seeds in prop::collection::vec(0u64..1000, 2..5),
        steps in prop::collection::vec(0u64..4, 2..5),
        rounds in prop::collection::vec((0u64..3, 1usize..25, 0u64..12), 1..7),
    ) {
        // The version-gated cache path may only skip work, never change a
        // detection decision: over arbitrary append/advance sequences, a
        // pipeline with the streaming engine enabled must produce the same
        // reports, funnel, and health as a cold pipeline on every round.
        let cfg = config(0.05);
        let store = TsdbStore::new();
        let mut ids = Vec::new();
        let mut frontier = 400u64;
        for (i, &seed) in seeds.iter().enumerate() {
            let mut values = noisy_series(frontier as usize, 1.0, 0.1, seed);
            // Some series get a step inside the analysis window, some get a
            // NaN burst to exercise the data-quality gates, some stay quiet.
            match steps.get(i).copied().unwrap_or(0) {
                1 => {
                    for v in values.iter_mut().skip(330) {
                        *v += 0.5;
                    }
                }
                2 => {
                    for v in values.iter_mut().skip(340).take(40) {
                        *v = f64::NAN;
                    }
                }
                _ => {}
            }
            let kind = if i % 2 == 0 { MetricKind::GCpu } else { MetricKind::Throughput };
            let id = SeriesId::new("svc", kind, format!("s{i}"));
            store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
            ids.push(id);
        }
        let mut warm = Pipeline::new(cfg.clone()).unwrap();
        let mut cold = Pipeline::new(cfg).unwrap();
        cold.set_streaming(false);
        let context = ScanContext {
            changelog: None,
            samples: None,
            graph: None,
            domain_providers: vec![],
        };
        // Watermarks are quantized to rerun-interval boundaries, as the
        // production scheduler does; ingestion runs ahead of them.
        let mut now = frontier;
        for &(advance, appends, value_seed) in &rounds {
            now += advance * 40;
            for (i, id) in ids.iter().enumerate() {
                for k in 0..appends {
                    let t = frontier + k as u64;
                    let v = noisy_series(1, 1.0, 0.1, value_seed ^ (i as u64) << 8 ^ t)[0];
                    store.append(id, t, v).unwrap();
                }
            }
            frontier += appends as u64;
            let w = warm.scan(&store, &ids, now, &context).unwrap();
            let c = cold.scan(&store, &ids, now, &context).unwrap();
            prop_assert_eq!(
                format!("{:?}|{:?}|{:?}", w.reports, w.funnel, w.health),
                format!("{:?}|{:?}|{:?}", c.reports, c.funnel, c.health),
                "streaming and cold scans diverged at now={}", now
            );
        }
        // The property is only meaningful if the engine actually tracked
        // the series rather than falling back to cold scans throughout.
        let stats = warm.streaming_stats().unwrap();
        prop_assert!(stats.tracked > 0 || stats.removed > 0);
    }

    #[test]
    fn streaming_engine_level_c_never_changes_a_scan_outcome(
        seeds in prop::collection::vec(0u64..1000, 2..5),
        steps in prop::collection::vec(0u64..4, 2..5),
        rounds in 2usize..6,
        noise_milli in 1u64..20,
    ) {
        // Level C refutes both detectors straight from rolling moments on
        // boundary rounds — no window build, no detector run. That shortcut
        // may only ever skip work: a warm pipeline whose online refuters
        // provably fired must produce the same reports, funnel, and health
        // as a cold pipeline on every round. Series 0 is exactly constant,
        // so at least one refutation is provable every boundary round and
        // the liveness assertion below cannot flake.
        let cfg = config(0.05);
        let store = TsdbStore::new();
        let mut ids = Vec::new();
        let noise = noise_milli as f64 / 1000.0;
        let mut frontier = 400u64;
        for (i, &seed) in seeds.iter().enumerate() {
            let mut values = if i == 0 {
                vec![1.0; frontier as usize]
            } else {
                noisy_series(frontier as usize, 1.0, noise, seed)
            };
            match steps.get(i).copied().unwrap_or(0) {
                1 if i > 0 => {
                    for v in values.iter_mut().skip(330) {
                        *v += 0.5;
                    }
                }
                2 if i > 0 => {
                    for v in values.iter_mut().skip(340).take(40) {
                        *v = f64::NAN;
                    }
                }
                _ => {}
            }
            let kind = if i % 2 == 0 { MetricKind::GCpu } else { MetricKind::Throughput };
            let id = SeriesId::new("svc", kind, format!("s{i}"));
            store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &values));
            ids.push(id);
        }
        let mut warm = Pipeline::new(cfg.clone()).unwrap();
        let mut cold = Pipeline::new(cfg).unwrap();
        cold.set_streaming(false);
        let context = ScanContext::default();
        let mut now = frontier;
        for r in 0..rounds {
            // Every round is a boundary round: the watermark jumps a full
            // re-run interval and ingestion keeps the windows saturated, so
            // partition-equality reuse (Levels A/B) can never fire and the
            // engine must advance online or fall back to a full scan.
            for (i, id) in ids.iter().enumerate() {
                for k in 0..40u64 {
                    let t = frontier + k;
                    let v = if i == 0 {
                        1.0
                    } else {
                        noisy_series(1, 1.0, noise, (r as u64) << 40 ^ (i as u64) << 8 ^ t)[0]
                    };
                    store.append(id, t, v).unwrap();
                }
            }
            frontier += 40;
            now += 40;
            let w = warm.scan(&store, &ids, now, &context).unwrap();
            let c = cold.scan(&store, &ids, now, &context).unwrap();
            prop_assert_eq!(
                format!("{:?}|{:?}|{:?}", w.reports, w.funnel, w.health),
                format!("{:?}|{:?}|{:?}", c.reports, c.funnel, c.health),
                "Level C scan diverged from cold at now={}", now
            );
        }
        let stats = warm.streaming_stats().unwrap();
        prop_assert!(
            stats.advanced_online >= rounds as u64,
            "Level C must fire for the constant series every boundary round: {:?}", stats
        );
    }

    #[test]
    fn compressed_store_never_changes_a_scan_outcome(
        seeds in prop::collection::vec(0u64..1000, 2..5),
        steps in prop::collection::vec(0u64..4, 2..5),
        seal_limit in 4u32..48,
        rounds in prop::collection::vec((0u64..3, 1usize..25, 0u64..12), 1..5),
    ) {
        // Gorilla-compressed storage may only change the representation,
        // never the bytes a scan sees: a streaming pipeline over a
        // compressed store must produce the same reports, funnel, and
        // health as a cold pipeline over a plain store holding the same
        // appends — across seals, appended tails, and NaN bursts.
        let cfg = config(0.05);
        let packed = TsdbStore::with_config(StoreConfig {
            seal_limit,
            shard_budget_bytes: None,
            decode_cache_bytes: 8_192,
        });
        let plain = TsdbStore::new();
        let mut ids = Vec::new();
        let mut frontier = 400u64;
        for (i, &seed) in seeds.iter().enumerate() {
            let mut values = noisy_series(frontier as usize, 1.0, 0.1, seed);
            match steps.get(i).copied().unwrap_or(0) {
                1 => {
                    for v in values.iter_mut().skip(330) {
                        *v += 0.5;
                    }
                }
                2 => {
                    for v in values.iter_mut().skip(340).take(40) {
                        *v = f64::NAN;
                    }
                }
                _ => {}
            }
            let kind = if i % 2 == 0 { MetricKind::GCpu } else { MetricKind::Throughput };
            let id = SeriesId::new("svc", kind, format!("s{i}"));
            for (t, v) in values.iter().enumerate() {
                packed.append(&id, t as u64, *v).unwrap();
                plain.append(&id, t as u64, *v).unwrap();
            }
            ids.push(id);
        }
        let mut warm = Pipeline::new(cfg.clone()).unwrap();
        let mut cold = Pipeline::new(cfg).unwrap();
        cold.set_streaming(false);
        let context = ScanContext::default();
        let mut now = frontier;
        for &(advance, appends, value_seed) in &rounds {
            now += advance * 40;
            for (i, id) in ids.iter().enumerate() {
                for k in 0..appends {
                    let t = frontier + k as u64;
                    let v = noisy_series(1, 1.0, 0.1, value_seed ^ (i as u64) << 8 ^ t)[0];
                    packed.append(id, t, v).unwrap();
                    plain.append(id, t, v).unwrap();
                }
            }
            frontier += appends as u64;
            let w = warm.scan(&packed, &ids, now, &context).unwrap();
            let c = cold.scan(&plain, &ids, now, &context).unwrap();
            prop_assert_eq!(
                format!("{:?}|{:?}|{:?}", w.reports, w.funnel, w.health),
                format!("{:?}|{:?}|{:?}", c.reports, c.funnel, c.health),
                "compressed streaming and plain cold scans diverged at now={}", now
            );
        }
        // The comparison must actually have crossed sealed blocks.
        prop_assert!(packed.stats().sealed_blocks() > 0);
    }

    #[test]
    fn tail_incremental_windows_match_cold_extraction(
        seeds in prop::collection::vec(0u64..1000, 2..5),
        chunks in prop::collection::vec((1usize..90, 0u8..10), 3..8),
        seal_limit in 4u32..48,
    ) {
        // The streaming engine's tail-incremental path (decode only newly
        // sealed blocks plus the mutable head, partition with summary
        // counts) must yield windows byte-identical to a cold
        // `extract_windows` over the full series, round after round with
        // the watermark quantized to the rerun interval.
        let wcfg = WindowConfig {
            historic: 200,
            analysis: 80,
            extended: 40,
            rerun_interval: 40,
        };
        let store = TsdbStore::with_config(StoreConfig {
            seal_limit,
            shard_budget_bytes: None,
            decode_cache_bytes: 4_096,
        });
        let ids: Vec<SeriesId> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| SeriesId::new("svc", MetricKind::GCpu, format!("s{i}")))
            .collect();
        let id_refs: Vec<&SeriesId> = ids.iter().collect();
        let mut engine = StreamingEngine::new(wcfg.clone());
        // Pre-fill one full span so the historic region is never empty:
        // every round from here on must take the scan (or reuse) path,
        // never the data-quality gate.
        let mut frontier = wcfg.total_span();
        for (id, &seed) in ids.iter().zip(&seeds) {
            for t in 0..frontier {
                store.append(id, t, noisy_series(1, 1.0, 0.3, seed ^ (t << 10))[0]).unwrap();
            }
        }
        let fingerprint = |w: &fbd_tsdb::WindowedData| {
            let bits: Vec<u64> = w.all().iter().map(|v| v.to_bits()).collect();
            (
                bits,
                w.historic_len(),
                w.analysis_len(),
                (
                    w.coverage.historic.to_bits(),
                    w.coverage.analysis.to_bits(),
                    w.coverage.extended.to_bits(),
                ),
            )
        };
        for (round, &(appends, burst_sel)) in chunks.iter().enumerate() {
            let nan_burst = burst_sel < 2;
            for (s, (id, &seed)) in ids.iter().zip(&seeds).enumerate() {
                for t in frontier..frontier + appends as u64 {
                    let v = if nan_burst && s == 0 && t % 5 == 0 {
                        f64::NAN
                    } else {
                        noisy_series(1, 1.0, 0.3, seed ^ (t << 10))[0]
                    };
                    store.append(id, t, v).unwrap();
                }
            }
            frontier += appends as u64;
            // Quantized watermark: rounds re-observe the same `now` until
            // the frontier crosses the next rerun boundary.
            let now = (frontier / wcfg.rerun_interval) * wcfg.rerun_interval;
            engine.begin_round(&store, &id_refs, now);
            for id in &ids {
                match engine.prepare(id, 0.0, 0.0) {
                    fbdetect_core::scan_state::Prepared::Scan { windows, token } => {
                        let series = store.get(id).unwrap();
                        let cold = extract_windows(&series, &wcfg, now);
                        match cold {
                            Ok(cold) => {
                                prop_assert_eq!(
                                    fingerprint(&windows),
                                    fingerprint(&cold),
                                    "round {}: tail-incremental diverged at now={}",
                                    round,
                                    now
                                );
                            }
                            Err(e) => panic!("round {round}: cold extraction failed: {e}"),
                        }
                        engine.complete(
                            id,
                            token,
                            Some(fbdetect_core::scan_state::CachedScan::Ok {
                                short: None,
                                long: None,
                                partial: false,
                            }),
                            windows,
                        );
                    }
                    fbdetect_core::scan_state::Prepared::Reuse(_) => {
                        // Unchanged partitions at a held watermark: the
                        // reused outcome was checked when it was produced.
                    }
                    fbdetect_core::scan_state::Prepared::Fallback => {
                        panic!("round {round}: engine fell back for a tracked series")
                    }
                }
            }
        }
        let stats = engine.stats();
        prop_assert!(stats.scanned > 0, "no round ever exercised the scan path: {:?}", stats);
    }
}
