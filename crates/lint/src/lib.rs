//! `fbd-lint` — workspace-wide invariant checker for FBDetect.
//!
//! Enforces four families of domain rules the Rust compiler and clippy
//! cannot express (see `DESIGN.md` § "Static invariants" and
//! § "Concurrency discipline"):
//!
//! * **panic-freedom** (`no-panic`) — the crates that run under the scan
//!   supervisor's `catch_unwind` must return errors, not panic;
//! * **NaN-safety** (`float-eq`, `partial-cmp-unwrap`) — no exact float
//!   equality on output paths, no `partial_cmp().unwrap()` (use
//!   `total_cmp`);
//! * **determinism** (`hash-order`, `nondet-source`) — no hash-ordered
//!   collections feeding serialized output, no wall clocks or OS entropy in
//!   the seed-deterministic fleet simulation;
//! * **concurrency discipline** (`lock-order`, `guard-across-blocking`,
//!   `counted-loss`, `hot-path-alloc`) — lock acquisitions follow the
//!   ranks in `LOCK_ORDER.manifest` (the same hierarchy `fbd-sync`
//!   validates at runtime in debug builds), no guard is held across a
//!   blocking channel op or a cross-crate lock-taking call, every
//!   point-shedding site increments a loss counter, and functions marked
//!   `// fbd-lint::hot` stay allocation-free.
//!
//! Violations are muted case by case with
//! `// fbd-lint::allow(rule-name): reason`; the reason is mandatory and
//! stale or malformed suppressions are themselves violations.
//!
//! Implementation note: the build environment is offline, so there is no
//! `syn`. The checker runs on a cleaned token view of each file
//! ([`lexer::clean_source`]) — comments and literal bodies are blanked with
//! layout preserved — which is exact enough for every rule above and keeps
//! the tool dependency-free.

#![forbid(unsafe_code)]

pub mod context;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use context::{FileContext, FileKind};
pub use diagnostics::{to_json, Diagnostic};
pub use engine::{check_file, run_workspace, run_workspace_with_threads};
pub use rules::{all_rules, Rule};
