//! Workspace walker and suppression resolution.
//!
//! The engine cleans each `.rs` file, classifies it, runs every applicable
//! rule, then applies `// fbd-lint::allow(rule): reason` suppressions.
//! Suppression hygiene is itself checked: a suppression without a reason,
//! naming an unknown rule, or matching no diagnostic is reported as a
//! violation (`bad-suppression` / `unused-suppression`) so allows cannot rot
//! silently.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::context::{FileContext, FileKind};
use crate::diagnostics::Diagnostic;
use crate::lexer::{clean_source, CleanFile, Suppression};
use crate::rules::{all_rules, Rule, Sink, ENGINE_RULES};

/// Directories never scanned: build output, vendored shims, VCS metadata,
/// and the lint crate's own known-bad fixture tree.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Lints every `.rs` file under `root` and returns sorted diagnostics,
/// checking files across all available cores.
pub fn run_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_workspace_with_threads(root, threads)
}

/// [`run_workspace`] with an explicit worker count. Output is identical for
/// any `threads` value: files are distributed via a shared cursor, each
/// worker collects independently, and the merged diagnostics are sorted by
/// the total order [`Diagnostic::sort_key`] and deduplicated — a test pins
/// that the `--json` bytes match across thread counts and repeated runs.
pub fn run_workspace_with_threads(root: &Path, threads: usize) -> Result<Vec<Diagnostic>, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths).map_err(|e| format!("walking {}: {e}", root.display()))?;
    paths.sort();

    // I/O stays serial (and fail-fast); only rule checking fans out.
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push((rel_path(root, path), src));
    }

    let workers = threads.clamp(1, files.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut diags: Vec<Diagnostic> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // `Box<dyn Rule>` is not Sync, so each worker builds its
                    // own registry; rules are stateless and cheap.
                    let rules = all_rules();
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((rel, src)) = files.get(i) else { break };
                        out.extend(check_file(rel, src, &rules, None));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            if let Ok(part) = handle.join() {
                diags.extend(part);
            }
        }
    });
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    diags.dedup();
    Ok(diags)
}

/// Lints a single source text. `ctx_override` lets fixture tests check a
/// snippet as if it lived at an arbitrary crate/kind.
pub fn check_file(
    rel_path: &str,
    src: &str,
    rules: &[Box<dyn Rule>],
    ctx_override: Option<FileContext>,
) -> Vec<Diagnostic> {
    let clean = clean_source(src);
    let ctx = ctx_override.unwrap_or_else(|| FileContext::classify(rel_path, &clean));

    let mut sink = Sink::new(rel_path);
    for rule in rules {
        if rule.applies_to(&ctx) {
            rule.check(&clean, &ctx, &mut sink);
        }
    }

    // Suppressions only make sense where rules can fire; elsewhere (tests,
    // examples, benches) any allow comment is inert and unchecked.
    if matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        apply_suppressions(rel_path, &clean, rules, sink.diags)
    } else {
        sink.diags
    }
}

/// Resolves suppressions against raw diagnostics, emitting hygiene
/// violations for malformed or stale ones.
fn apply_suppressions(
    rel_path: &str,
    clean: &CleanFile,
    rules: &[Box<dyn Rule>],
    raw: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let known: BTreeSet<&str> = rules
        .iter()
        .map(|r| r.name())
        .chain(ENGINE_RULES.iter().copied())
        .collect();

    // (rule, 1-based target line) -> suppression index
    let mut valid: Vec<(String, usize, usize)> = Vec::new();
    let mut used: Vec<bool> = vec![false; clean.suppressions.len()];
    let mut out = Vec::new();

    for (s_idx, s) in clean.suppressions.iter().enumerate() {
        let mut well_formed = true;
        if s.rules.is_empty() {
            push_hygiene(
                &mut out,
                rel_path,
                s.line,
                "bad-suppression",
                "suppression lists no rule: `// fbd-lint::allow(rule-name): reason`".to_string(),
            );
            well_formed = false;
        }
        for rule in &s.rules {
            if !known.contains(rule.as_str()) {
                push_hygiene(
                    &mut out,
                    rel_path,
                    s.line,
                    "bad-suppression",
                    format!("unknown rule `{rule}` in suppression"),
                );
                well_formed = false;
            }
        }
        if s.reason.is_empty() {
            push_hygiene(
                &mut out,
                rel_path,
                s.line,
                "bad-suppression",
                "suppression must carry a reason: `// fbd-lint::allow(rule): why this is safe`"
                    .to_string(),
            );
            well_formed = false;
        }
        if well_formed {
            let target = target_line(clean, s);
            for rule in &s.rules {
                valid.push((rule.clone(), target, s_idx));
            }
        }
    }

    for d in raw {
        let mut suppressed = false;
        for (rule, line, s_idx) in &valid {
            if rule == d.rule && *line == d.line {
                used[*s_idx] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }

    for (s_idx, s) in clean.suppressions.iter().enumerate() {
        let was_valid = valid.iter().any(|(_, _, i)| i == &s_idx);
        if was_valid && !used[s_idx] {
            push_hygiene(
                &mut out,
                rel_path,
                s.line,
                "unused-suppression",
                format!(
                    "suppression for `{}` matches no diagnostic; delete it",
                    s.rules.join(", ")
                ),
            );
        }
    }
    out
}

/// 1-based line a suppression applies to: its own line for trailing
/// comments, the next non-blank code line for standalone ones.
fn target_line(clean: &CleanFile, s: &Suppression) -> usize {
    if !s.standalone {
        return s.line;
    }
    clean
        .lines
        .iter()
        .enumerate()
        .skip(s.line) // s.line is 1-based, so this skips past the comment line
        .find(|(_, l)| !l.trim().is_empty())
        .map(|(idx, _)| idx + 1)
        .unwrap_or(s.line)
}

fn push_hygiene(
    out: &mut Vec<Diagnostic>,
    file: &str,
    line: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    });
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<std::io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str, rel: &str) -> Vec<Diagnostic> {
        check_file(rel, src, &all_rules(), None)
    }

    #[test]
    fn trailing_suppression_with_reason_mutes_diagnostic() {
        let src = "fn f() { x.unwrap(); // fbd-lint::allow(no-panic): input validated by caller\n}\n";
        assert!(check(src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn standalone_suppression_applies_to_next_line() {
        let src = "fn f() {\n    // fbd-lint::allow(no-panic): slot reserved above\n    x.unwrap();\n}\n";
        assert!(check(src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn reasonless_suppression_does_not_mute_and_is_flagged() {
        let src = "fn f() { x.unwrap(); // fbd-lint::allow(no-panic)\n}\n";
        let diags = check(src, "crates/stats/src/a.rs");
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"no-panic"));
        assert!(rules.contains(&"bad-suppression"));
    }

    #[test]
    fn unknown_rule_suppression_flagged() {
        let src = "fn f() { // fbd-lint::allow(made-up-rule): whatever\n}\n";
        let diags = check(src, "crates/stats/src/a.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "bad-suppression");
    }

    #[test]
    fn stale_suppression_flagged_as_unused() {
        let src = "fn f() { let y = 1; // fbd-lint::allow(no-panic): nothing here panics anymore\n}\n";
        let diags = check(src, "crates/stats/src/a.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-suppression");
    }

    #[test]
    fn suppressions_in_test_files_are_inert() {
        let src = "fn helper() { // fbd-lint::allow(no-panic)\n    x.unwrap();\n}\n";
        assert!(check(src, "tests/foo.rs").is_empty());
    }
}
