//! CLI for `fbd-lint`.
//!
//! ```text
//! fbd-lint [--root PATH] [--json] [--list-rules] [--explain RULE]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error —
//! CI gates on "not zero".

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fbd_lint::rules::explain_engine_rule;
use fbd_lint::{all_rules, run_workspace, to_json};

struct Options {
    root: PathBuf,
    json: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
        explain: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                i += 1;
                let path = args
                    .get(i)
                    .ok_or_else(|| "--root requires a path".to_string())?;
                opts.root = PathBuf::from(path);
            }
            "--explain" => {
                i += 1;
                let rule = args
                    .get(i)
                    .ok_or_else(|| "--explain requires a rule name (see --list-rules)".to_string())?;
                opts.explain = Some(rule.clone());
            }
            "--help" | "-h" => {
                return Err(
                    "usage: fbd-lint [--root PATH] [--json] [--list-rules] [--explain RULE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Prints the rationale and fix pattern for one rule; exit 2 on an unknown
/// name so typos don't read as success.
fn explain(name: &str) -> ExitCode {
    for rule in all_rules() {
        if rule.name() == name {
            println!("{name}: {}\n\n{}", rule.description(), rule.explain());
            return ExitCode::SUCCESS;
        }
    }
    if let Some(text) = explain_engine_rule(name) {
        println!("{name} (engine rule)\n\n{text}");
        return ExitCode::SUCCESS;
    }
    eprintln!("fbd-lint: unknown rule `{name}` (see --list-rules)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(name) = &opts.explain {
        return explain(name);
    }

    if opts.list_rules {
        for rule in all_rules() {
            println!("{:20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    match run_workspace(&opts.root) {
        Ok(diags) => {
            if opts.json {
                print!("{}", to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    println!("fbd-lint: clean");
                } else {
                    println!("fbd-lint: {} violation(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("fbd-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
