//! Diagnostic type, deterministic ordering, and output rendering
//! (human-readable and `--json`).

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `no-panic`.
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    /// Deterministic sort key: file, line, rule, then message — a total
    /// order over every field, so sorting is a fixed point regardless of
    /// the (possibly parallel) production order.
    pub fn sort_key(&self) -> (String, usize, &'static str, String) {
        (self.file.clone(), self.line, self.rule, self.message.clone())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (stable field order, sorted input
/// expected). Hand-rolled because the vendored serde shim has no JSON
/// backend and the schema is four flat fields.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"file\":\"{}\",", escape_json(&d.file)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"rule\":\"{}\",", escape_json(d.rule)));
        out.push_str(&format!("\"message\":\"{}\"", escape_json(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_clickable() {
        let d = Diagnostic {
            file: "crates/core/src/pipeline.rs".to_string(),
            line: 42,
            rule: "no-panic",
            message: "`.unwrap()` in supervised library code".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/pipeline.rs:42: [no-panic] `.unwrap()` in supervised library code"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let diags = vec![Diagnostic {
            file: "a.rs".to_string(),
            line: 1,
            rule: "float-eq",
            message: "uses \"==\"".to_string(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\\\"==\\\""));
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(to_json(&[]).trim(), "[]");
    }
}
