//! Per-file context: which workspace crate a file belongs to, what kind of
//! target it is, and which line ranges are test-only code.
//!
//! Rules scope themselves by crate and kind (`applies_to`), and every rule
//! skips lines inside test regions — `#[cfg(test)]` modules and `#[test]`
//! functions are allowed to unwrap, compare floats exactly, and so on.

use crate::lexer::CleanFile;

/// What kind of compilation target a file contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` outside `src/bin/`).
    Lib,
    /// Binary target (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/`), including fixture trees.
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// Context handed to every rule alongside the cleaned source.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name as declared in the owning crate's `Cargo.toml`
    /// (e.g. `fbdetect-core`, `fbd-stats`, `fbdetect` for the root).
    pub crate_name: String,
    pub kind: FileKind,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Half-open 0-based line ranges `[start, end)` of test-only code.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileContext {
    /// Derives crate name and file kind from a workspace-relative path.
    pub fn classify(rel_path: &str, clean: &CleanFile) -> FileContext {
        let crate_name = crate_name_for(rel_path);
        let kind = kind_for(rel_path);
        FileContext {
            crate_name,
            kind,
            rel_path: rel_path.to_string(),
            test_regions: find_test_regions(clean),
        }
    }

    /// Builds a context directly; used by fixture tests to check snippets
    /// as if they lived in an arbitrary crate.
    pub fn synthetic(crate_name: &str, kind: FileKind, rel_path: &str, clean: &CleanFile) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            kind,
            rel_path: rel_path.to_string(),
            test_regions: find_test_regions(clean),
        }
    }

    /// True when 0-based `line_idx` falls inside test-only code.
    pub fn is_test_line(&self, line_idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| line_idx >= start && line_idx < end)
    }
}

fn crate_name_for(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or("");
        return match dir {
            "core" => "fbdetect-core".to_string(),
            "bench" => "fbd-bench".to_string(),
            other => format!("fbd-{other}"),
        };
    }
    "fbdetect".to_string()
}

fn kind_for(rel_path: &str) -> FileKind {
    let in_crate = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, tail)| tail)
        .unwrap_or(rel_path);
    if in_crate.starts_with("tests/") {
        FileKind::Test
    } else if in_crate.starts_with("benches/") {
        FileKind::Bench
    } else if in_crate.starts_with("examples/") {
        FileKind::Example
    } else if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Finds `#[cfg(test)]` / `#[test]` / `#[bench]` block regions by brace
/// counting on the cleaned source (so attributes inside strings or comments
/// never count).
fn find_test_regions(clean: &CleanFile) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which the innermost active test region's block opened.
    let mut region_open: Option<(i64, usize)> = None;
    // Saw a test attribute and are waiting for its item's opening brace.
    let mut pending_attr = false;

    for (idx, line) in clean.lines.iter().enumerate() {
        let has_attr = line.contains("#[cfg(test)]")
            || line.contains("#[test]")
            || line.contains("#[bench]")
            || line.contains("#[cfg(all(test");
        if has_attr && region_open.is_none() {
            pending_attr = true;
        }
        let mut opened_on_line = false;
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending_attr && region_open.is_none() {
                        region_open = Some((depth, idx));
                        pending_attr = false;
                    }
                    depth += 1;
                    opened_on_line = true;
                }
                '}' => {
                    depth -= 1;
                    if let Some((open_depth, start)) = region_open {
                        if depth == open_depth {
                            regions.push((start, idx + 1));
                            region_open = None;
                        }
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` style: the attribute applies to a
        // braceless item, so stop waiting once the item ends.
        if pending_attr && !has_attr && !opened_on_line && line.trim_end().ends_with(';') {
            pending_attr = false;
        }
    }
    // Unterminated region (truncated file): extend to EOF.
    if let Some((_, start)) = region_open {
        regions.push((start, clean.lines.len()));
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    #[test]
    fn classifies_crate_names_and_kinds() {
        let clean = clean_source("");
        let ctx = FileContext::classify("crates/core/src/pipeline.rs", &clean);
        assert_eq!(ctx.crate_name, "fbdetect-core");
        assert_eq!(ctx.kind, FileKind::Lib);

        let ctx = FileContext::classify("crates/stats/tests/proptests.rs", &clean);
        assert_eq!(ctx.crate_name, "fbd-stats");
        assert_eq!(ctx.kind, FileKind::Test);

        let ctx = FileContext::classify("crates/bench/src/bin/fig5_pyperf.rs", &clean);
        assert_eq!(ctx.crate_name, "fbd-bench");
        assert_eq!(ctx.kind, FileKind::Bin);

        let ctx = FileContext::classify("src/lib.rs", &clean);
        assert_eq!(ctx.crate_name, "fbdetect");
        assert_eq!(ctx.kind, FileKind::Lib);

        let ctx = FileContext::classify("tests/end_to_end.rs", &clean);
        assert_eq!(ctx.kind, FileKind::Test);

        let ctx = FileContext::classify("examples/quickstart.rs", &clean);
        assert_eq!(ctx.kind, FileKind::Example);
    }

    #[test]
    fn detects_cfg_test_module_region() {
        let src = "fn lib_code() {\n    body();\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let clean = clean_source(src);
        let ctx = FileContext::classify("crates/stats/src/foo.rs", &clean);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(7));
        assert!(!ctx.is_test_line(9));
    }

    #[test]
    fn detects_bare_test_fn_region() {
        let src = "fn lib() {}\n#[test]\nfn standalone() {\n    boom();\n}\nfn lib2() {}\n";
        let clean = clean_source(src);
        let ctx = FileContext::classify("crates/stats/src/foo.rs", &clean);
        assert!(!ctx.is_test_line(0));
        assert!(ctx.is_test_line(3));
        assert!(!ctx.is_test_line(5));
    }

    #[test]
    fn braceless_cfg_test_item_does_not_open_region() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn lib() {\n    code();\n}\n";
        let clean = clean_source(src);
        let ctx = FileContext::classify("crates/stats/src/foo.rs", &clean);
        assert!(!ctx.is_test_line(3));
    }
}
