//! A comment- and literal-stripping scanner for Rust source.
//!
//! `fbd-lint` rules match token patterns the compiler cannot express as
//! types, so they must never fire on text inside comments, doc examples, or
//! string literals. Rather than pull in a full parser (the build environment
//! is offline, so `syn` is unavailable), this module produces a *cleaned*
//! view of each file: every comment and every string/char literal body is
//! replaced by spaces, byte for byte, so line numbers and column positions
//! in the cleaned text match the original source exactly.
//!
//! The scanner also extracts suppression comments of the form
//! `// fbd-lint::allow(rule-name): reason`, which the engine uses to mute
//! individual diagnostics, and `// fbd-lint::hot` markers, which opt the
//! next function into the `hot-path-alloc` rule.

/// One parsed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment appears on.
    pub line: usize,
    /// Rule names listed inside `allow(...)`, comma-separated in source.
    pub rules: Vec<String>,
    /// Justification text after the closing `):`. Empty when omitted.
    pub reason: String,
    /// True when the comment is the only content on its line, in which case
    /// it applies to the next line of code rather than its own line.
    pub standalone: bool,
}

/// A source file with comments and literal bodies blanked out.
#[derive(Debug, Clone)]
pub struct CleanFile {
    /// Cleaned source, split into lines (no trailing newlines).
    pub lines: Vec<String>,
    /// Suppression comments found anywhere in the file.
    pub suppressions: Vec<Suppression>,
    /// 1-based lines carrying a `// fbd-lint::hot` marker. Each marker
    /// opts the next `fn` (or one on the marker's own line) into the
    /// `hot-path-alloc` rule.
    pub hot_markers: Vec<usize>,
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Regular string; `bool` is "previous char was a backslash".
    Str(bool),
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
    /// Char literal; `bool` is "previous char was a backslash".
    CharLit(bool),
}

/// Strips comments and literal bodies from `src`, preserving layout.
pub fn clean_source(src: &str) -> CleanFile {
    let mut lines: Vec<String> = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut hot_markers: Vec<usize> = Vec::new();

    let mut state = State::Code;
    for (idx, raw_line) in src.lines().enumerate() {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut out = String::with_capacity(raw_line.len());
        let mut i = 0usize;
        // Line comments never survive a newline.
        if state == State::LineComment {
            state = State::Code;
        }
        // A string/char literal cannot span a newline without a trailing
        // backslash; treat the new line as a continuation either way — the
        // cleaned output stays blank until the literal closes.
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        let comment: String = chars[i..].iter().collect();
                        if let Some(s) = parse_suppression(&comment, idx + 1, &out) {
                            suppressions.push(s);
                        }
                        if comment.trim_start_matches('/').trim() == "fbd-lint::hot" {
                            hot_markers.push(idx + 1);
                        }
                        out.extend(std::iter::repeat_n(' ', chars.len() - i));
                        i = chars.len();
                        continue;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        state = State::BlockComment(1);
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str(false);
                        out.push('"');
                    }
                    'b' if chars.get(i + 1) == Some(&'"') && !prev_is_ident(&chars, i) => {
                        out.push_str("b\"");
                        i += 2;
                        state = State::Str(false);
                        continue;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        // Consume the prefix (r, br, b) plus hashes and the
                        // opening quote.
                        let mut j = i;
                        while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                            out.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            out.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        // `is_raw_string_start` guarantees a quote here.
                        out.push('"');
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    'b' if chars.get(i + 1) == Some(&'\'') => {
                        out.push('b');
                        out.push('\'');
                        i += 2;
                        state = State::CharLit(false);
                        continue;
                    }
                    '\'' if is_char_literal_start(&chars, i) => {
                        state = State::CharLit(false);
                        out.push('\'');
                    }
                    _ => out.push(c),
                },
                State::LineComment => {
                    // Unreachable within a line (handled by the early jump),
                    // kept for completeness.
                    out.push(' ');
                }
                State::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        out.push_str("  ");
                        i += 2;
                        state = if depth > 1 {
                            State::BlockComment(depth - 1)
                        } else {
                            State::Code
                        };
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        out.push_str("  ");
                        i += 2;
                        state = State::BlockComment(depth + 1);
                        continue;
                    }
                    out.push(' ');
                }
                State::Str(escaped) => {
                    if escaped {
                        out.push(' ');
                        state = State::Str(false);
                    } else if c == '\\' {
                        out.push(' ');
                        state = State::Str(true);
                    } else if c == '"' {
                        out.push('"');
                        state = State::Code;
                    } else {
                        out.push(' ');
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                    out.push(' ');
                }
                State::CharLit(escaped) => {
                    if escaped {
                        out.push(' ');
                        state = State::CharLit(false);
                    } else if c == '\\' {
                        out.push(' ');
                        state = State::CharLit(true);
                    } else if c == '\'' {
                        out.push('\'');
                        state = State::Code;
                    } else {
                        out.push(' ');
                    }
                }
            }
            i += 1;
        }
        lines.push(out);
    }

    CleanFile {
        lines,
        suppressions,
        hot_markers,
    }
}

/// True when `chars[i]` begins a raw (or raw byte) string literal:
/// `r"`, `r#"`, `br"`, `br#"`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    // Must not be a normal identifier like `radius` or `break`.
    chars.get(j) == Some(&'"') && !prev_is_ident(chars, i)
}

/// True when the quote at `chars[i]` plus `hashes` trailing `#`s terminates
/// the raw string.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal (`'a'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    if prev_is_ident(chars, i) {
        // e.g. `Foo::<'a>` never lands here with ident before the quote, but
        // a stray case like `x'` should not open a literal.
        return false;
    }
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parses `// fbd-lint::allow(rule-a, rule-b): reason` from a line comment.
///
/// `code_before` is the cleaned code that precedes the comment on the same
/// line; when it is blank the suppression is standalone and applies to the
/// next code line.
fn parse_suppression(comment: &str, line: usize, code_before: &str) -> Option<Suppression> {
    let body = comment.trim_start_matches('/').trim_start();
    let rest = body.strip_prefix("fbd-lint::allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Suppression {
        line,
        rules,
        reason,
        standalone: code_before.trim().is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let x = 1; // unwrap() here is comment\n/* panic!() */ let y = 2;\n";
        let clean = clean_source(src);
        assert!(!clean.lines[0].contains("unwrap"));
        assert!(!clean.lines[1].contains("panic"));
        assert!(clean.lines[1].contains("let y = 2;"));
    }

    #[test]
    fn preserves_column_positions() {
        let src = "let s = \"abc==def\"; let t = 1;";
        let clean = clean_source(src);
        assert_eq!(clean.lines[0].len(), src.len());
        assert!(!clean.lines[0].contains("=="));
        assert_eq!(&clean.lines[0][20..], "let t = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code()";
        let clean = clean_source(src);
        assert!(clean.lines[0].contains("code()"));
        assert!(!clean.lines[0].contains("inner"));
        assert!(!clean.lines[0].contains("still"));
    }

    #[test]
    fn multiline_block_comment_blanks_doc_examples() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        let clean = clean_source(src);
        assert!(clean.lines.iter().all(|l| !l.contains("unwrap")));
        assert!(clean.lines[3].contains("fn f()"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let r = r#\"has \"quotes\" and unwrap()\"#; let c = '\"'; let l: &'static str = \"x\";";
        let clean = clean_source(src);
        assert!(!clean.lines[0].contains("unwrap"));
        assert!(clean.lines[0].contains("let c ="));
        assert!(clean.lines[0].contains("&'static str"));
    }

    #[test]
    fn lifetime_not_treated_as_char() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let clean = clean_source(src);
        assert_eq!(clean.lines[0], src);
    }

    #[test]
    fn string_spanning_escape() {
        let src = "let s = \"a\\\"b==c\"; foo();";
        let clean = clean_source(src);
        assert!(clean.lines[0].contains("foo();"));
        assert!(!clean.lines[0].contains("=="));
    }

    #[test]
    fn parses_trailing_suppression() {
        let src = "x.unwrap(); // fbd-lint::allow(no-panic): length checked above\n";
        let clean = clean_source(src);
        assert_eq!(clean.suppressions.len(), 1);
        let s = &clean.suppressions[0];
        assert_eq!(s.line, 1);
        assert_eq!(s.rules, vec!["no-panic".to_string()]);
        assert_eq!(s.reason, "length checked above");
        assert!(!s.standalone);
    }

    #[test]
    fn parses_standalone_multi_rule_suppression() {
        let src = "// fbd-lint::allow(no-panic, float-eq): tested exhaustively\nx.unwrap();\n";
        let clean = clean_source(src);
        assert_eq!(clean.suppressions.len(), 1);
        let s = &clean.suppressions[0];
        assert!(s.standalone);
        assert_eq!(s.rules.len(), 2);
    }

    #[test]
    fn parses_hot_markers_trailing_and_standalone() {
        let src = "// fbd-lint::hot\nfn tight() {}\npub fn also_tight() { // fbd-lint::hot\n}\n// fbd-lint::hotspot is not a marker\n";
        let clean = clean_source(src);
        assert_eq!(clean.hot_markers, vec![1, 3]);
    }

    #[test]
    fn suppression_without_reason_is_kept_with_empty_reason() {
        let src = "x.unwrap(); // fbd-lint::allow(no-panic)\n";
        let clean = clean_source(src);
        assert_eq!(clean.suppressions[0].reason, "");
    }
}
