//! NaN-safety rules.
//!
//! `float-eq`: `==`/`!=` where an operand is visibly a float. Exact float
//! equality is almost always a latent bug in detector code (NaN compares
//! unequal to everything, `-0.0 == 0.0`, accumulated rounding), and the two
//! intended uses — exact-zero guards and golden-value pins — deserve an
//! explicit suppression with a reason.
//!
//! `partial-cmp-unwrap`: `.partial_cmp(..).unwrap()/.expect(..)` panics the
//! moment a NaN reaches a sort key; `f64::total_cmp` is the drop-in,
//! panic-free, deterministic replacement.

use super::{contains_float_token, for_each_code_line, Rule, Sink};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;

pub struct FloatEq;

/// Characters that end an operand scan on either side of `==`/`!=`.
const STOPS_LEFT: &[char] = &[',', ';', '{', '(', '[', '=', '<', '>', '!', '&', '|'];
const STOPS_RIGHT: &[char] = &[',', ';', '{', ')', ']', '}', '&', '|'];

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "no ==/!= on float expressions (NaN-unsafe, rounding-fragile); \
         compare with tolerance, total_cmp, or suppress with a reason"
    }

    fn explain(&self) -> &'static str {
        "Why: detector code computes with NaN-capable values (production samples \
include NaN and Inf by design); `==`/`!=` on floats is NaN-unsafe (NaN != NaN), \
treats `-0.0 == 0.0`, and silently breaks once accumulated rounding shifts a \
value by one ulp. Regression verdicts must not flip on either effect.\n\
\n\
How it checks: `==`/`!=` is flagged when either operand visibly denotes a \
float — a literal (`0.5`), `f64::`/`f32::` constants, `as f64` casts, or \
typed suffixes — scanning operands only to the nearest expression boundary.\n\
\n\
Fix pattern: compare with an explicit tolerance, use `total_cmp` for \
ordering, or — for exact-zero guards and golden-value pins, the two \
legitimate uses — keep the comparison and justify it with \
`// fbd-lint::allow(float-eq): <why exactness is intended>`."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && ctx.crate_name != "fbd-lint"
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for_each_code_line(clean, ctx, |idx, line| {
            let chars: Vec<char> = line.chars().collect();
            let mut reported = false;
            let mut i = 0;
            while i + 1 < chars.len() && !reported {
                let pair = (chars[i], chars[i + 1]);
                let is_eq = pair == ('=', '=');
                let is_ne = pair == ('!', '=');
                if (is_eq || is_ne) && chars.get(i + 2) != Some(&'=') && operator_position(&chars, i)
                {
                    let left: String = chars[..i]
                        .iter()
                        .rev()
                        .take_while(|c| !STOPS_LEFT.contains(c))
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .collect();
                    let right: String = chars[i + 2..]
                        .iter()
                        .take_while(|c| !STOPS_RIGHT.contains(c))
                        .collect();
                    if contains_float_token(&left) || contains_float_token(&right) {
                        let op = if is_eq { "==" } else { "!=" };
                        sink.push(
                            idx,
                            self.name(),
                            format!(
                                "`{op}` on a float expression is NaN-unsafe; \
                                 compare with a tolerance or justify with a suppression"
                            ),
                        );
                        reported = true;
                    }
                }
                i += 1;
            }
        });
    }
}

/// True when the `==`/`!=` starting at `i` is a standalone comparison
/// operator (not part of `<=`, `>=`, `=>`, `+=`, …).
fn operator_position(chars: &[char], i: usize) -> bool {
    if chars[i] == '=' && i > 0 {
        let prev = chars[i - 1];
        if matches!(
            prev,
            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
        ) {
            return false;
        }
    }
    true
}

pub struct PartialCmpUnwrap;

impl Rule for PartialCmpUnwrap {
    fn name(&self) -> &'static str {
        "partial-cmp-unwrap"
    }

    fn description(&self) -> &'static str {
        "no .partial_cmp(..).unwrap()/.expect(..) — panics on NaN; use total_cmp"
    }

    fn explain(&self) -> &'static str {
        "Why: `partial_cmp` returns `None` the moment a NaN reaches it, so \
`.partial_cmp(..).unwrap()` is a panic wired to the first NaN in a sort key — \
and production samples contain NaN by design. `f64::total_cmp` gives the \
same order on non-NaN data, totally orders NaN, never panics, and is \
deterministic.\n\
\n\
How it checks: `.partial_cmp(` followed by `.unwrap()` or `.expect(` within \
the same statement (rustfmt line wrapping included) is flagged.\n\
\n\
Fix pattern: `a.total_cmp(b)` in comparators; `partial_cmp(..).unwrap_or(..)` \
where a NaN-default is genuinely correct."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        matches!(ctx.kind, FileKind::Lib | FileKind::Bin) && ctx.crate_name != "fbd-lint"
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for_each_code_line(clean, ctx, |idx, line| {
            let Some(pos) = line.find(".partial_cmp(") else {
                return;
            };
            // The unwrap may sit on the same line or be wrapped by rustfmt
            // onto the next couple of lines; scan to the end of the
            // statement (first `;`) within a small window.
            let mut window = line[pos..].to_string();
            for follow in clean.lines.iter().skip(idx + 1).take(2) {
                if window.contains(';') {
                    break;
                }
                window.push_str(follow);
            }
            let stmt = window.split(';').next().unwrap_or("");
            if stmt.contains(".unwrap()") || stmt.contains(".expect(") {
                sink.push(
                    idx,
                    self.name(),
                    "unwrapping `partial_cmp` panics on NaN; use `f64::total_cmp` \
                     (same order on non-NaN data, total and panic-free)"
                        .to_string(),
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::diagnostics::Diagnostic;
    use crate::lexer::clean_source;

    fn run_rule(rule: &dyn Rule, src: &str, rel_path: &str) -> Vec<Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel_path, &clean);
        let mut sink = Sink::new(rel_path);
        if rule.applies_to(&ctx) {
            rule.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn flags_float_literal_comparison() {
        let d = run_rule(&FloatEq, "fn f() { if s == 0.0 { } }\n", "crates/stats/src/a.rs");
        assert_eq!(d.len(), 1);
        let d = run_rule(&FloatEq, "fn f() { if x != 1.5e3 { } }\n", "crates/stats/src/a.rs");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ignores_integer_comparisons_and_compound_ops() {
        let src = "fn f() { if n % 2 == 1 && a <= 2.0 && b >= 0.5 { } let c = m.len() == 0; }\n";
        assert!(run_rule(&FloatEq, src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn ignores_match_arms_and_version_strings() {
        let src = "fn f() { match x { A => 1.0, _ => 2.0 }; let v = s == \"1.0\"; }\n";
        assert!(run_rule(&FloatEq, src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn float_comparison_behind_call_boundary_not_flagged() {
        // `foo(1.0, x == y)`: the literal belongs to another argument.
        let src = "fn f() { foo(1.0, x == y); }\n";
        assert!(run_rule(&FloatEq, src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn flags_partial_cmp_unwrap_same_line_and_wrapped() {
        let src = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(run_rule(&PartialCmpUnwrap, src, "crates/stats/src/a.rs").len(), 1);
        let src = "fn f() {\n    v.sort_by(|a, b| {\n        b.partial_cmp(a)\n            .expect(\"finite\")\n    });\n}\n";
        assert_eq!(run_rule(&PartialCmpUnwrap, src, "crates/stats/src/a.rs").len(), 1);
    }

    #[test]
    fn total_cmp_and_handled_partial_cmp_pass() {
        let src = "fn f() { v.sort_by(|a, b| a.total_cmp(b)); let o = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal); }\n";
        assert!(run_rule(&PartialCmpUnwrap, src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn applies_to_bins_for_partial_cmp_but_not_float_eq() {
        let src = "fn main() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(
            run_rule(&PartialCmpUnwrap, src, "crates/bench/src/bin/x.rs").len(),
            1
        );
        let src = "fn main() { let b = x == 0.0; }\n";
        assert!(run_rule(&FloatEq, src, "crates/bench/src/bin/x.rs").is_empty());
    }
}
