//! `lock-order` and `guard-across-blocking`: the static half of the
//! workspace lock discipline.
//!
//! `LOCK_ORDER.manifest` at the repo root declares every lock domain with a
//! rank, the crate it lives in, and the receiver identifiers it is
//! acquired through (`shard.read()`, `engine.lock()`, ...). The same file
//! is embedded into `fbd-sync`, whose debug-build validator enforces the
//! hierarchy at runtime; these rules enforce it at lint time, before the
//! code ever runs:
//!
//! * **lock-order** — tracks live guards with a brace-depth state machine
//!   over the cleaned token view and flags any `.lock()`/`.read()`/
//!   `.write()` whose domain rank is not strictly greater than every rank
//!   already held. It also flags acquisitions whose receiver resolves to
//!   no manifest domain (every lock in a ranked crate must be declared)
//!   and raw `Mutex`/`RwLock`/`parking_lot` types (ranked crates go
//!   through `fbd_sync::OrderedMutex`/`OrderedRwLock`).
//! * **guard-across-blocking** — flags a guard held across a channel
//!   `.send(`/`.recv(` (appender stalls would back up into the lock), and
//!   across a call into another crate's lock-taking entry point
//!   (`enters=` in the manifest) when the held rank is not strictly below
//!   the entered domain's rank.
//!
//! The guard tracker is an approximation, deliberately conservative in the
//! same direction as the runtime validator: a named guard (`let g = x.lock();`)
//! lives until its block closes or `drop(g)`; a chained temporary
//! (`x.lock().field`) lives until the `;` that ends its statement. Receiver
//! identifiers are resolved per line, which is why every supervised lock
//! site names its receiver after the manifest entry (`shard`, `slot`,
//! `engine`, ...).

use super::{token_starts, Rule, Sink};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;
use std::sync::OnceLock;

/// The checked-in lock hierarchy, embedded at compile time so the lint
/// binary needs no runtime file lookup and cannot drift from the manifest
/// it was built against. `fbd-sync` embeds the same file from its tests.
pub const MANIFEST_SRC: &str = include_str!("../../../../LOCK_ORDER.manifest");

/// One `rank domain crate recv=a,b [enters=c]` manifest line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    pub rank: u16,
    pub name: String,
    pub crate_name: String,
    /// Receiver identifiers that acquire this domain (`shard` in
    /// `shard.read()`).
    pub recv: Vec<String>,
    /// Receiver identifiers whose method calls may acquire this domain
    /// internally (cross-crate entry points, `store` in
    /// `store.snapshot_deltas(..)`).
    pub enters: Vec<String>,
}

/// Parsed `LOCK_ORDER.manifest`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockManifest {
    pub domains: Vec<DomainSpec>,
}

impl LockManifest {
    /// Parses manifest text. Comment (`#`) and blank lines are skipped;
    /// data lines are `rank name crate recv=a,b [enters=c,d]`.
    pub fn parse(src: &str) -> Result<LockManifest, String> {
        let mut domains = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let rank: u16 = fields
                .next()
                .ok_or_else(|| format!("line {}: missing rank", idx + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad rank: {e}", idx + 1))?;
            let name = fields
                .next()
                .ok_or_else(|| format!("line {}: missing domain name", idx + 1))?
                .to_string();
            let crate_name = fields
                .next()
                .ok_or_else(|| format!("line {}: missing crate", idx + 1))?
                .to_string();
            let mut recv = Vec::new();
            let mut enters = Vec::new();
            for field in fields {
                if let Some(list) = field.strip_prefix("recv=") {
                    recv.extend(list.split(',').map(str::to_string));
                } else if let Some(list) = field.strip_prefix("enters=") {
                    enters.extend(list.split(',').map(str::to_string));
                } else {
                    return Err(format!("line {}: unknown field `{field}`", idx + 1));
                }
            }
            if recv.is_empty() {
                return Err(format!("line {}: domain `{name}` lists no recv=", idx + 1));
            }
            domains.push(DomainSpec {
                rank,
                name,
                crate_name,
                recv,
                enters,
            });
        }
        for pair in domains.windows(2) {
            if pair[1].rank <= pair[0].rank {
                return Err(format!(
                    "ranks must be strictly ascending: `{}` ({}) after `{}` ({})",
                    pair[1].name, pair[1].rank, pair[0].name, pair[0].rank
                ));
            }
        }
        Ok(LockManifest { domains })
    }

    /// The embedded manifest, parsed once. A parse failure yields an empty
    /// manifest (rules fall silent); the unit test below pins that the
    /// checked-in file parses, so CI catches manifest rot.
    pub fn embedded() -> &'static LockManifest {
        static CELL: OnceLock<LockManifest> = OnceLock::new();
        CELL.get_or_init(|| LockManifest::parse(MANIFEST_SRC).unwrap_or_default())
    }

    /// Whether any domain lives in `crate_name` — i.e. the crate opted into
    /// lock-order checking.
    pub fn covers_crate(&self, crate_name: &str) -> bool {
        self.domains.iter().any(|d| d.crate_name == crate_name)
    }

    /// The domain acquired by `recv.lock()` inside `crate_name`.
    fn resolve(&self, crate_name: &str, recv: &str) -> Option<&DomainSpec> {
        self.domains
            .iter()
            .find(|d| d.crate_name == crate_name && d.recv.iter().any(|r| r == recv))
    }
}

/// A lock guard the tracker currently believes is live.
struct LiveGuard {
    rank: u16,
    domain: String,
    /// `Some(name)` for `let name = x.lock();`, `None` for temporaries.
    binding: Option<String>,
    /// Brace depth at acquisition: the guard dies when depth drops below
    /// it (block close) or, for temporaries, at a `;` back at this depth.
    acq_depth: usize,
    temporary: bool,
    /// 0-based acquisition line, for diagnostics.
    line: usize,
}

/// An acquisition seen mid-statement whose guard form (named vs temporary)
/// is decided by the next non-whitespace character.
struct PendingAcq {
    rank: u16,
    domain: String,
    binding: Option<String>,
    acq_depth: usize,
    line: usize,
}

/// Everything the shared walk finds; each rule reports its own half.
#[derive(Default)]
struct Findings {
    /// (0-based line, message) — `lock-order` violations.
    order: Vec<(usize, String)>,
    /// (0-based line, message) — `guard-across-blocking` violations.
    blocking: Vec<(usize, String)>,
}

const ACQ_NEEDLES: &[&str] = &[".lock()", ".read()", ".write()"];
const CHANNEL_NEEDLES: &[&str] = &[".send(", ".recv("];

/// Walks the cleaned file once, tracking brace depth, statement text, and
/// live guards, and records violations for both rules.
fn analyze(clean: &CleanFile, ctx: &FileContext, manifest: &LockManifest) -> Findings {
    let mut findings = Findings::default();
    let mut depth: usize = 0;
    let mut stmt = String::new();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut pending: Option<PendingAcq> = None;

    for (idx, line) in clean.lines.iter().enumerate() {
        if ctx.is_test_line(idx) {
            // Test regions are brace-balanced whole items, so skipping
            // them keeps the depth counter consistent.
            stmt.clear();
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < line.len() {
            // Acquisition needles first: they advance past themselves so
            // the pending guard resolves on the character *after* `()`.
            if let Some(needle) = ACQ_NEEDLES
                .iter()
                .find(|n| line[i..].starts_with(**n))
                .copied()
            {
                if let Some(p) = pending.take() {
                    // `x.lock().read()` style chains: the first guard is a
                    // temporary by construction.
                    push_guard(&mut guards, p, true);
                }
                handle_acquisition(
                    needle,
                    &stmt,
                    idx,
                    depth,
                    &guards,
                    &mut pending,
                    &mut findings,
                    ctx,
                    manifest,
                );
                stmt.push_str(needle);
                i += needle.len();
                continue;
            }
            if let Some(needle) = CHANNEL_NEEDLES
                .iter()
                .find(|n| line[i..].starts_with(**n))
                .copied()
            {
                for g in &guards {
                    findings.blocking.push((
                        idx,
                        format!(
                            "`{}` guard (rank {}, acquired line {}) held across channel `{}..)`; \
                             release the guard before blocking on a channel",
                            g.domain,
                            g.rank,
                            g.line + 1,
                            needle
                        ),
                    ));
                }
            }
            check_enters(line, i, idx, &guards, manifest, &mut findings);
            if line[i..].starts_with("drop(") && ident_boundary_before(bytes, i) {
                let inner = &line[i + "drop(".len()..];
                if let Some(end) = inner.find(')') {
                    let name = inner[..end].trim();
                    if let Some(pos) = guards
                        .iter()
                        .rposition(|g| g.binding.as_deref() == Some(name))
                    {
                        guards.remove(pos);
                    }
                }
            }

            let ch = bytes[i] as char;
            if pending.is_some() && !ch.is_ascii_whitespace() {
                if let Some(p) = pending.take() {
                    if ch == ';' && p.binding.is_some() {
                        push_guard(&mut guards, p, false);
                    } else if ch != ';' {
                        push_guard(&mut guards, p, true);
                    }
                    // `;` without a `let` binding: the guard dies at this
                    // very statement end — never live, never tracked.
                }
            }
            match ch {
                '{' => {
                    depth += 1;
                    stmt.clear();
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.acq_depth <= depth);
                    stmt.clear();
                }
                ';' => {
                    guards.retain(|g| !(g.temporary && g.acq_depth >= depth));
                    stmt.clear();
                }
                '=' if line[i..].starts_with("=>") => stmt.clear(),
                _ => stmt.push(ch),
            }
            i += 1;
        }
    }
    findings
}

fn push_guard(guards: &mut Vec<LiveGuard>, p: PendingAcq, temporary: bool) {
    guards.push(LiveGuard {
        rank: p.rank,
        domain: p.domain,
        binding: if temporary { None } else { p.binding },
        acq_depth: p.acq_depth,
        temporary,
        line: p.line,
    });
}

#[allow(clippy::too_many_arguments)]
fn handle_acquisition(
    needle: &str,
    stmt: &str,
    idx: usize,
    depth: usize,
    guards: &[LiveGuard],
    pending: &mut Option<PendingAcq>,
    findings: &mut Findings,
    ctx: &FileContext,
    manifest: &LockManifest,
) {
    let recv = match extract_receiver(stmt) {
        Some(r) => r,
        None => {
            findings.order.push((
                idx,
                format!(
                    "cannot resolve the receiver of `{needle}` on this line; \
                     bind the lock to a manifest-named receiver first"
                ),
            ));
            return;
        }
    };
    let spec = match manifest.resolve(&ctx.crate_name, &recv) {
        Some(s) => s,
        None => {
            findings.order.push((
                idx,
                format!(
                    "`{needle}` receiver `{recv}` has no domain in LOCK_ORDER.manifest \
                     for crate `{}`; declare it or name the receiver after its domain",
                    ctx.crate_name
                ),
            ));
            return;
        }
    };
    for g in guards {
        if g.rank >= spec.rank {
            findings.order.push((
                idx,
                format!(
                    "acquired `{}` (rank {}) while holding `{}` (rank {}, acquired line {}); \
                     LOCK_ORDER.manifest requires strictly ascending ranks",
                    spec.name,
                    spec.rank,
                    g.domain,
                    g.rank,
                    g.line + 1
                ),
            ));
        }
    }
    *pending = Some(PendingAcq {
        rank: spec.rank,
        domain: spec.name.clone(),
        binding: let_binding(stmt),
        acq_depth: depth,
        line: idx,
    });
}

/// Flags `recv.method(..)` calls into another crate's lock-taking entry
/// point (`enters=` in the manifest) while holding a rank that is not
/// strictly below the entered domain — the callee would acquire
/// equal-or-lower, inverting the hierarchy across the crate boundary.
fn check_enters(
    line: &str,
    i: usize,
    idx: usize,
    guards: &[LiveGuard],
    manifest: &LockManifest,
    findings: &mut Findings,
) {
    if guards.is_empty() {
        return;
    }
    for spec in &manifest.domains {
        for entry in &spec.enters {
            if line[i..].starts_with(entry.as_str())
                && line[i + entry.len()..].starts_with('.')
                && ident_boundary_before(line.as_bytes(), i)
            {
                for g in guards {
                    if g.rank >= spec.rank {
                        findings.blocking.push((
                            idx,
                            format!(
                                "`{}` guard (rank {}, acquired line {}) held across a call \
                                 into `{entry}` (enters `{}`, rank {}); release the guard first",
                                g.domain,
                                g.rank,
                                g.line + 1,
                                spec.name,
                                spec.rank
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn ident_boundary_before(bytes: &[u8], i: usize) -> bool {
    i == 0 || {
        let prev = bytes[i - 1];
        !(prev.is_ascii_alphanumeric() || prev == b'_')
    }
}

/// The receiver identifier of a method call, read backwards from the end
/// of the accumulated statement text: balanced `(..)`/`[..]` groups are
/// skipped, then the identifier is taken (`self.shards[i % n]` → `shards`,
/// `self.shard(id)` → `shard`, `engine` → `engine`).
fn extract_receiver(stmt: &str) -> Option<String> {
    let bytes = stmt.as_bytes();
    let mut i = stmt.len();
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        let c = bytes[i - 1];
        if c == b')' || c == b']' {
            let mut depth = 0i32;
            let mut closed = false;
            while i > 0 {
                let c = bytes[i - 1];
                if c == b')' || c == b']' {
                    depth += 1;
                } else if c == b'(' || c == b'[' {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        closed = true;
                        break;
                    }
                }
                i -= 1;
            }
            if !closed {
                return None;
            }
            continue;
        }
        break;
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some(stmt[i..end].to_string())
    }
}

/// `Some(name)` when the statement is a `let` (or `let mut`) binding.
fn let_binding(stmt: &str) -> Option<String> {
    let t = stmt.trim_start();
    let t = t.strip_prefix("let ")?.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    if end == 0 {
        None
    } else {
        Some(t[..end].to_string())
    }
}

/// Raw lock types banned in ranked crates: every lock goes through
/// `fbd_sync` so it carries a rank the runtime validator can check.
const RAW_TYPES: &[&str] = &["Mutex", "RwLock", "parking_lot"];

pub struct LockOrder;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "lock acquisitions in ranked crates must follow LOCK_ORDER.manifest: \
         strictly ascending ranks, no undeclared or raw locks"
    }

    fn explain(&self) -> &'static str {
        "Why: the sharded scan engine, the TSDB store, and the ingest front-end \
take locks from multiple threads; two sites acquiring the same pair of locks \
in opposite orders deadlock only under the right interleaving, which in-production \
monitoring cannot afford to discover live. LOCK_ORDER.manifest declares every \
lock domain with a rank; holding rank R permits acquiring only ranks strictly \
greater than R, which makes the wait-for graph acyclic by construction.\n\
\n\
How it checks: guards are tracked over the cleaned token view with a brace-depth \
state machine (named guards live to end of block or `drop(g)`, chained temporaries \
to end of statement), and each `.lock()`/`.read()`/`.write()` is resolved to its \
domain via the receiver identifier listed under `recv=` in the manifest. \
Acquisitions that resolve to no domain, and raw `Mutex`/`RwLock`/`parking_lot` \
types, are also flagged — every lock in a ranked crate goes through \
`fbd_sync::OrderedMutex`/`OrderedRwLock` so the debug-build runtime validator \
sees the same hierarchy.\n\
\n\
Fix pattern: acquire in ascending rank order (restructure so the lower-ranked \
guard is dropped first, or re-rank the domains in LOCK_ORDER.manifest and \
`fbd_sync::LockDomain` together); name lock receivers after their manifest \
entry (`shard`, `slot`, `engine`, ...); wrap new locks in \
`fbd_sync::OrderedMutex::new(LockDomain::X, value)` and declare the domain in \
the manifest."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && LockManifest::embedded().covers_crate(&ctx.crate_name)
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        let manifest = LockManifest::embedded();
        for (idx, line) in clean.lines.iter().enumerate() {
            if ctx.is_test_line(idx) {
                continue;
            }
            for needle in RAW_TYPES {
                for at in token_starts(line, needle) {
                    let after = line.as_bytes().get(at + needle.len()).copied();
                    let ident_continues =
                        after.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
                    if !ident_continues {
                        sink.push(
                            idx,
                            self.name(),
                            format!(
                                "raw `{needle}` in a lock-ranked crate; use \
                                 fbd_sync::OrderedMutex/OrderedRwLock with a \
                                 LOCK_ORDER.manifest domain"
                            ),
                        );
                    }
                }
            }
        }
        for (idx, message) in analyze(clean, ctx, manifest).order {
            sink.push(idx, self.name(), message);
        }
    }
}

pub struct GuardAcrossBlocking;

impl Rule for GuardAcrossBlocking {
    fn name(&self) -> &'static str {
        "guard-across-blocking"
    }

    fn description(&self) -> &'static str {
        "no lock guard held across channel send/recv or across a call into \
         another crate's lock-taking entry point"
    }

    fn explain(&self) -> &'static str {
        "Why: a bounded-channel `send` blocks when the queue is full and `recv` \
blocks when it is empty; a guard held across either turns backpressure into \
lock contention — every other thread touching that lock stalls behind a \
consumer that may itself be waiting on the lock holder (a classic A/B \
deadlock through the channel). Similarly, calling into another supervised \
crate's public API while holding a guard lets the callee acquire its own \
locks under yours, creating cross-crate orderings no single crate can see.\n\
\n\
How it checks: the same guard tracker as `lock-order` watches for `.send(` \
and `.recv(` while any guard is live (`.try_send(`/`.try_recv(` are \
non-blocking and exempt), and for calls through receivers listed under \
`enters=` in LOCK_ORDER.manifest — those are flagged only when a held rank \
is not strictly below the entered domain's rank, so the documented \
engine-shard → store-shard read path stays legal.\n\
\n\
Fix pattern: compute the message first, drop the guard (end its block or \
`drop(g)`), then send; or switch the edge to `try_send` and count the \
shed points. For cross-crate calls, snapshot what you need out of the \
guard, release it, then call."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && LockManifest::embedded().covers_crate(&ctx.crate_name)
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for (idx, message) in analyze(clean, ctx, LockManifest::embedded()).blocking {
            sink.push(idx, self.name(), message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::clean_source;

    #[test]
    fn embedded_manifest_parses_with_all_domains() {
        let m = LockManifest::parse(MANIFEST_SRC).expect("checked-in manifest must parse");
        assert_eq!(m.domains.len(), 7);
        assert!(m.covers_crate("fbdetect-core"));
        assert!(m.covers_crate("fbd-tsdb"));
        assert!(m.covers_crate("fbd-ingest"));
        assert!(!m.covers_crate("fbd-stats"));
        let store = m.resolve("fbd-tsdb", "shard").expect("store shard domain");
        assert_eq!(store.rank, 40);
        assert_eq!(store.enters, vec!["store".to_string()]);
    }

    #[test]
    fn manifest_rejects_non_ascending_ranks_and_missing_recv() {
        assert!(LockManifest::parse("20 b c recv=x\n10 a c recv=y\n").is_err());
        assert!(LockManifest::parse("10 a c\n").is_err());
        assert!(LockManifest::parse("10 a c recv=x bogus=1\n").is_err());
    }

    fn run_rule(rule: &dyn Rule, src: &str, rel: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel, &clean);
        let mut sink = Sink::new(rel);
        if rule.applies_to(&ctx) {
            rule.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let src = "fn f(engine: &E, quarantine: &Q) {\n    let mut engine = engine.lock();\n    let mut q = quarantine.lock();\n    q.push(engine.take());\n}\n";
        assert!(run_rule(&LockOrder, src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn descending_acquisition_is_flagged() {
        let src = "fn f(engine: &E, quarantine: &Q) {\n    let mut q = quarantine.lock();\n    let mut engine = engine.lock();\n}\n";
        let diags = run_rule(&LockOrder, src, "crates/ingest/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("rank 10"));
        assert!(diags[0].message.contains("rank 20"));
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = "fn f(engine: &E, quarantine: &Q) {\n    let mut q = quarantine.lock();\n    drop(q);\n    let mut engine = engine.lock();\n}\n";
        assert!(run_rule(&LockOrder, src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn block_close_releases_guard() {
        let src = "fn f(engine: &E, quarantine: &Q) {\n    {\n        let q = quarantine.lock();\n        q.len();\n    }\n    let e = engine.lock();\n}\n";
        assert!(run_rule(&LockOrder, src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let src = "fn f(engine: &E, quarantine: &Q) {\n    let n = quarantine.lock().len();\n    let e = engine.lock();\n}\n";
        assert!(run_rule(&LockOrder, src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn reacquiring_same_rank_while_held_is_flagged() {
        let src = "fn f(e: &ScanState) {\n    let a = e.shards[0].lock();\n    let b = e.shards[1].lock();\n}\n";
        let diags = run_rule(&LockOrder, src, "crates/core/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("engine-shard"));
    }

    #[test]
    fn unresolved_receiver_is_flagged() {
        let src = "fn f(x: &M) {\n    let g = mystery.lock();\n}\n";
        let diags = run_rule(&LockOrder, src, "crates/tsdb/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("mystery"));
    }

    #[test]
    fn raw_mutex_type_flagged_ordered_wrappers_not() {
        let src = "use fbd_sync::{LockDomain, OrderedMutex};\nstruct S { m: Mutex<u32> }\n";
        let diags = run_rule(&LockOrder, src, "crates/core/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        let ok = "use fbd_sync::OrderedRwLock;\nfn f(g: &OrderedMutexGuard<u32>) {}\n";
        assert!(run_rule(&LockOrder, ok, "crates/core/src/x.rs").is_empty());
    }

    #[test]
    fn receiver_extraction_handles_index_and_call_chains() {
        assert_eq!(
            extract_receiver("let mut guard = self.shards[idx % self.shards.len()]"),
            Some("shards".to_string())
        );
        assert_eq!(
            extract_receiver("let shard = self.shard(id)"),
            Some("shard".to_string())
        );
        assert_eq!(
            extract_receiver("match snapshots.get(i).and_then(|slot| slot"),
            Some("slot".to_string())
        );
        assert_eq!(extract_receiver(""), None);
    }

    #[test]
    fn guard_across_send_is_flagged_try_send_is_not() {
        let src = "fn f(engine: &E, tx: &Sender<u32>) {\n    let g = engine.lock();\n    tx.send(g.id());\n}\n";
        let diags = run_rule(&GuardAcrossBlocking, src, "crates/ingest/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains(".send("));
        let ok = "fn f(engine: &E, tx: &Sender<u32>) {\n    let g = engine.lock();\n    let _ = tx.try_send(g.id());\n}\n";
        assert!(run_rule(&GuardAcrossBlocking, ok, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn enters_call_flagged_only_at_equal_or_higher_rank() {
        // engine-shard (30) entering store (40) is the documented legal edge.
        let legal = "fn f(s: &ScanState, store: &T) {\n    let mut guard = s.shards[0].lock();\n    let d = store.snapshot_deltas(&guard.ids);\n}\n";
        assert!(run_rule(&GuardAcrossBlocking, legal, "crates/core/src/x.rs").is_empty());
        // scan-cache (50) entering store (40) inverts across the boundary.
        let bad = "fn f(c: &ScanCache, store: &T) {\n    let inner = c.inner.lock();\n    let d = store.windows(&inner.ids);\n}\n";
        let diags = run_rule(&GuardAcrossBlocking, bad, "crates/core/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("scan-cache"));
        assert!(diags[0].message.contains("store-shard"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(e: &E, q: &Q) {\n        let q = quarantine.lock();\n        let e = engine.lock();\n    }\n}\n";
        assert!(run_rule(&LockOrder, src, "crates/ingest/src/x.rs").is_empty());
    }
}
