//! `counted-loss`: every point-shedding site must count what it sheds.
//!
//! The ingest front-end's ground rule (PR 6, `IngestStats::is_accounted`)
//! is that a submitted point either lands in the store or lands in exactly
//! one loss counter — never vanishes. The runtime half is the proptest
//! `chaotic_input_never_panics_and_accounts_every_point`; this rule is the
//! static half: at every site that can drop data (a failed channel send, a
//! shed via `try_recv`, a `TrySendError`/`SendError` match arm), the block
//! handling the loss must increment an atomic counter (`.fetch_add(`), or
//! carry a reasoned `fbd-lint::allow(counted-loss)`.
//!
//! Loss sites are recognized by token: `.try_recv()`, `SendError(`,
//! `TrySendError::Full(`, `TrySendError::Disconnected(`, and
//! `.is_err()` applied to a `send`/`try_send` in the same statement. The
//! "same block" is the first `{ .. }` opened at or after the loss token
//! (the match arm or `if` body that handles it); a brace-less handler is
//! checked to the end of its statement.

use super::{token_starts, Rule, Sink};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;

/// Tokens that introduce a potential point-loss site.
const LOSS_TOKENS: &[&str] = &[
    ".try_recv()",
    "SendError(",
    "TrySendError::Full(",
    "TrySendError::Disconnected(",
];

/// Crates under the accounting invariant: the ingest front-end and the
/// core pipeline it feeds.
const ACCOUNTED_CRATES: &[&str] = &["fbd-ingest", "fbdetect-core"];

pub struct CountedLoss;

impl Rule for CountedLoss {
    fn name(&self) -> &'static str {
        "counted-loss"
    }

    fn description(&self) -> &'static str {
        "every shed/drop site in the ingest path must increment a loss \
         counter in the same block (IngestStats::is_accounted)"
    }

    fn explain(&self) -> &'static str {
        "Why: FBDetect monitors production by subtraction — what arrived minus \
what was detected must equal what was counted as shed, quarantined, or \
errored. A single drop site that forgets its counter silently breaks \
`IngestStats::is_accounted`, and the proptests only catch it if the fuzzer \
happens to drive that branch. This rule makes the accounting invariant \
static: the branch cannot exist without its counter.\n\
\n\
How it checks: loss sites are found by token — `.try_recv()` sheds, \
`SendError(`/`TrySendError::Full(`/`TrySendError::Disconnected(` match \
arms, and `.is_err()` applied to a `send`/`try_send` in the same \
statement. The handler block (the first `{ .. }` opened at or after the \
token) must contain an atomic `.fetch_add(`.\n\
\n\
Fix pattern: count the loss where it happens — \
`self.counters.shed_points.fetch_add(points, Ordering::Relaxed);` inside \
the same arm or `if` body — and fold the counter into \
`IngestStats::is_accounted`. If the site provably loses nothing (e.g. the \
value is re-queued), say so with \
`// fbd-lint::allow(counted-loss): <why no points are lost>`."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && ACCOUNTED_CRATES.contains(&ctx.crate_name.as_str())
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        let flat = clean.lines.join("\n");
        // Byte offset where each 0-based line starts in `flat`.
        let mut line_starts = vec![0usize];
        for line in &clean.lines {
            let last = *line_starts.last().unwrap_or(&0);
            line_starts.push(last + line.len() + 1);
        }
        let line_of = |off: usize| match line_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };

        let mut events: Vec<usize> = Vec::new();
        for (idx, line) in clean.lines.iter().enumerate() {
            if ctx.is_test_line(idx) {
                continue;
            }
            let base = line_starts[idx];
            for needle in LOSS_TOKENS {
                for at in token_starts(line, needle) {
                    events.push(base + at);
                }
            }
            for at in token_starts(line, ".is_err()") {
                let off = base + at;
                // A send result checked with `.is_err()` discards the
                // unsent value: scan back to the statement start for the
                // send that produced it.
                let stmt_start = flat[..off].rfind(';').map(|p| p + 1).unwrap_or(0);
                let span = &flat[stmt_start..off];
                if span.contains(".send(") || span.contains(".try_send(") {
                    events.push(off);
                }
            }
        }

        for off in events {
            if !loss_is_counted(&flat, off) {
                sink.push(
                    line_of(off),
                    self.name(),
                    "uncounted loss site: the block handling this shed/drop must \
                     `.fetch_add(` a loss counter (IngestStats::is_accounted) or carry \
                     `fbd-lint::allow(counted-loss): reason`"
                        .to_string(),
                );
            }
        }
    }
}

/// True when the handler window for the loss token at `off` contains an
/// atomic counter increment. The window is the first brace block opened at
/// or after `off` (before the statement ends); with no block, the rest of
/// the statement.
fn loss_is_counted(flat: &str, off: usize) -> bool {
    let bytes = flat.as_bytes();
    let mut i = off;
    let open = loop {
        match bytes.get(i) {
            None => return false,
            Some(b'{') => break Some(i),
            Some(b';') => break None,
            Some(_) => i += 1,
        }
    };
    let window = match open {
        Some(start) => {
            let mut depth = 0usize;
            let mut j = start;
            loop {
                match bytes.get(j) {
                    None => break &flat[start..],
                    Some(b'{') => depth += 1,
                    Some(b'}') => {
                        depth -= 1;
                        if depth == 0 {
                            break &flat[start..=j];
                        }
                    }
                    Some(_) => {}
                }
                j += 1;
            }
        }
        None => &flat[off..i],
    };
    window.contains(".fetch_add(")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::clean_source;

    fn run_on(src: &str, rel: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel, &clean);
        let mut sink = Sink::new(rel);
        if CountedLoss.applies_to(&ctx) {
            CountedLoss.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn counted_shed_is_clean() {
        let src = "fn f(&self) {\n    match self.rx.try_recv() {\n        Ok(shed) => {\n            self.counters.shed.fetch_add(shed.points, Ordering::Relaxed);\n        }\n        Err(_) => {}\n    }\n}\n";
        assert!(run_on(src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn uncounted_try_recv_is_flagged() {
        let src = "fn f(&self) {\n    match self.rx.try_recv() {\n        Ok(_) => {}\n        Err(_) => {}\n    }\n}\n";
        let diags = run_on(src, "crates/ingest/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn send_is_err_with_struct_literal_resolves_across_braces() {
        // The `{` of the struct literal must not end the backwards scan for
        // the `.send(` that produced the checked result.
        let bad = "fn f(&self) {\n    let n = chunk.len();\n    if tx.send(Routed { points: chunk }).is_err() {\n        log();\n    }\n}\n";
        let diags = run_on(bad, "crates/ingest/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        let good = "fn f(&self) {\n    let n = chunk.len();\n    if tx.send(Routed { points: chunk }).is_err() {\n        self.c.lost.fetch_add(n, Ordering::Relaxed);\n    }\n}\n";
        assert!(run_on(good, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn send_error_match_arm_requires_counter() {
        let src = "fn f(&self) {\n    match tx.send(batch) {\n        Ok(()) => {}\n        Err(SendError(back)) => {\n            drop(back);\n        }\n    }\n}\n";
        let diags = run_on(src, "crates/ingest/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn is_err_on_non_send_is_not_a_loss_site() {
        let src = "fn f(&self) {\n    if decode(buf).is_err() {\n        bail();\n    }\n}\n";
        assert!(run_on(src, "crates/ingest/src/x.rs").is_empty());
    }

    #[test]
    fn only_accounted_crates_are_checked() {
        let src = "fn f(&self) {\n    let _ = self.rx.try_recv();\n}\n";
        assert!(run_on(src, "crates/fleet/src/x.rs").is_empty());
        assert_eq!(run_on(src, "crates/ingest/src/x.rs").len(), 1);
    }
}
