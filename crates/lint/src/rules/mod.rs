//! Rule trait, registry, and the shared line-visitor helpers rules are
//! built from.
//!
//! A rule sees the *cleaned* source (comments and literal bodies blanked,
//! see [`crate::lexer`]) plus a [`FileContext`] and reports violations into
//! a [`Sink`]. Test-only regions are skipped by the visitor, and the engine
//! applies suppression comments afterwards — rules themselves stay oblivious
//! to both.

pub mod accounting;
pub mod concurrency;
pub mod determinism;
pub mod hot_path;
pub mod nan_safety;
pub mod panic_freedom;

use crate::context::FileContext;
use crate::diagnostics::Diagnostic;
use crate::lexer::CleanFile;

/// Collects diagnostics for one file.
pub struct Sink {
    file: String,
    pub diags: Vec<Diagnostic>,
}

impl Sink {
    pub fn new(file: &str) -> Self {
        Sink {
            file: file.to_string(),
            diags: Vec::new(),
        }
    }

    /// Records a violation at 0-based `line_idx`.
    pub fn push(&mut self, line_idx: usize, rule: &'static str, message: String) {
        self.diags.push(Diagnostic {
            file: self.file.clone(),
            line: line_idx + 1,
            rule,
            message,
        });
    }
}

/// A single invariant check.
pub trait Rule {
    /// Stable identifier used in diagnostics and suppression comments.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and docs.
    fn description(&self) -> &'static str;
    /// Multi-paragraph rationale and fix pattern for `--explain <rule>`:
    /// why the invariant exists, how the check works, and what to write
    /// instead.
    fn explain(&self) -> &'static str;
    /// Whether this rule runs on the given file at all.
    fn applies_to(&self, ctx: &FileContext) -> bool;
    /// Scans the file and reports violations.
    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink);
}

/// Every rule, in a fixed order (diagnostics are sorted later anyway, but a
/// stable registry keeps `--list-rules` output deterministic).
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_freedom::NoPanic),
        Box::new(nan_safety::FloatEq),
        Box::new(nan_safety::PartialCmpUnwrap),
        Box::new(determinism::HashOrder),
        Box::new(determinism::NondetSource),
        Box::new(concurrency::LockOrder),
        Box::new(concurrency::GuardAcrossBlocking),
        Box::new(accounting::CountedLoss),
        Box::new(hot_path::HotPathAlloc),
    ]
}

/// `--explain` text for the rules the engine itself emits.
pub fn explain_engine_rule(name: &str) -> Option<&'static str> {
    match name {
        "bad-suppression" => Some(
            "Why: a suppression is a standing exception to an invariant, so it must \
say which rule it excepts and why the exception is safe — otherwise allows \
accumulate that nobody can audit.\n\
\n\
Fix pattern: `// fbd-lint::allow(rule-name): reason`, naming a real rule \
and carrying a non-empty reason.",
        ),
        "unused-suppression" => Some(
            "Why: a suppression that matches no diagnostic is dead weight — the code \
it excused has changed, and leaving it mutes a future violation on that \
line silently.\n\
\n\
Fix pattern: delete the stale `fbd-lint::allow` comment.",
        ),
        _ => None,
    }
}

/// Rule names the engine itself emits (suppression hygiene); kept here so
/// the known-name check covers them.
pub const ENGINE_RULES: &[&str] = &["bad-suppression", "unused-suppression"];

/// Crates whose library code runs under the scan supervisor's
/// `catch_unwind` and therefore must be panic-free.
pub const SUPERVISED_CRATES: &[&str] = &[
    "fbdetect-core",
    "fbd-stats",
    "fbd-tsdb",
    "fbd-cluster",
    "fbd-egads",
    "fbd-ingest",
];

/// Visits every non-test line of cleaned code, 0-based index first.
pub fn for_each_code_line<'a>(
    clean: &'a CleanFile,
    ctx: &FileContext,
    mut f: impl FnMut(usize, &'a str),
) {
    for (idx, line) in clean.lines.iter().enumerate() {
        if !ctx.is_test_line(idx) {
            f(idx, line);
        }
    }
}

/// Byte offsets of `needle` in `line` where the preceding character is not
/// part of an identifier (so `assert!` does not match inside
/// `debug_assert!`).
pub fn token_starts(line: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    // The boundary check only matters when the needle itself starts with an
    // identifier character (`assert!` inside `debug_assert!`); needles like
    // `.unwrap()` begin with their own boundary.
    let needs_boundary = needle
        .bytes()
        .next()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let boundary = !needs_boundary || at == 0 || {
            let prev = bytes[at - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_')
        };
        if boundary {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// True when `window` plausibly denotes a floating-point value: a float
/// literal (`1.0`, `0.5e3`), an `f64::`/`f32::` associated constant, an
/// `as f64` cast, or a typed literal suffix (`1_f64`).
pub fn contains_float_token(window: &str) -> bool {
    let bytes = window.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.'
            && bytes[i - 1].is_ascii_digit()
            && bytes[i + 1].is_ascii_digit()
            && !(i >= 2 && bytes[i - 2] == b'.') // tuple-ish `x.0.1` chains
        {
            // Exclude tuple field access like `pair.0` — require the char
            // before the integer run to not be an identifier char or `.`.
            let mut j = i - 1;
            while j > 0 && bytes[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let ok = j == 0 || {
                let prev = bytes[j - 1];
                !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.')
            };
            if ok {
                return true;
            }
        }
    }
    window.contains("f64::")
        || window.contains("f32::")
        || window.contains("as f64")
        || window.contains("as f32")
        || window.contains("_f64")
        || window.contains("_f32")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_respects_ident_boundary() {
        assert_eq!(token_starts("assert!(x)", "assert!"), vec![0]);
        assert!(token_starts("debug_assert!(x)", "assert!").is_empty());
        assert_eq!(token_starts("x.unwrap()", ".unwrap()"), vec![1]);
    }

    #[test]
    fn float_token_detection() {
        assert!(contains_float_token(" 0.0 "));
        assert!(contains_float_token("x * 1.5e3"));
        assert!(contains_float_token("f64::NAN"));
        assert!(contains_float_token("count as f64"));
        assert!(!contains_float_token("n % 2"));
        assert!(!contains_float_token("pair.0"));
        assert!(!contains_float_token("data.len()"));
        assert!(!contains_float_token("v.0.1"));
    }
}
