//! Determinism rules.
//!
//! `hash-order`: `HashMap`/`HashSet` iteration order is randomized per
//! process (SipHash keys), so any hash collection in the crates that build
//! ordered or serialized output (`fbdetect-core`, `fbd-tsdb`,
//! `fbd-changelog`) is one `.iter()` away from breaking the bit-identical
//! fingerprint guarantee. Use `BTreeMap`/`BTreeSet`, or keep the hash map
//! and suppress with a reason proving its order never escapes.
//!
//! `nondet-source`: `fbd-fleet` simulations and the `fbd-ingest` replay
//! path are seed-deterministic — the same `FleetSpec` seed must produce
//! the same series bytes forever, and the same batch sequence must yield
//! the same store contents and stats. Wall clocks and OS entropy
//! (`Instant::now`, `SystemTime::now`, `thread_rng`, …) smuggle
//! nondeterminism into that contract.

use super::{for_each_code_line, token_starts, Rule, Sink};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;

pub struct HashOrder;

/// Crates whose library code feeds ordered or serialized output.
const ORDERED_OUTPUT_CRATES: &[&str] = &["fbdetect-core", "fbd-tsdb", "fbd-changelog", "fbd-ingest"];

impl Rule for HashOrder {
    fn name(&self) -> &'static str {
        "hash-order"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet in crates that produce ordered/serialized output; \
         use BTreeMap/BTreeSet or sort explicitly"
    }

    fn explain(&self) -> &'static str {
        "Why: `HashMap`/`HashSet` iteration order is randomized per process \
(SipHash keys), and the crates this rule covers build ordered or serialized \
output — fingerprints, snapshots, wire frames — that must be bit-identical \
across runs. One `.iter()` over a hash collection on such a path breaks the \
reproducibility the proptests pin.\n\
\n\
How it checks: any `HashMap`/`HashSet` token in the library code of the \
ordered-output crates is flagged (longer identifiers like `HashMapExt` are \
not).\n\
\n\
Fix pattern: `BTreeMap`/`BTreeSet`, or collect and sort before emitting; a \
hash map whose order provably never escapes can stay with \
`// fbd-lint::allow(hash-order): <why order never escapes>`."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && ORDERED_OUTPUT_CRATES.contains(&ctx.crate_name.as_str())
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for_each_code_line(clean, ctx, |idx, line| {
            for ty in ["HashMap", "HashSet"] {
                let hit = token_starts(line, ty).iter().any(|&at| {
                    // Exclude longer identifiers like `HashMapExt`.
                    let after = line[at + ty.len()..].chars().next();
                    !matches!(after, Some(c) if c.is_alphanumeric() || c == '_')
                });
                if hit {
                    sink.push(
                        idx,
                        self.name(),
                        format!(
                            "`{ty}` iteration order is nondeterministic and this crate \
                             feeds serialized output; use BTree{} or sort before emitting",
                            &ty[4..]
                        ),
                    );
                }
            }
        });
    }
}

pub struct NondetSource;

/// Tokens that read wall clocks or OS entropy.
const SOURCES: &[(&str, &str)] = &[
    ("Instant::now", "wall clock"),
    ("SystemTime::now", "wall clock"),
    ("thread_rng", "OS-seeded RNG"),
    ("from_entropy", "OS-seeded RNG"),
    ("rand::random", "OS-seeded RNG"),
    ("RandomState", "randomized hasher state"),
];

impl Rule for NondetSource {
    fn name(&self) -> &'static str {
        "nondet-source"
    }

    fn description(&self) -> &'static str {
        "no wall clocks or OS entropy in the seed-deterministic simulation \
         (fbd-fleet) and ingest replay (fbd-ingest) paths"
    }

    fn explain(&self) -> &'static str {
        "Why: the fleet simulation and the ingest replay path are \
seed-deterministic by contract — the same `FleetSpec` seed must produce the \
same series bytes forever, and replaying the same batch sequence must yield \
the same store contents and stats. Wall clocks and OS entropy smuggle \
nondeterminism into that contract, turning reproducible experiments into \
unreproducible ones.\n\
\n\
How it checks: `Instant::now`, `SystemTime::now`, `thread_rng`, \
`from_entropy`, `rand::random`, and `RandomState` tokens are flagged in \
`fbd-fleet` and `fbd-ingest` library code.\n\
\n\
Fix pattern: derive randomness from the `FleetSpec` seed (split streams per \
host/series), and thread simulated time (`collected_at`) instead of reading \
clocks."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib
            && (ctx.crate_name == "fbd-fleet" || ctx.crate_name == "fbd-ingest")
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for_each_code_line(clean, ctx, |idx, line| {
            for (needle, what) in SOURCES {
                if !token_starts(line, needle).is_empty() {
                    sink.push(
                        idx,
                        self.name(),
                        format!(
                            "`{needle}` injects {what} into the seed-deterministic \
                             simulation; derive everything from the FleetSpec seed"
                        ),
                    );
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::diagnostics::Diagnostic;
    use crate::lexer::clean_source;

    fn run_rule(rule: &dyn Rule, src: &str, rel_path: &str) -> Vec<Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel_path, &clean);
        let mut sink = Sink::new(rel_path);
        if rule.applies_to(&ctx) {
            rule.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn flags_hashmap_in_core_but_not_stats() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let d = run_rule(&HashOrder, src, "crates/core/src/a.rs");
        assert_eq!(d.len(), 2); // one per line, not per occurrence
        assert!(run_rule(&HashOrder, src, "crates/stats/src/a.rs").is_empty());
    }

    #[test]
    fn btree_passes_and_longer_idents_ignored() {
        let src = "use std::collections::BTreeMap;\nstruct HashMapExt;\n";
        assert!(run_rule(&HashOrder, src, "crates/core/src/a.rs").is_empty());
    }

    #[test]
    fn flags_wall_clock_in_fleet_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run_rule(&NondetSource, src, "crates/fleet/src/a.rs").len(), 1);
        assert!(run_rule(&NondetSource, src, "crates/core/src/a.rs").is_empty());
    }

    #[test]
    fn flags_thread_rng_in_fleet() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(run_rule(&NondetSource, src, "crates/fleet/src/a.rs").len(), 1);
    }
}
