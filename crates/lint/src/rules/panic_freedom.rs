//! `no-panic`: supervised library code must not contain reachable panic
//! sites.
//!
//! The scan supervisor (PR 1) isolates per-series panics with
//! `catch_unwind`, but a panic still aborts the series scan, poisons the
//! diagnosis, and lands the series in quarantine — so the crates that run
//! inside the supervisor (`fbdetect-core`, `fbd-stats`, `fbd-tsdb`,
//! `fbd-cluster`, `fbd-egads`) return `Result` instead of panicking.
//! `debug_assert!` is permitted: it compiles out of release builds, which is
//! what production runs.

use super::{for_each_code_line, token_starts, Rule, Sink, SUPERVISED_CRATES};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;

pub struct NoPanic;

/// Method-call panic sites: matched as plain substrings (`.expect_err(`
/// does not contain `.expect(`, and `.unwrap_or*` does not contain
/// `.unwrap()`, so no boundary logic is needed).
const METHODS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` can panic"),
    (".expect(", "`.expect(..)` can panic"),
];

/// Macro panic sites: matched with an identifier boundary so `assert!`
/// does not fire inside `debug_assert!`.
const MACROS: &[(&str, &str)] = &[
    ("panic!", "`panic!` in supervised code"),
    ("unreachable!", "`unreachable!` can be reached by bad data"),
    ("todo!", "`todo!` panics unconditionally"),
    ("unimplemented!", "`unimplemented!` panics unconditionally"),
    ("assert!", "`assert!` panics in release builds"),
    ("assert_eq!", "`assert_eq!` panics in release builds"),
    ("assert_ne!", "`assert_ne!` panics in release builds"),
];

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable!/assert! in supervised library code \
         (runs under the scan supervisor's catch_unwind)"
    }

    fn explain(&self) -> &'static str {
        "Why: the scan supervisor isolates per-series panics with `catch_unwind`, \
but a panic still aborts that series' scan, poisons its diagnosis, and lands \
it in quarantine — in production that is a detection gap on exactly the series \
that exercised the edge case. Crates running under the supervisor return \
`Result` instead.\n\
\n\
How it checks: `.unwrap()`, `.expect(`, and the panicking macros (`panic!`, \
`unreachable!`, `todo!`, `unimplemented!`, `assert!`/`assert_eq!`/`assert_ne!`) \
are flagged in supervised library code. `debug_assert!` is permitted: it \
compiles out of the release builds production runs.\n\
\n\
Fix pattern: return an error (`ok_or`, `?`), handle the `None`/`Err` arm, or \
downgrade the assertion to `debug_assert!`. A truly-unreachable case that is \
cheaper to unwrap than to thread an error through deserves \
`// fbd-lint::allow(no-panic): <why it cannot fire>`."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && SUPERVISED_CRATES.contains(&ctx.crate_name.as_str())
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for_each_code_line(clean, ctx, |idx, line| {
            for (needle, why) in METHODS {
                if line.contains(needle) {
                    sink.push(
                        idx,
                        self.name(),
                        format!("{why}; return a Result or handle the None/Err case"),
                    );
                }
            }
            for (needle, why) in MACROS {
                if !token_starts(line, needle).is_empty() {
                    sink.push(
                        idx,
                        self.name(),
                        format!("{why}; return an error or use debug_assert!"),
                    );
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::clean_source;

    fn run_on(src: &str, rel_path: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel_path, &clean);
        let mut sink = Sink::new(rel_path);
        if NoPanic.applies_to(&ctx) {
            NoPanic.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn flags_unwrap_in_supervised_lib() {
        let diags = run_on("fn f() { x.unwrap(); }\n", "crates/stats/src/a.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn ignores_unwrap_or_and_expect_err() {
        let diags = run_on(
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); r.expect_err_check(); }\n",
            "crates/stats/src/a.rs",
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn ignores_test_module_and_unsupervised_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(run_on(src, "crates/stats/src/a.rs").is_empty());
        assert!(run_on("fn f() { x.unwrap(); }\n", "crates/fleet/src/a.rs").is_empty());
    }

    #[test]
    fn debug_assert_allowed_plain_assert_not() {
        let src = "fn f() { debug_assert!(a); assert!(b); }\n";
        let diags = run_on(src, "crates/core/src/a.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("assert!"));
    }
}
