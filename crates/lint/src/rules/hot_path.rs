//! `hot-path-alloc`: no per-call heap allocation in functions marked
//! `// fbd-lint::hot`.
//!
//! The scan engine's round loop (PR 4/5) runs per series per round; an
//! allocation inside it multiplies across the fleet into exactly the kind
//! of small regression FBDetect exists to catch. Reused buffers are the
//! fix — `ScratchVec` checkout from the round arena — and this rule keeps
//! them that way: inside a function whose declaration is preceded by (or
//! carries) a `// fbd-lint::hot` marker, `Vec::new(`, `vec![`, and
//! `.collect` are banned unless the line routes through a scratch buffer
//! (mentions `scratch`/`Scratch`).
//!
//! The marker is an explicit opt-in, so the rule runs on every crate's
//! library and binary code; a marker with no function to attach to is
//! itself flagged so markers cannot rot.

use super::{token_starts, Rule, Sink};
use crate::context::{FileContext, FileKind};
use crate::lexer::CleanFile;

/// How far below a standalone marker the `fn` may sit (attributes and
/// doc-stripped lines in between).
const MARKER_REACH_LINES: usize = 8;

/// `(needle, ident_boundary_needed)` allocation tokens banned in hot fns.
const BANNED: &[&str] = &["Vec::new(", "vec![", ".collect"];

pub struct HotPathAlloc;

impl Rule for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "no Vec::new/vec!/collect in functions marked `// fbd-lint::hot` \
         unless routed through a scratch buffer"
    }

    fn explain(&self) -> &'static str {
        "Why: the round loop runs per series per round across the simulated \
fleet; a Vec allocated inside it is millions of allocator round-trips that \
show up as exactly the sub-percent regression the paper's subroutine-level \
attribution exists to catch. PR 5 moved the round loop onto reusable \
`ScratchVec` buffers checked out of a per-round arena; this rule stops new \
allocations from creeping back in.\n\
\n\
How it checks: `// fbd-lint::hot` on (or up to 8 lines above) a `fn` marks \
its body; within the body, `Vec::new(`, `vec![`, and `.collect` are flagged \
unless the line mentions a scratch buffer (`scratch`/`Scratch`), which is \
the sanctioned reuse path. A marker with no `fn` in reach is flagged too, \
so stale markers cannot silently stop guarding anything.\n\
\n\
Fix pattern: check a buffer out of the arena (`let buf = scratch.checkout();`) \
and `extend`/`push` into it instead of collecting; hoist construction out of \
the hot function to its caller or setup phase; or, if the allocation is \
genuinely once-per-lifetime, move it out of the marked function so the \
marker keeps meaning \"allocation-free\"."
    }

    fn applies_to(&self, ctx: &FileContext) -> bool {
        matches!(ctx.kind, FileKind::Lib | FileKind::Bin)
    }

    fn check(&self, clean: &CleanFile, ctx: &FileContext, sink: &mut Sink) {
        for &marker in &clean.hot_markers {
            let start = marker - 1; // to 0-based
            let fn_line = (start..clean.lines.len().min(start + MARKER_REACH_LINES))
                .find(|&i| !token_starts(&clean.lines[i], "fn ").is_empty());
            let fn_line = match fn_line {
                Some(l) => l,
                None => {
                    sink.push(
                        start,
                        self.name(),
                        format!(
                            "dangling `fbd-lint::hot` marker: no `fn` within {MARKER_REACH_LINES} \
                             lines; attach it to the function it guards"
                        ),
                    );
                    continue;
                }
            };
            let Some((body_start, body_end)) = body_range(clean, fn_line) else {
                continue;
            };
            for idx in body_start..=body_end.min(clean.lines.len().saturating_sub(1)) {
                if ctx.is_test_line(idx) {
                    continue;
                }
                let line = &clean.lines[idx];
                if line.contains("scratch") || line.contains("Scratch") {
                    continue;
                }
                for needle in BANNED {
                    if !token_starts(line, needle).is_empty() {
                        sink.push(
                            idx,
                            self.name(),
                            format!(
                                "`{needle}..` allocates inside a `fbd-lint::hot` function; \
                                 route through ScratchVec or hoist out of the hot path"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// 0-based inclusive line range of the brace-delimited body of the `fn`
/// declared on `fn_line` (the signature may span several lines).
fn body_range(clean: &CleanFile, fn_line: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut opened = false;
    let mut start = fn_line;
    for idx in fn_line..clean.lines.len() {
        for ch in clean.lines[idx].chars() {
            match ch {
                '{' => {
                    if !opened {
                        opened = true;
                        start = idx;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some((start, idx));
                    }
                }
                // A declaration-only `fn` (trait method) ends without a body.
                ';' if !opened => return None,
                _ => {}
            }
        }
        // Don't chase a signature forever if the file is truncated.
        if !opened && idx > fn_line + MARKER_REACH_LINES {
            return None;
        }
    }
    opened.then_some((start, clean.lines.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::clean_source;

    fn run_on(src: &str, rel: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let clean = clean_source(src);
        let ctx = FileContext::classify(rel, &clean);
        let mut sink = Sink::new(rel);
        if HotPathAlloc.applies_to(&ctx) {
            HotPathAlloc.check(&clean, &ctx, &mut sink);
        }
        sink.diags
    }

    #[test]
    fn allocation_in_marked_fn_is_flagged() {
        let src = "// fbd-lint::hot\nfn step(&mut self) {\n    let v: Vec<u64> = Vec::new();\n    let w = xs.iter().map(|x| x + 1).collect::<Vec<_>>();\n}\n";
        let diags = run_on(src, "crates/stats/src/x.rs");
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[1].line, 4);
    }

    #[test]
    fn unmarked_fn_is_untouched_and_scratch_lines_exempt() {
        let src = "fn cold() {\n    let v = vec![1, 2];\n}\n// fbd-lint::hot\nfn hot(&mut self, scratch: &mut ScratchArena) {\n    let mut buf = scratch.checkout();\n    buf.extend(xs.iter().map(|x| x + 1));\n}\n";
        assert!(run_on(src, "crates/stats/src/x.rs").is_empty());
    }

    #[test]
    fn trailing_marker_on_fn_line_works() {
        let src = "fn hot(&mut self) { // fbd-lint::hot\n    let v = vec![0u8; 16];\n}\n";
        let diags = run_on(src, "crates/stats/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn dangling_marker_is_flagged() {
        let src = "// fbd-lint::hot\nconst N: usize = 4;\n";
        let diags = run_on(src, "crates/stats/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("dangling"));
    }

    #[test]
    fn marker_reaches_past_attributes() {
        let src = "// fbd-lint::hot\n#[inline]\n#[must_use]\npub fn step(x: u64) -> u64 {\n    let v: Vec<u64> = Vec::new();\n    x\n}\n";
        let diags = run_on(src, "crates/stats/src/x.rs");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }
}
