//! Fixture-based pin tests for `fbd-lint`.
//!
//! Each `tests/fixtures/*.rs` file is a known-bad (or deliberately-clean)
//! snippet, never compiled, with a first-line directive
//! `//@ path: <workspace-relative path>` naming the virtual location the
//! snippet is checked as. The companion `*.expected` file lists the pinned
//! diagnostics as `line rule` pairs (`#` comments and blank lines ignored).
//!
//! The engine itself never scans this tree: `fixtures` is in the walker's
//! skip list, and `tests/` files are `FileKind::Test` where no rule applies.

// Panicking on broken fixtures is the point of a test harness; the
// in-tests exemption does not reach helper fns in integration tests.
#![allow(clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

use fbd_lint::{all_rules, check_file, to_json};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Fixture files, sorted for stable failure order.
fn fixture_files() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("tests/fixtures must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    out.sort();
    out
}

/// Reads the `//@ path:` directive off a fixture's first line.
fn virtual_path(src: &str, fixture: &Path) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| {
            panic!(
                "{} must start with `//@ path: <workspace-relative path>`",
                fixture.display()
            )
        })
}

fn actual_findings(fixture: &Path) -> Vec<(usize, String)> {
    let src = fs::read_to_string(fixture).expect("readable fixture");
    let rel = virtual_path(&src, fixture);
    let mut found: Vec<(usize, String)> = check_file(&rel, &src, &all_rules(), None)
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    found.sort();
    found
}

fn expected_findings(expected: &Path) -> Vec<(usize, String)> {
    let text = fs::read_to_string(expected)
        .unwrap_or_else(|e| panic!("reading {}: {e}", expected.display()));
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (num, rule) = line.split_once(' ').unwrap_or_else(|| {
            panic!("{}:{}: expected `line rule`", expected.display(), n + 1)
        });
        let num: usize = num
            .parse()
            .unwrap_or_else(|_| panic!("{}:{}: bad line number", expected.display(), n + 1));
        out.push((num, rule.trim().to_string()));
    }
    out.sort();
    out
}

#[test]
fn every_fixture_matches_its_expected_diagnostics() {
    let fixtures = fixture_files();
    assert!(!fixtures.is_empty(), "no fixtures found — wrong directory?");
    for fixture in &fixtures {
        let expected_path = fixture.with_extension("expected");
        assert!(
            expected_path.exists(),
            "{} has no companion .expected file",
            fixture.display()
        );
        let actual = actual_findings(fixture);
        let expected = expected_findings(&expected_path);
        assert_eq!(
            actual,
            expected,
            "\ndiagnostics for {} diverged from {}\n  actual:   {actual:?}\n  expected: {expected:?}\n",
            fixture.display(),
            expected_path.display()
        );
    }
}

#[test]
fn json_output_is_well_formed_for_fixture_diagnostics() {
    let fixture = fixtures_dir().join("panic_freedom.rs");
    let src = fs::read_to_string(&fixture).expect("readable fixture");
    let rel = virtual_path(&src, &fixture);
    let diags = check_file(&rel, &src, &all_rules(), None);
    assert!(!diags.is_empty());
    let json = to_json(&diags);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    for key in ["\"file\"", "\"line\"", "\"rule\"", "\"message\""] {
        assert!(json.contains(key), "missing {key} in JSON output:\n{json}");
    }
    assert!(json.contains("\"no-panic\""));
}

/// The real workspace must stay lint-clean: this is the same gate CI runs
/// via `cargo run -p fbd-lint`, enforced here so plain `cargo test` also
/// catches new violations (and stale suppressions).
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let diags = fbd_lint::run_workspace(root).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has fbd-lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
