//@ path: crates/stats/src/hot_fixture.rs
//! Known-bad input for `hot-path-alloc`: allocations inside marked
//! functions, a sanctioned scratch path, and a dangling marker.

// fbd-lint::hot
pub fn bad_step(xs: &[u64]) -> u64 {
    let mut out: Vec<u64> = Vec::new();
    out.extend(xs.iter().map(|x| x + 1));
    let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
    out.len() as u64 + doubled.len() as u64
}

// fbd-lint::hot
pub fn good_step(xs: &[u64], scratch: &mut ScratchArena) -> u64 {
    let mut buf = scratch.checkout();
    buf.extend(xs.iter().map(|x| x + 1));
    buf.len() as u64
}

// fbd-lint::hot
pub fn bad_decode_window(block: &SealedBlock) -> usize {
    // Un-scratched decode buffer: every window extraction re-allocates
    // the block's points instead of checking a buffer out of the arena.
    let points: Vec<DataPoint> = block.iter().collect();
    points.len()
}

pub fn cold() -> Vec<u64> {
    vec![1, 2, 3]
}

// fbd-lint::hot
pub const NOT_A_FN: usize = 8;
