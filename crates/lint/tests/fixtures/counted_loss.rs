//@ path: crates/ingest/src/loss_fixture.rs
//! Known-bad input for `counted-loss`: shed and drop sites whose handler
//! blocks never increment a loss counter.

pub fn uncounted_shed(rx: &Receiver<Pending>) {
    match rx.try_recv() {
        Ok(_) => {}
        Err(_) => {}
    }
}

pub fn uncounted_try_send(tx: &Sender<Chunk>, chunk: Chunk) {
    match tx.try_send(chunk) {
        Ok(()) => {}
        Err(TrySendError::Full(back)) => {
            drop(back);
        }
        Err(TrySendError::Disconnected(back)) => {
            drop(back);
        }
    }
}

pub fn uncounted_send_check(tx: &Sender<Routed>, chunk: Chunk) {
    let points = chunk.len() as u64;
    if tx.send(Routed { points: chunk }).is_err() {
        log_drop(points);
    }
}

pub fn counted_send_check(counters: &Counters, tx: &Sender<Routed>, chunk: Chunk) {
    let points = chunk.len() as u64;
    if tx.send(Routed { points: chunk }).is_err() {
        counters.internal_error_points.fetch_add(points, Ordering::Relaxed);
    }
}
