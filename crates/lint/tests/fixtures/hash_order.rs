//@ path: crates/tsdb/src/hash_fixture.rs
//! Known-bad input for `hash-order`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn count(names: &[String]) -> Vec<(String, usize)> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for n in names {
        *seen.entry(n.clone()).or_insert(0) += 1;
    }
    seen.into_iter().collect()
}

pub fn good(names: &[String]) -> std::collections::BTreeSet<String> {
    names.iter().cloned().collect()
}

pub struct HashMapExt;
