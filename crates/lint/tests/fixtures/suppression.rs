//@ path: crates/stats/src/suppression_fixture.rs
//! Suppression hygiene: a justified allow mutes; a reasonless or unknown
//! allow does not mute and is itself flagged; a stale allow is flagged.

pub fn justified(x: Option<u32>) -> u32 {
    x.unwrap() // fbd-lint::allow(no-panic): caller guarantees Some by construction
}

pub fn standalone(x: Option<u32>) -> u32 {
    // fbd-lint::allow(no-panic): slot reserved by the caller
    x.unwrap()
}

pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // fbd-lint::allow(no-panic)
}

pub fn unknown_rule() {
    // fbd-lint::allow(made-up-rule): this rule does not exist
}

pub fn stale() -> u32 {
    // fbd-lint::allow(no-panic): nothing panics here anymore
    1 + 1
}
