//@ path: crates/core/src/lock_fixture.rs
//! Known-bad input for `lock-order`: a rank inversion, an equal-rank
//! re-acquisition, an undeclared receiver, and a raw lock type.

pub fn inverted(state: &ScanState, cache: &ScanCache) {
    let inner = cache.inner.lock(); // scan-cache, rank 50
    let shard = state.shards[0].lock(); // engine-shard, rank 30: inversion
    drop(shard);
    drop(inner);
}

pub fn equal_rank(state: &ScanState) {
    let a = state.shards[0].lock();
    let b = state.shards[1].lock(); // same rank while held: inversion
    drop(b);
    drop(a);
}

pub fn undeclared(mystery: &Thing) {
    let guard = mystery.lock(); // receiver not in LOCK_ORDER.manifest
    drop(guard);
}

pub struct Raw {
    level: Mutex<u32>, // raw lock type in a ranked crate
}

pub fn legal(state: &ScanState, cache: &ScanCache) {
    let shard = state.shards[0].lock(); // rank 30 then 50: ascending, clean
    let inner = cache.inner.lock();
    drop(inner);
    drop(shard);
}
