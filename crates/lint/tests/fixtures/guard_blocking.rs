//@ path: crates/ingest/src/blocking_fixture.rs
//! Known-bad input for `guard-across-blocking`: a guard held across a
//! channel send, across a recv, and across a cross-crate lock-taking call.

pub fn send_under_guard(engine: &OrderedMutex<Engine>, tx: &Sender<u64>) {
    let engine = engine.lock(); // ingest-engine, rank 10
    let _ = tx.send(engine.series_seen); // blocking send with guard live
}

pub fn recv_under_guard(quarantine: &OrderedMutex<Quarantine>, rx: &Receiver<u64>) {
    let quarantine = quarantine.lock(); // rank 20
    while let Ok(n) = rx.recv() {
        quarantine.note(n); // guard live across every blocking recv
    }
}

pub fn enter_store_under_high_guard(progress: &Progress, store: &TsdbStore) -> u64 {
    let state = progress.state.lock(); // ingest-progress, rank 60
    store.series_count() + state.0 // enters store-shard (rank 40): inversion
}

pub fn nonblocking_is_fine(engine: &OrderedMutex<Engine>, tx: &Sender<u64>) {
    let engine = engine.lock();
    let _ = tx.try_send(engine.series_seen); // try_send never blocks: clean
}
