//@ path: crates/fleet/src/nondet_fixture.rs
//! Known-bad input for `nondet-source`.

pub fn bad_timing() -> u64 {
    let started = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    drop(wall);
    started.elapsed().as_nanos() as u64
}

pub fn bad_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn good(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
