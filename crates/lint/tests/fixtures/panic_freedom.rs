//@ path: crates/stats/src/panic_fixture.rs
//! Known-bad input for the `no-panic` rule: every reachable panic site in
//! supervised library code, plus the allowed forms.

pub fn bad(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a == 0 {
        panic!("zero");
    }
    assert!(b > 0);
    match b {
        1 => unreachable!(),
        2 => todo!(),
        3 => unimplemented!(),
        _ => {}
    }
    a + b
}

pub fn good(x: Option<u32>) -> u32 {
    let a = x.unwrap_or(0);
    debug_assert!(a < 1_000);
    a
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
