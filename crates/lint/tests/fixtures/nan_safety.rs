//@ path: crates/core/src/nan_fixture.rs
//! Known-bad input for `float-eq` and `partial-cmp-unwrap`.

pub fn bad_eq(delta: f64) -> bool {
    let zero = delta == 0.0;
    let one = delta != 1.5;
    zero || one
}

pub fn bad_sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn bad_wrapped_sort(values: &mut [f64]) {
    values.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("finite")
    });
}

pub fn good(values: &mut [f64], x: f64) -> bool {
    values.sort_by(f64::total_cmp);
    (x - 1.0).abs() < 1e-9
}
