//! Output-determinism pins for the parallel engine.
//!
//! `run_workspace` fans file checking out across threads; the merged
//! diagnostics are sorted by a total order and deduplicated, so the
//! rendered `--json` bytes must be identical for any worker count and
//! across repeated runs. These tests pin exactly that, over a synthetic
//! tree dirty enough that several rules fire in several files.

#![allow(clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

use fbd_lint::{run_workspace_with_threads, to_json};

/// Builds a throwaway workspace with violations across crates and rules.
fn dirty_tree(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fbd-lint-determinism-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let files: &[(&str, &str)] = &[
        (
            "crates/stats/src/a.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
        (
            "crates/core/src/b.rs",
            "fn g(d: f64) -> bool { d == 0.0 }\nuse std::collections::HashMap;\n",
        ),
        (
            "crates/ingest/src/c.rs",
            "fn h(engine: &E, quarantine: &Q, tx: &S) {\n    let q = quarantine.lock();\n    let e = engine.lock();\n    tx.send(1);\n}\n",
        ),
        (
            "crates/fleet/src/d.rs",
            "fn t() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
        (
            "crates/tsdb/src/e.rs",
            "// fbd-lint::hot\nfn hot() { let v: Vec<u8> = Vec::new(); drop(v); }\n",
        ),
    ];
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, src).expect("write fixture file");
    }
    root
}

fn json_for(root: &Path, threads: usize) -> String {
    let diags = run_workspace_with_threads(root, threads).expect("workspace walk succeeds");
    to_json(&diags)
}

#[test]
fn json_output_is_byte_identical_across_thread_counts_and_runs() {
    let root = dirty_tree("threads");
    let single = json_for(&root, 1);
    assert!(
        single.contains("no-panic")
            && single.contains("float-eq")
            && single.contains("hash-order")
            && single.contains("lock-order")
            && single.contains("guard-across-blocking")
            && single.contains("nondet-source")
            && single.contains("hot-path-alloc"),
        "dirty tree should trip many rules, got:\n{single}"
    );
    for threads in [2, 4, 8] {
        let parallel = json_for(&root, threads);
        assert_eq!(
            single, parallel,
            "--json bytes diverged between 1 and {threads} worker threads"
        );
    }
    let rerun = json_for(&root, 8);
    assert_eq!(single, rerun, "--json bytes diverged across repeated runs");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn diagnostics_are_ordered_by_file_line_rule() {
    let root = dirty_tree("order");
    let diags = run_workspace_with_threads(&root, 4).expect("workspace walk succeeds");
    let keys: Vec<_> = diags.iter().map(|d| d.sort_key()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must come out pre-sorted");
    let _ = fs::remove_dir_all(&root);
}
