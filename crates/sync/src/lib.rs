//! Rank-ordered lock wrappers — the runtime half of the workspace lock
//! hierarchy declared in `LOCK_ORDER.manifest`.
//!
//! Every supervised lock in the workspace (tsdb store shards, streaming
//! engine shards, the scan cache, the ingest engine/quarantine/progress
//! mutexes, snapshot handoff slots) is an [`OrderedMutex`] or
//! [`OrderedRwLock`] carrying a [`LockDomain`] rank. The rule the ranks
//! encode is simple: **a thread may only acquire a lock whose rank is
//! strictly greater than every rank it already holds.** Acquisitions that
//! honor the rule cannot participate in a lock-order deadlock cycle.
//!
//! Enforcement is two-layered and shares this one source of truth:
//!
//! - **Statically**, `fbd-lint`'s `lock-order` rule tracks guard scopes
//!   over the token stream and flags same-or-descending acquisitions at
//!   review time (see `crates/lint/src/rules/concurrency.rs`).
//! - **Dynamically**, in builds with `debug_assertions` every acquisition
//!   pushes its rank onto a thread-local held-rank stack and panics on
//!   inversion, so the full test suite doubles as an ordering oracle for
//!   whatever the static approximation cannot see.
//!
//! In release builds the wrappers are transparent newtypes over
//! [`std::sync`] primitives: the rank token is a zero-sized no-op, no
//! thread-local is touched, and the only cost over a bare `Mutex` is the
//! `LockDomain` discriminant stored next to it.
//!
//! Poisoning is recovered everywhere (`PoisonError::into_inner`), matching
//! the semantics the workspace previously got from its `parking_lot` shim:
//! a panicking holder never wedges the lock for other threads, and the
//! protected value stays reachable.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// One domain of the workspace lock hierarchy. The discriminant **is** the
/// rank: acquisition order must be strictly ascending per thread.
///
/// Mirrors `LOCK_ORDER.manifest` (asserted line-for-line by a unit test);
/// change the two together.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum LockDomain {
    /// fbd-ingest: the validate stage's `Engine` (validator + tenant
    /// quotas). Held while recording quota denials into the quarantine.
    IngestEngine = 10,
    /// fbd-ingest: the shared quarantine registry fed by quota and
    /// NaN-burst violations.
    Quarantine = 20,
    /// fbdetect-core: per-series snapshot handoff slots in the
    /// non-streaming parallel detection driver. Ranked below the store
    /// shards so a drained slot's statement may fall back to
    /// `TsdbStore::windows`.
    SnapshotSlot = 25,
    /// fbdetect-core: `StreamingEngine` per-shard state. Held across
    /// `TsdbStore::snapshot_deltas` by the shard-per-core round driver,
    /// hence strictly below [`LockDomain::StoreShard`].
    EngineShard = 30,
    /// fbd-tsdb: `TsdbStore` per-shard series maps.
    StoreShard = 40,
    /// fbdetect-core: the cross-round `ScanCache` artifact map (leaf).
    ScanCache = 50,
    /// fbd-ingest: the batch-completion progress pair under the drain
    /// condvar (leaf).
    IngestProgress = 60,
}

impl LockDomain {
    /// Every domain, in ascending rank order.
    pub const ALL: [LockDomain; 7] = [
        LockDomain::IngestEngine,
        LockDomain::Quarantine,
        LockDomain::SnapshotSlot,
        LockDomain::EngineShard,
        LockDomain::StoreShard,
        LockDomain::ScanCache,
        LockDomain::IngestProgress,
    ];

    /// The numeric rank (the manifest's first column).
    pub const fn rank(self) -> u16 {
        self as u16
    }

    /// The manifest's symbolic name for this domain.
    pub const fn name(self) -> &'static str {
        match self {
            LockDomain::IngestEngine => "ingest-engine",
            LockDomain::Quarantine => "quarantine",
            LockDomain::SnapshotSlot => "snapshot-slot",
            LockDomain::EngineShard => "engine-shard",
            LockDomain::StoreShard => "store-shard",
            LockDomain::ScanCache => "scan-cache",
            LockDomain::IngestProgress => "ingest-progress",
        }
    }
}

fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    match result {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(debug_assertions)]
mod validator {
    //! The debug-only held-rank stack. One `Vec<LockDomain>` per thread;
    //! acquisition asserts strict ascent, drop removes the topmost entry
    //! of the released domain (guards of one domain are released LIFO in
    //! practice, but out-of-order drops stay correct).

    use super::LockDomain;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockDomain>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof of a validated acquisition; popping happens on drop.
    #[derive(Debug)]
    pub(crate) struct RankToken {
        domain: LockDomain,
    }

    impl RankToken {
        pub(crate) fn acquire(domain: LockDomain) -> Self {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(&top) = held.iter().max() {
                    assert!(
                        top.rank() < domain.rank(),
                        "lock-order inversion: acquiring `{}` (rank {}) while holding `{}` \
                         (rank {}); held stack: {:?} — see LOCK_ORDER.manifest",
                        domain.name(),
                        domain.rank(),
                        top.name(),
                        top.rank(),
                        held.iter().map(|d| d.name()).collect::<Vec<_>>(),
                    );
                }
                held.push(domain);
            });
            RankToken { domain }
        }
    }

    impl Drop for RankToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&d| d == self.domain) {
                    held.remove(pos);
                }
            });
        }
    }

    /// The caller's current held-rank stack (test introspection).
    pub fn held_ranks() -> Vec<LockDomain> {
        HELD.with(|held| held.borrow().clone())
    }
}

#[cfg(not(debug_assertions))]
mod validator {
    //! Release builds: the token is a ZST and acquisition is a no-op, so
    //! the wrappers compile down to the bare std primitives.

    use super::LockDomain;

    #[derive(Debug)]
    pub(crate) struct RankToken;

    impl RankToken {
        #[inline(always)]
        pub(crate) fn acquire(_domain: LockDomain) -> Self {
            RankToken
        }
    }

    /// Release builds track nothing; always empty.
    pub fn held_ranks() -> Vec<LockDomain> {
        Vec::new()
    }
}

pub use validator::held_ranks;
use validator::RankToken;

/// A mutex that participates in the workspace lock hierarchy.
///
/// API-compatible with the workspace's previous `parking_lot` shim:
/// `lock()` returns a guard directly (poisoning is recovered, never
/// surfaced), plus `get_mut`/`into_inner` for exclusive access.
pub struct OrderedMutex<T: ?Sized> {
    domain: LockDomain,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` at the given rank.
    pub fn new(domain: LockDomain, value: T) -> Self {
        OrderedMutex { domain, inner: Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's domain in the hierarchy.
    pub fn domain(&self) -> LockDomain {
        self.domain
    }

    /// Acquires the lock, validating rank order in debug builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = RankToken::acquire(self.domain);
        OrderedMutexGuard { guard: recover(self.inner.lock()), _token: token }
    }

    /// Exclusive access without locking (`&mut self` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("domain", &self.domain)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for [`OrderedMutex`]; releases the lock, then pops the rank.
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    // Field order is load-bearing: `guard` (the lock) must drop before
    // `_token` (the rank-stack entry), so a blocked acquirer of the same
    // rank on another thread never observes a stale held rank here.
    guard: MutexGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Blocks on `condvar`, releasing the lock while parked and
    /// re-acquiring it before returning — `Condvar::wait` with the
    /// ordered guard kept intact (the held rank does not change: waiting
    /// on a condvar is not an acquisition).
    pub fn wait(self, condvar: &Condvar) -> OrderedMutexGuard<'a, T> {
        let OrderedMutexGuard { guard, _token } = self;
        OrderedMutexGuard { guard: recover(condvar.wait(guard)), _token }
    }
}

/// A reader-writer lock that participates in the workspace lock hierarchy.
///
/// Both read and write acquisitions carry the domain's rank: a read guard
/// held while acquiring an equal-or-lower rank is just as much an
/// inversion as a write guard (readers block writers, so the deadlock
/// cycle exists either way). Recursive same-shard reads are likewise
/// rejected in debug builds — they deadlock against a queued writer.
pub struct OrderedRwLock<T: ?Sized> {
    domain: LockDomain,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` at the given rank.
    pub fn new(domain: LockDomain, value: T) -> Self {
        OrderedRwLock { domain, inner: RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's domain in the hierarchy.
    pub fn domain(&self) -> LockDomain {
        self.domain
    }

    /// Acquires shared read access, validating rank order in debug builds.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = RankToken::acquire(self.domain);
        OrderedRwLockReadGuard { guard: recover(self.inner.read()), _token: token }
    }

    /// Acquires exclusive write access, validating rank order in debug
    /// builds.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = RankToken::acquire(self.domain);
        OrderedRwLockWriteGuard { guard: recover(self.inner.write()), _token: token }
    }

    /// Exclusive access without locking (`&mut self` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("domain", &self.domain)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    // Same drop-order contract as `OrderedMutexGuard`.
    guard: RwLockReadGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    // Same drop-order contract as `OrderedMutexGuard`.
    guard: RwLockWriteGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `LockDomain` and `LOCK_ORDER.manifest` must agree line for line:
    /// same domains, same ranks, same ascending order. This is the "one
    /// source of truth" contract between the runtime validator and the
    /// static lint.
    #[test]
    fn manifest_matches_lock_domains() {
        let manifest = include_str!("../../../LOCK_ORDER.manifest");
        let declared: Vec<(u16, String)> = manifest
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                let mut fields = l.split_whitespace();
                let rank: u16 = fields
                    .next()
                    .and_then(|r| r.parse().ok())
                    .unwrap_or_else(|| panic!("bad manifest rank in line: {l}"));
                let name = fields
                    .next()
                    .unwrap_or_else(|| panic!("missing domain name in line: {l}"))
                    .to_string();
                (rank, name)
            })
            .collect();
        let in_code: Vec<(u16, String)> = LockDomain::ALL
            .iter()
            .map(|d| (d.rank(), d.name().to_string()))
            .collect();
        assert_eq!(declared, in_code, "LOCK_ORDER.manifest and LockDomain disagree");
        let mut ranks: Vec<u16> = declared.iter().map(|(r, _)| *r).collect();
        let sorted = {
            let mut s = ranks.clone();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(ranks.len(), sorted.len(), "manifest ranks must be unique");
        ranks.sort_unstable();
        assert_eq!(
            ranks,
            declared.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            "manifest ranks must ascend"
        );
    }

    #[test]
    fn ascending_acquisition_is_permitted() {
        let a = OrderedMutex::new(LockDomain::IngestEngine, 1u32);
        let b = OrderedRwLock::new(LockDomain::StoreShard, 2u32);
        let c = OrderedMutex::new(LockDomain::ScanCache, 3u32);
        let ga = a.lock();
        let gb = b.read();
        let gc = c.lock();
        assert_eq!((*ga, *gb, *gc), (1, 2, 3));
        drop(gc);
        drop(gb);
        drop(ga);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn sequential_reacquisition_is_permitted() {
        let a = OrderedMutex::new(LockDomain::StoreShard, 0u32);
        for _ in 0..3 {
            let mut g = a.lock();
            *g += 1;
        }
        assert_eq!(*a.lock(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_acquisition_panics_in_debug() {
        let outcome = std::panic::catch_unwind(|| {
            let hi = OrderedMutex::new(LockDomain::StoreShard, ());
            let lo = OrderedMutex::new(LockDomain::EngineShard, ());
            let _g_hi = hi.lock();
            let _g_lo = lo.lock(); // inversion: 30 while holding 40
        });
        assert!(outcome.is_err(), "inversion must panic under debug_assertions");
        assert!(held_ranks().is_empty(), "unwinding must pop the held-rank stack");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn equal_rank_acquisition_panics_in_debug() {
        let outcome = std::panic::catch_unwind(|| {
            let a = OrderedRwLock::new(LockDomain::StoreShard, ());
            let b = OrderedRwLock::new(LockDomain::StoreShard, ());
            let _ga = a.read();
            let _gb = b.read(); // equal rank: readers still deadlock via a queued writer
        });
        assert!(outcome.is_err(), "equal-rank nesting must panic under debug_assertions");
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn condvar_wait_keeps_guard_and_rank() {
        use std::sync::Condvar;
        let pair = std::sync::Arc::new((
            OrderedMutex::new(LockDomain::IngestProgress, false),
            Condvar::new(),
        ));
        let waker = {
            let pair = std::sync::Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_all();
            })
        };
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while !*g {
            g = g.wait(cv);
        }
        drop(g);
        waker.join().map_err(|_| "waker panicked").unwrap();
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn poisoned_locks_recover_the_value() {
        let m = std::sync::Arc::new(OrderedMutex::new(LockDomain::ScanCache, 7u32));
        let rw = std::sync::Arc::new(OrderedRwLock::new(LockDomain::StoreShard, 9u32));
        {
            let m = std::sync::Arc::clone(&m);
            let rw = std::sync::Arc::clone(&rw);
            let _ = std::thread::spawn(move || {
                let _gm = m.lock();
                let _gw = rw.write();
                panic!("poison both");
            })
            .join();
        }
        assert_eq!(*m.lock(), 7, "poisoned OrderedMutex must still serve its value");
        assert_eq!(*rw.read(), 9, "poisoned OrderedRwLock must still serve its value");
    }
}
