//! Behavior-transparency properties: `OrderedMutex`/`OrderedRwLock` must
//! be drop-in replacements for the std locks they wrap — same values out
//! for the same operation sequence, including across poisoning panics
//! (`fbd-sync` recovers the poisoned value, matching the poison-recovering
//! `lock()` helpers the workspace used before ranks existed).
//!
//! The rank machinery under test here is the debug validator: every
//! acquisition in these sequences goes through it, so the property also
//! pins that ranking is invisible when the order is legal.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use fbd_sync::{LockDomain, OrderedMutex, OrderedRwLock};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError, RwLock};

/// One scripted operation against both locks.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
    Sum,
    /// Mutate, then panic while the guard is held: poisons the std lock,
    /// and both sides must keep (and expose) the partial mutation.
    PanicMidWrite(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<u64>()).prop_map(|(kind, val)| match kind % 8 {
        0 | 1 | 2 => Op::Push(val),
        3 | 4 => Op::Pop,
        5 | 6 => Op::Sum,
        _ => Op::PanicMidWrite(val),
    })
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ordered_mutex_matches_std_mutex(ops in prop::collection::vec(op_strategy(), 0..48)) {
        let ours = OrderedMutex::new(LockDomain::ScanCache, Vec::<u64>::new());
        let std_lock = Mutex::new(Vec::<u64>::new());
        for op in ops {
            match op {
                Op::Push(v) => {
                    ours.lock().push(v);
                    recover(std_lock.lock()).push(v);
                }
                Op::Pop => {
                    prop_assert_eq!(ours.lock().pop(), recover(std_lock.lock()).pop());
                }
                Op::Sum => {
                    // Wrapping fold: arbitrary u64s overflow a plain sum.
                    let a = ours.lock().iter().fold(0u64, |s, x| s.wrapping_add(*x));
                    let b = recover(std_lock.lock())
                        .iter()
                        .fold(0u64, |s, x| s.wrapping_add(*x));
                    prop_assert_eq!(a, b);
                }
                Op::PanicMidWrite(v) => {
                    let a = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = ours.lock();
                        g.push(v);
                        panic!("poison");
                    }));
                    let b = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = recover(std_lock.lock());
                        g.push(v);
                        panic!("poison");
                    }));
                    prop_assert!(a.is_err() && b.is_err());
                }
            }
        }
        prop_assert_eq!(ours.into_inner(), recover(std_lock.into_inner()));
    }

    #[test]
    fn ordered_rwlock_matches_std_rwlock(ops in prop::collection::vec(op_strategy(), 0..48)) {
        let ours = OrderedRwLock::new(LockDomain::StoreShard, Vec::<u64>::new());
        let std_lock = RwLock::new(Vec::<u64>::new());
        for op in ops {
            match op {
                Op::Push(v) => {
                    ours.write().push(v);
                    recover(std_lock.write()).push(v);
                }
                Op::Pop => {
                    prop_assert_eq!(ours.write().pop(), recover(std_lock.write()).pop());
                }
                Op::Sum => {
                    // Sequential reads: even a shared re-read of the same
                    // domain counts as an equal-rank acquisition to the
                    // debug validator, matching the lint's rule. Wrapping
                    // fold: arbitrary u64s overflow a plain sum.
                    let a = ours.read().iter().fold(0u64, |s, x| s.wrapping_add(*x));
                    let b = recover(std_lock.read())
                        .iter()
                        .fold(0u64, |s, x| s.wrapping_add(*x));
                    prop_assert_eq!(a, b);
                }
                Op::PanicMidWrite(v) => {
                    let a = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = ours.write();
                        g.push(v);
                        panic!("poison");
                    }));
                    let b = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = recover(std_lock.write());
                        g.push(v);
                        panic!("poison");
                    }));
                    prop_assert!(a.is_err() && b.is_err());
                }
            }
        }
        prop_assert_eq!(ours.into_inner(), recover(std_lock.into_inner()));
    }
}
