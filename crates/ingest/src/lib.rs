//! Staged, bounded multi-tenant ingestion front-end.
//!
//! Production FBDetect sits behind a collection pipeline that can lose,
//! reorder, duplicate, and refuse data; the earlier PRs simulated
//! ingestion as direct `TsdbStore::append` loops, which exercises none of
//! that. This crate is the real front door:
//!
//! - [`wire`]: a compact dictionary-compressed batch format for
//!   `(tenant, series, timestamp, value)` samples;
//! - [`validate`]: wire-boundary classification of the five collector
//!   fault shapes (dropped, duplicated-timestamp, NaN burst, stuck
//!   constant, late window), degrading each to counted health signals
//!   instead of failed scans;
//! - [`quota`]: deterministic per-tenant token buckets on the simulated
//!   clock, with violations feeding the `fbdetect-core` quarantine;
//! - [`pipeline`]: bounded crossbeam-channel stages
//!   (decode → validate → route → shard append) with explicit
//!   backpressure, oldest-first counted shedding, and a single-threaded
//!   [`reference_ingest`](pipeline::reference_ingest) oracle the threaded
//!   path is byte-identical to.
//!
//! The whole path is `fbd-lint` supervised: panic-free library code, no
//! wall clocks, no OS entropy, no hash-ordered iteration.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod pipeline;
pub mod quota;
pub mod validate;
pub mod wire;

pub use pipeline::{reference_ingest, IngestConfig, IngestPipeline, IngestStats, PipelineClosed};
pub use quota::{QuotaConfig, TenantQuotas};
pub use validate::{FaultCounts, ValidatedBatch, Validator, ValidatorConfig};
pub use wire::{decode_batch, encode_batch, peek_point_count, SampleBatch, WireError, WirePoint};
