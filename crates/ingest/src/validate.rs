//! Wire-boundary data-quality validation.
//!
//! Production collectors exhibit exactly five failure shapes — the
//! `DataFaultKind`s the fleet simulator injects — and the validator's job
//! is to *classify* them where they enter the system, then degrade
//! gracefully instead of failing the scan later:
//!
//! | fault                | wire signature                         | action      |
//! |----------------------|----------------------------------------|-------------|
//! | dropped samples      | timestamp gap ≫ the series' cadence    | count       |
//! | duplicated timestamp | timestamp equal to the previous point  | count, pass |
//! | NaN burst            | non-finite value                       | count, pass; quarantine the series when a batch is mostly NaN |
//! | stuck constant       | long run of bit-identical values       | count, pass |
//! | late window          | point far older than its batch's       | count, **shed** |
//! |                      | `collected_at`, or behind the series'  |             |
//! |                      | already-ingested tail                  |             |
//!
//! Only late points are shed — they are unappendable (the TSDB is
//! append-only) or stale beyond the acceptance window; everything else
//! passes through so the stored bytes match what a direct append of the
//! same corrupted stream would produce, and the scan-side coverage and
//! finite-fraction gates do the degrading. Every shed point is counted;
//! nothing is dropped silently.
//!
//! All state lives in `BTreeMap`s keyed by series id and every value
//! comparison goes through `to_bits`, keeping the validator deterministic
//! and NaN-safe under `fbd-lint` supervision.

use crate::wire::SampleBatch;
use fbd_tsdb::{SeriesId, Timestamp};
use std::collections::BTreeMap;

/// Tuning knobs for the wire-boundary checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatorConfig {
    /// A gap counts as dropped samples when it exceeds `gap_factor` times
    /// the smallest cadence observed on the series.
    pub gap_factor: u64,
    /// Run length of bit-identical values that counts as a stuck
    /// collector.
    pub stuck_run: u32,
    /// Points older than `collected_at - late_slack` are late: counted
    /// and shed.
    pub late_slack: u64,
    /// When at least this fraction of a series' points in one batch is
    /// non-finite (and the series sent at least [`ValidatorConfig::nan_burst_min_points`]),
    /// the series is flagged for quarantine as a data-quality fault.
    pub nan_burst_fraction: f64,
    /// Minimum per-batch sample count before the NaN-burst fraction is
    /// meaningful.
    pub nan_burst_min_points: u32,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            gap_factor: 3,
            stuck_run: 8,
            late_slack: 900,
            nan_burst_fraction: 0.5,
            nan_burst_min_points: 4,
        }
    }
}

/// Per-kind fault observations, mirroring the fleet simulator's five
/// `DataFaultKind`s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Gap events larger than the cadence allows (dropped samples).
    pub dropped_gaps: u64,
    /// Points repeating the previous timestamp.
    pub duplicated: u64,
    /// Non-finite values.
    pub nan: u64,
    /// Runs of bit-identical values reaching the stuck threshold.
    pub stuck_runs: u64,
    /// Late points (counted *and* shed).
    pub late: u64,
}

impl FaultCounts {
    fn add(&mut self, other: &FaultCounts) {
        self.dropped_gaps += other.dropped_gaps;
        self.duplicated += other.duplicated;
        self.nan += other.nan;
        self.stuck_runs += other.stuck_runs;
        self.late += other.late;
    }

    /// Whether every counter is zero.
    pub fn is_clean(&self) -> bool {
        *self == FaultCounts::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SeriesState {
    last_ts: Option<Timestamp>,
    last_bits: Option<u64>,
    run: u32,
    min_delta: Option<u64>,
}

/// What the validator decided about one batch.
#[derive(Debug, Clone, Default)]
pub struct ValidatedBatch {
    /// Points admitted for routing, in arrival order.
    pub routed: Vec<(SeriesId, Timestamp, f64)>,
    /// Late points shed (already included in the fault counts).
    pub late_shed: u64,
    /// Series whose batch crossed the NaN-burst quarantine threshold.
    pub nan_flagged: Vec<SeriesId>,
    /// Faults observed in this batch.
    pub faults: FaultCounts,
}

/// Streaming per-series validation state over the whole ingest session.
#[derive(Debug, Default)]
pub struct Validator {
    config: ValidatorConfig,
    state: BTreeMap<SeriesId, SeriesState>,
    per_series: BTreeMap<SeriesId, FaultCounts>,
    totals: FaultCounts,
}

impl Validator {
    /// Creates a validator with the given thresholds.
    pub fn new(config: ValidatorConfig) -> Self {
        Validator {
            config,
            ..Validator::default()
        }
    }

    /// Classifies one batch and returns the admissible points.
    pub fn validate(&mut self, batch: &SampleBatch) -> ValidatedBatch {
        let mut out = ValidatedBatch::default();
        // Per-batch per-series (points, non-finite points) for the
        // NaN-burst threshold.
        let mut batch_points: BTreeMap<u16, (u32, u32)> = BTreeMap::new();
        for point in batch.points() {
            let Some(id) = batch.series_of(point) else {
                // Decode validates indices, so an unresolvable index only
                // happens on hand-built batches. Shed and count it rather
                // than lose it silently.
                out.faults.late += 1;
                out.late_shed += 1;
                self.totals.late += 1;
                continue;
            };
            let entry = batch_points.entry(point.series).or_insert((0, 0));
            entry.0 += 1;
            let mut per_point = FaultCounts::default();
            if !point.value.is_finite() {
                per_point.nan += 1;
                entry.1 += 1;
            }
            let state = self.state.entry(id.clone()).or_default();
            // Stuck-constant runs: bit-identical consecutive values.
            if state.last_bits == Some(point.value.to_bits()) {
                state.run = state.run.saturating_add(1);
                // `run` counts repeats, so run + 1 samples agree; count
                // each run once, when it first reaches the threshold.
                if state.run + 1 == self.config.stuck_run {
                    per_point.stuck_runs += 1;
                }
            } else {
                state.run = 0;
                state.last_bits = Some(point.value.to_bits());
            }
            let mut late = batch.collected_at.saturating_sub(point.timestamp)
                > self.config.late_slack;
            match state.last_ts {
                Some(last) if point.timestamp < last => late = true,
                Some(last) if point.timestamp == last => per_point.duplicated += 1,
                Some(last) => {
                    let delta = point.timestamp - last;
                    if let Some(md) = state.min_delta {
                        if delta > self.config.gap_factor.saturating_mul(md) {
                            per_point.dropped_gaps += 1;
                        }
                        state.min_delta = Some(md.min(delta));
                    } else {
                        state.min_delta = Some(delta);
                    }
                }
                None => {}
            }
            if late {
                per_point.late += 1;
                out.late_shed += 1;
            } else {
                // Advance the tail watermark only for admitted points, so
                // it mirrors what the store will actually hold.
                state.last_ts = Some(match state.last_ts {
                    Some(last) => last.max(point.timestamp),
                    None => point.timestamp,
                });
                out.routed.push((id.clone(), point.timestamp, point.value));
            }
            self.per_series
                .entry(id.clone())
                .or_default()
                .add(&per_point);
            out.faults.add(&per_point);
            self.totals.add(&per_point);
        }
        let cfg = self.config;
        for (idx, (total, nan)) in batch_points {
            if nan > 0
                && total >= cfg.nan_burst_min_points
                && f64::from(nan) >= cfg.nan_burst_fraction * f64::from(total)
            {
                if let Some(id) = batch.series().get(idx as usize) {
                    out.nan_flagged.push(id.clone());
                }
            }
        }
        out
    }

    /// Total fault observations since construction.
    pub fn totals(&self) -> &FaultCounts {
        &self.totals
    }

    /// Per-series fault observations, in series-id order.
    pub fn per_series(&self) -> &BTreeMap<SeriesId, FaultCounts> {
        &self.per_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::{MetricKind, SeriesId};

    fn sid(n: u32) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, format!("s{n}"))
    }

    fn batch_of(collected_at: u64, pts: &[(u32, u64, f64)]) -> SampleBatch {
        let mut b = SampleBatch::new("t", collected_at);
        for &(s, ts, v) in pts {
            b.push(&sid(s), ts, v).unwrap();
        }
        b
    }

    #[test]
    fn clean_stream_admits_everything() {
        let mut v = Validator::new(ValidatorConfig::default());
        let out = v.validate(&batch_of(40, &[(0, 10, 1.0), (0, 20, 1.1), (0, 30, 1.2)]));
        assert_eq!(out.routed.len(), 3);
        assert_eq!(out.late_shed, 0);
        assert!(out.faults.is_clean());
        assert!(v.totals().is_clean());
    }

    #[test]
    fn gap_counts_as_dropped_samples() {
        let mut v = Validator::new(ValidatorConfig::default());
        // Cadence 10 established, then a 50-tick gap (> 3×10).
        let out = v.validate(&batch_of(
            120,
            &[(0, 10, 1.0), (0, 20, 1.1), (0, 70, 1.2), (0, 80, 1.3)],
        ));
        assert_eq!(out.faults.dropped_gaps, 1);
        assert_eq!(out.routed.len(), 4, "gapped points still pass through");
    }

    #[test]
    fn duplicates_counted_and_passed() {
        let mut v = Validator::new(ValidatorConfig::default());
        let out = v.validate(&batch_of(40, &[(0, 10, 1.0), (0, 10, 1.0), (0, 20, 1.1)]));
        assert_eq!(out.faults.duplicated, 1);
        assert_eq!(out.routed.len(), 3);
    }

    #[test]
    fn nan_burst_counted_passed_and_flagged() {
        let mut v = Validator::new(ValidatorConfig::default());
        let out = v.validate(&batch_of(
            60,
            &[
                (0, 10, f64::NAN),
                (0, 20, f64::NAN),
                (0, 30, f64::NAN),
                (0, 40, 1.0),
            ],
        ));
        assert_eq!(out.faults.nan, 3);
        assert_eq!(out.routed.len(), 4, "NaN passes through to the store");
        assert_eq!(out.nan_flagged, vec![sid(0)]);
        // A mostly-finite batch is not flagged.
        let out = v.validate(&batch_of(
            120,
            &[(1, 50, 1.0), (1, 60, f64::NAN), (1, 70, 1.0), (1, 80, 1.0)],
        ));
        assert_eq!(out.faults.nan, 1);
        assert!(out.nan_flagged.is_empty());
    }

    #[test]
    fn stuck_run_counted_once() {
        let mut v = Validator::new(ValidatorConfig {
            stuck_run: 3,
            ..ValidatorConfig::default()
        });
        let pts: Vec<(u32, u64, f64)> = (0..6).map(|i| (0, 10 * (i + 1), 4.25)).collect();
        let out = v.validate(&batch_of(100, &pts));
        assert_eq!(out.faults.stuck_runs, 1, "one run, counted once");
        assert_eq!(out.routed.len(), 6);
    }

    #[test]
    fn late_points_are_shed_and_counted() {
        let mut v = Validator::new(ValidatorConfig::default());
        let first = v.validate(&batch_of(40, &[(0, 10, 1.0), (0, 30, 1.1)]));
        assert_eq!(first.late_shed, 0);
        // ts 20 is behind the series tail (30): unappendable, shed.
        let behind = v.validate(&batch_of(60, &[(0, 20, 2.0)]));
        assert_eq!(behind.late_shed, 1);
        assert_eq!(behind.faults.late, 1);
        assert!(behind.routed.is_empty());
        // A point 5000 ticks older than its batch's collection time is
        // beyond the acceptance window even with no tail conflict.
        let stale = v.validate(&batch_of(6_000, &[(1, 100, 1.0)]));
        assert_eq!(stale.late_shed, 1);
        assert!(stale.routed.is_empty());
        assert_eq!(v.totals().late, 2);
        assert_eq!(v.per_series()[&sid(0)].late, 1);
        assert_eq!(v.per_series()[&sid(1)].late, 1);
    }

    #[test]
    fn state_spans_batches() {
        let mut v = Validator::new(ValidatorConfig::default());
        v.validate(&batch_of(40, &[(0, 10, 1.0), (0, 20, 1.1)]));
        // Same cadence continues in the next batch: no gap at the seam...
        let out = v.validate(&batch_of(60, &[(0, 30, 1.2)]));
        assert_eq!(out.faults.dropped_gaps, 0);
        // ...but a cross-batch gap is still caught.
        let out = v.validate(&batch_of(220, &[(0, 200, 1.3)]));
        assert_eq!(out.faults.dropped_gaps, 1);
    }
}
