//! Compact wire format for ingest batches.
//!
//! Collectors ship `(tenant, series, timestamp, value)` samples as binary
//! batches. The layout is dictionary-compressed: each batch carries its
//! series ids once, and every point references one by index, so a batch of
//! `n` points from `s` series costs `18n + O(s)` bytes instead of
//! re-serializing the id per point. All integers are big-endian; values
//! travel as raw IEEE-754 bits, so NaN payloads survive the round trip
//! bit-for-bit (the validator, not the codec, decides what NaN means).
//!
//! Layout (version 1):
//!
//! ```text
//! magic        4  b"FBDW"
//! version      1  = 1
//! collected_at 8  simulated collection time of the batch
//! point_count  4  at a fixed offset, so shedding can account for a
//!                 batch's points without decoding it (`peek_point_count`)
//! tenant       2 + len
//! series_count 2
//!   service    2 + len   ┐
//!   metric     1         │ per dictionary entry
//!   target     2 + len   ┘
//! points       18 × point_count: series index 2, timestamp 8, value bits 8
//! ```

use bytes::{BufMut, Bytes, BytesMut};
use fbd_tsdb::{MetricKind, SeriesId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Batch magic: "FBDW" (FBDetect Wire).
pub const MAGIC: [u8; 4] = *b"FBDW";
/// Current wire version.
pub const VERSION: u8 = 1;
/// Byte offset of the `point_count` header field.
const POINT_COUNT_OFFSET: usize = 13;
/// Encoded size of one point.
const POINT_SIZE: usize = 18;

/// Decode (and encode-limit) failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The buffer ends before the declared content does.
    Truncated,
    /// Bytes remain after the declared content.
    TrailingBytes,
    /// An unknown metric code in the series dictionary.
    BadMetricCode(u8),
    /// A non-UTF-8 tenant, service, or target string.
    BadUtf8,
    /// A point references a series index outside the dictionary.
    BadSeriesIndex(u16),
    /// More distinct series than the `u16` dictionary can index.
    TooManySeries,
    /// More points than the `u32` count field can carry.
    TooManyPoints,
    /// A string field longer than its `u16` length prefix allows.
    StringTooLong,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not an FBDW batch)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "batch truncated"),
            WireError::TrailingBytes => write!(f, "trailing bytes after batch content"),
            WireError::BadMetricCode(c) => write!(f, "unknown metric code {c}"),
            WireError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            WireError::BadSeriesIndex(i) => write!(f, "point references series index {i} outside dictionary"),
            WireError::TooManySeries => write!(f, "more than 65535 distinct series in one batch"),
            WireError::TooManyPoints => write!(f, "more than 4294967295 points in one batch"),
            WireError::StringTooLong => write!(f, "string field exceeds 65535 bytes"),
        }
    }
}

impl std::error::Error for WireError {}

fn metric_code(kind: MetricKind) -> u8 {
    match kind {
        MetricKind::GCpu => 0,
        MetricKind::EndpointCost => 1,
        MetricKind::Cpu => 2,
        MetricKind::Memory => 3,
        MetricKind::Throughput => 4,
        MetricKind::Latency => 5,
        MetricKind::ErrorRate => 6,
        MetricKind::CoredumpCount => 7,
        MetricKind::Application => 8,
    }
}

fn metric_from_code(code: u8) -> Result<MetricKind, WireError> {
    Ok(match code {
        0 => MetricKind::GCpu,
        1 => MetricKind::EndpointCost,
        2 => MetricKind::Cpu,
        3 => MetricKind::Memory,
        4 => MetricKind::Throughput,
        5 => MetricKind::Latency,
        6 => MetricKind::ErrorRate,
        7 => MetricKind::CoredumpCount,
        8 => MetricKind::Application,
        other => return Err(WireError::BadMetricCode(other)),
    })
}

/// One sample inside a batch, referencing the batch dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirePoint {
    /// Index into [`SampleBatch::series`].
    pub series: u16,
    /// Sample time.
    pub timestamp: Timestamp,
    /// Sample value (NaN travels bit-exact).
    pub value: f64,
}

/// A decoded (or under-construction) batch of samples from one tenant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleBatch {
    /// Originating tenant.
    pub tenant: String,
    /// Simulated time the collector assembled the batch. Drives the
    /// late-point check and the token-bucket clock — never a wall clock.
    pub collected_at: Timestamp,
    series: Vec<SeriesId>,
    points: Vec<WirePoint>,
    #[serde(skip)]
    index: BTreeMap<SeriesId, u16>,
}

impl SampleBatch {
    /// Creates an empty batch.
    pub fn new(tenant: impl Into<String>, collected_at: Timestamp) -> Self {
        SampleBatch {
            tenant: tenant.into(),
            collected_at,
            series: Vec::new(),
            points: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Adds a sample, interning its series id in the dictionary.
    pub fn push(
        &mut self,
        id: &SeriesId,
        timestamp: Timestamp,
        value: f64,
    ) -> Result<(), WireError> {
        let idx = match self.index.get(id) {
            Some(&i) => i,
            None => {
                let i = u16::try_from(self.series.len()).map_err(|_| WireError::TooManySeries)?;
                self.series.push(id.clone());
                self.index.insert(id.clone(), i);
                i
            }
        };
        if self.points.len() >= u32::MAX as usize {
            return Err(WireError::TooManyPoints);
        }
        self.points.push(WirePoint {
            series: idx,
            timestamp,
            value,
        });
        Ok(())
    }

    /// The series dictionary.
    pub fn series(&self) -> &[SeriesId] {
        &self.series
    }

    /// The samples, in collection order.
    pub fn points(&self) -> &[WirePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The series id a point references. Decoded batches always resolve;
    /// `None` only for an out-of-range index on a hand-built point.
    pub fn series_of(&self, point: &WirePoint) -> Option<&SeriesId> {
        self.series.get(point.series as usize)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len()).map_err(|_| WireError::StringTooLong)?;
    buf.put_u16(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Encodes a batch into its wire representation.
pub fn encode_batch(batch: &SampleBatch) -> Result<Bytes, WireError> {
    let series_count =
        u16::try_from(batch.series.len()).map_err(|_| WireError::TooManySeries)?;
    let point_count =
        u32::try_from(batch.points.len()).map_err(|_| WireError::TooManyPoints)?;
    let mut buf = BytesMut::with_capacity(32 + batch.points.len() * POINT_SIZE);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(batch.collected_at);
    buf.put_u32(point_count);
    put_str(&mut buf, &batch.tenant)?;
    buf.put_u16(series_count);
    for id in &batch.series {
        put_str(&mut buf, &id.service)?;
        buf.put_u8(metric_code(id.metric));
        put_str(&mut buf, &id.target)?;
    }
    for p in &batch.points {
        buf.put_u16(p.series);
        buf.put_u64(p.timestamp);
        buf.put_u64(p.value.to_bits());
    }
    Ok(buf.freeze())
}

/// A bounds-checked read cursor; every read fails with `Truncated` instead
/// of panicking on corrupt input.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

/// Decodes a wire batch, validating every length, index, and code.
pub fn decode_batch(buf: &[u8]) -> Result<SampleBatch, WireError> {
    let mut cur = Cursor { buf, pos: 0 };
    if cur.take(4)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let collected_at = cur.u64()?;
    let point_count = cur.u32()? as usize;
    let tenant = cur.str()?;
    let series_count = cur.u16()? as usize;
    let mut series = Vec::with_capacity(series_count);
    let mut index = BTreeMap::new();
    for i in 0..series_count {
        let service = cur.str()?;
        let metric = metric_from_code(cur.u8()?)?;
        let target = cur.str()?;
        let id = SeriesId::new(service, metric, target);
        index.entry(id.clone()).or_insert(i as u16);
        series.push(id);
    }
    // The point section's size is fully determined by the header count:
    // verify before allocating so a corrupt count cannot over-reserve.
    if cur.remaining() != point_count.saturating_mul(POINT_SIZE) {
        return Err(if cur.remaining() < point_count.saturating_mul(POINT_SIZE) {
            WireError::Truncated
        } else {
            WireError::TrailingBytes
        });
    }
    let mut points = Vec::with_capacity(point_count);
    for _ in 0..point_count {
        let idx = cur.u16()?;
        if idx as usize >= series.len() {
            return Err(WireError::BadSeriesIndex(idx));
        }
        let timestamp = cur.u64()?;
        let value = f64::from_bits(cur.u64()?);
        points.push(WirePoint {
            series: idx,
            timestamp,
            value,
        });
    }
    Ok(SampleBatch {
        tenant,
        collected_at,
        series,
        points,
        index,
    })
}

/// Reads the declared point count from a batch header without decoding the
/// batch. Returns `None` when the header is unreadable — shedding then
/// accounts the batch as zero points, matching what the decode stage will
/// record for it.
pub fn peek_point_count(buf: &[u8]) -> Option<u32> {
    if buf.get(..4)? != MAGIC || *buf.get(4)? != VERSION {
        return None;
    }
    let b = buf.get(POINT_COUNT_OFFSET..POINT_COUNT_OFFSET + 4)?;
    Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, format!("s{n}"))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut batch = SampleBatch::new("tenant-a", 1_234);
        batch.push(&sid(0), 10, 1.5).unwrap();
        batch.push(&sid(1), 10, f64::NAN).unwrap();
        batch.push(&sid(0), 20, -0.0).unwrap();
        let encoded = encode_batch(&batch).unwrap();
        assert_eq!(peek_point_count(&encoded), Some(3));
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(decoded.tenant, "tenant-a");
        assert_eq!(decoded.collected_at, 1_234);
        assert_eq!(decoded.series(), batch.series());
        assert_eq!(decoded.point_count(), 3);
        for (a, b) in decoded.points().iter().zip(batch.points()) {
            assert_eq!(a.series, b.series);
            assert_eq!(a.timestamp, b.timestamp);
            // Bit-exact: NaN and signed zero survive.
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        assert_eq!(decoded.series_of(&decoded.points()[1]).unwrap(), &sid(1));
    }

    #[test]
    fn push_interns_series_once() {
        let mut batch = SampleBatch::new("t", 0);
        for i in 0..100 {
            batch.push(&sid(i % 3), i as u64, 0.0).unwrap();
        }
        assert_eq!(batch.series().len(), 3);
        assert_eq!(batch.point_count(), 100);
    }

    #[test]
    fn corrupt_inputs_error_instead_of_panicking() {
        let mut batch = SampleBatch::new("t", 7);
        batch.push(&sid(0), 1, 2.0).unwrap();
        let good = encode_batch(&batch).unwrap().to_vec();

        assert_eq!(decode_batch(b"no"), Err(WireError::Truncated));
        assert_eq!(decode_batch(b"XXXXmore-bytes-here"), Err(WireError::BadMagic));
        let mut wrong_version = good.clone();
        wrong_version[4] = 9;
        assert_eq!(
            decode_batch(&wrong_version),
            Err(WireError::UnsupportedVersion(9))
        );
        // Every truncation point fails cleanly.
        for cut in 0..good.len() {
            assert!(decode_batch(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_batch(&trailing), Err(WireError::TrailingBytes));
        // A point referencing a missing dictionary entry.
        let mut bad_idx = good.clone();
        let point_start = good.len() - 18;
        bad_idx[point_start] = 0xFF;
        bad_idx[point_start + 1] = 0xFF;
        assert_eq!(
            decode_batch(&bad_idx),
            Err(WireError::BadSeriesIndex(0xFFFF))
        );
        // An unknown metric code in the dictionary.
        let mut bad_metric = good;
        // magic(4) version(1) collected_at(8) count(4) tenant(2+1)
        // series_count(2) service(2+3) metric(1)
        let metric_at = 4 + 1 + 8 + 4 + 3 + 2 + 5;
        bad_metric[metric_at] = 200;
        assert_eq!(decode_batch(&bad_metric), Err(WireError::BadMetricCode(200)));
        assert_eq!(peek_point_count(b"FB"), None);
        assert_eq!(peek_point_count(b"XXXX\x01aaaaaaaa\x00\x00\x00\x05"), None);
    }

    #[test]
    fn all_metric_kinds_roundtrip() {
        let kinds = [
            MetricKind::GCpu,
            MetricKind::EndpointCost,
            MetricKind::Cpu,
            MetricKind::Memory,
            MetricKind::Throughput,
            MetricKind::Latency,
            MetricKind::ErrorRate,
            MetricKind::CoredumpCount,
            MetricKind::Application,
        ];
        let mut batch = SampleBatch::new("t", 0);
        for (i, k) in kinds.iter().enumerate() {
            batch
                .push(&SeriesId::new("s", *k, "x"), i as u64, i as f64)
                .unwrap();
        }
        let decoded = decode_batch(&encode_batch(&batch).unwrap()).unwrap();
        let got: Vec<MetricKind> = decoded.series().iter().map(|s| s.metric).collect();
        assert_eq!(got, kinds);
    }
}
