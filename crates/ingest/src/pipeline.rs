//! The staged, bounded ingestion pipeline.
//!
//! ```text
//!             bounded              bounded             bounded
//! submit ──▶ [ingress] ─decode─▶ [decoded] ─validate─▶ [routed] ─route─▶ [worker 0..n] ─append─▶ TsdbStore
//!                │                  + quota                                  (by shard)
//!                └── submit_or_shed steals the *oldest* queued batch
//!                    when full: counted, never silent
//! ```
//!
//! Backpressure is explicit and two-mode:
//!
//! - [`IngestPipeline::submit`] blocks when the ingress queue is at its
//!   high-water mark — pressure propagates to the caller, nothing is
//!   dropped, and the resulting store contents are deterministic (equal
//!   to [`reference_ingest`] of the same batch sequence).
//! - [`IngestPipeline::submit_or_shed`] never blocks: when the ingress
//!   queue is full it shes the *oldest* queued batch (the one whose data
//!   is already the most stale), counts its batch and declared points in
//!   [`IngestStats`], and retries. Shedding happens only at ingress —
//!   once a batch is decoded its points can no longer disappear without
//!   being accounted as quota-shed, late-shed, or append-rejected.
//!
//! Every internal stage uses blocking sends, so the bounded queues form a
//! chain of high-water marks and the slowest stage throttles the whole
//! path. Per-series ordering is preserved end to end: decode and validate
//! are single-threaded, and the router assigns each series' shard to a
//! fixed appender worker.

use crate::quota::{QuotaConfig, TenantQuotas};
use crate::validate::{FaultCounts, ValidatedBatch, Validator, ValidatorConfig};
use crate::wire::{decode_batch, peek_point_count, SampleBatch};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use fbd_tsdb::{SeriesId, Timestamp, TsdbStore};
use fbdetect_core::quarantine::{FaultKind, Quarantine, QuarantineConfig};
use fbd_sync::{LockDomain, OrderedMutex};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

/// Pipeline shape and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// High-water mark (in batches) of every stage queue.
    pub queue_depth: usize,
    /// Number of shard-append workers.
    pub appenders: usize,
    /// Wire-boundary validation thresholds.
    pub validator: ValidatorConfig,
    /// Per-tenant token-bucket quota.
    pub quota: QuotaConfig,
    /// Re-run interval (simulated seconds) of the quarantine registry fed
    /// by quota and NaN-burst violations.
    pub quarantine_rerun_interval: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_depth: 64,
            appenders: 2,
            validator: ValidatorConfig::default(),
            quota: QuotaConfig::default(),
            quarantine_rerun_interval: 500,
        }
    }
}

/// Submitting to a pipeline whose stages have shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineClosed;

impl fmt::Display for PipelineClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ingest pipeline is closed")
    }
}

impl std::error::Error for PipelineClosed {}

/// Full accounting of one ingest session. The invariant
/// [`IngestStats::is_accounted`] checks — every submitted point ends up
/// appended or in exactly one counted loss bucket — is what "never silent
/// loss" means operationally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestStats {
    /// Batches accepted by `submit`/`submit_or_shed`.
    pub batches_submitted: u64,
    /// Points those batches declared.
    pub points_submitted: u64,
    /// Batches shed at ingress (oldest-first, under overload).
    pub batches_shed: u64,
    /// Points the shed batches declared.
    pub points_shed: u64,
    /// Batches that failed wire decoding.
    pub decode_errors: u64,
    /// Points those batches declared.
    pub decode_error_points: u64,
    /// Batches denied by the per-tenant token bucket.
    pub quota_violations: u64,
    /// Points those batches carried.
    pub quota_shed_points: u64,
    /// Late points shed by validation.
    pub late_shed_points: u64,
    /// Points the store refused (out-of-order race against a concurrent
    /// writer outside this pipeline).
    pub append_rejected: u64,
    /// Points lost to an internal stage failure (a dead stage thread);
    /// counted so even a crashed pipeline cannot lose points silently.
    pub internal_error_points: u64,
    /// Points appended to the store.
    pub points_appended: u64,
    /// Wire-boundary fault classification totals.
    pub faults: FaultCounts,
    /// Per-series fault classification, in series-id order.
    pub per_series_faults: BTreeMap<SeriesId, FaultCounts>,
}

impl IngestStats {
    /// Whether every submitted point is accounted for: appended or in
    /// exactly one counted loss bucket.
    pub fn is_accounted(&self) -> bool {
        self.points_submitted
            == self.points_appended
                + self.points_shed
                + self.decode_error_points
                + self.quota_shed_points
                + self.late_shed_points
                + self.append_rejected
                + self.internal_error_points
    }

    /// Fraction of submitted points shed for any reason (ingress, quota,
    /// late); 0 when nothing was submitted.
    pub fn shed_rate(&self) -> f64 {
        if self.points_submitted == 0 {
            return 0.0;
        }
        let shed = self.points_shed + self.quota_shed_points + self.late_shed_points;
        shed as f64 / self.points_submitted as f64
    }
}

#[derive(Debug, Default)]
struct Counters {
    batches_submitted: AtomicU64,
    points_submitted: AtomicU64,
    batches_shed: AtomicU64,
    points_shed: AtomicU64,
    decode_errors: AtomicU64,
    decode_error_points: AtomicU64,
    quota_violations: AtomicU64,
    quota_shed_points: AtomicU64,
    append_rejected: AtomicU64,
    internal_error_points: AtomicU64,
    points_appended: AtomicU64,
}

/// Tracks batch completion so `drain` can wait for quiescence without
/// polling. A batch completes when it is shed, rejected, or every routed
/// chunk of it has been applied to the store.
struct Progress {
    /// `(submitted, completed)`, ranked `ingest-progress` (a leaf) in
    /// `LOCK_ORDER.manifest`. Poison recovery comes with [`OrderedMutex`].
    state: OrderedMutex<(u64, u64)>,
    quiescent: Condvar,
}

impl Default for Progress {
    fn default() -> Self {
        Progress {
            state: OrderedMutex::new(LockDomain::IngestProgress, (0, 0)),
            quiescent: Condvar::new(),
        }
    }
}

impl Progress {
    fn submitted(&self) {
        self.state.lock().0 += 1;
    }

    fn completed(&self) {
        let mut g = self.state.lock();
        g.1 += 1;
        if g.1 >= g.0 {
            self.quiescent.notify_all();
        }
    }

    fn drain(&self) {
        let mut g = self.state.lock();
        while g.1 < g.0 {
            g = g.wait(&self.quiescent);
        }
    }
}

/// Completion ticket for one batch fanned out across appender workers.
struct Ticket {
    remaining: AtomicUsize,
    progress: Arc<Progress>,
}

impl Ticket {
    fn chunk_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.progress.completed();
        }
    }
}

/// The validation + quota state, shared so stats can be snapshotted while
/// the pipeline runs (a single validate thread means no contention).
struct Engine {
    validator: Validator,
    quotas: TenantQuotas,
}

/// Decodes one wire batch, counting failures in the decode-error loss
/// bucket (with the batch's *declared* point count, the same number the
/// submit side charged). Shared by the decode stage and
/// [`reference_ingest`].
fn decode_counted(raw: &Bytes, counters: &Counters) -> Option<SampleBatch> {
    match decode_batch(raw) {
        Ok(b) => Some(b),
        Err(_) => {
            counters.decode_errors.fetch_add(1, Ordering::Relaxed);
            counters.decode_error_points.fetch_add(
                u64::from(peek_point_count(raw).unwrap_or(0)),
                Ordering::Relaxed,
            );
            None
        }
    }
}

/// Charges quota, validates, and records quarantine entries for one
/// decoded batch. Returns the admitted points, or `None` when the whole
/// batch was rejected — either way the loss buckets in `counters` are
/// updated. Shared verbatim by the threaded validate stage and
/// [`reference_ingest`].
fn process_decoded_batch(
    batch: &SampleBatch,
    engine: &OrderedMutex<Engine>,
    quarantine: &OrderedMutex<Quarantine>,
    counters: &Counters,
) -> Option<ValidatedBatch> {
    let mut engine = engine.lock();
    let points = batch.point_count() as u64;
    if !engine
        .quotas
        .admit(&batch.tenant, batch.collected_at, points)
    {
        counters.quota_violations.fetch_add(1, Ordering::Relaxed);
        counters
            .quota_shed_points
            .fetch_add(points, Ordering::Relaxed);
        let mut q = quarantine.lock();
        for id in batch.series() {
            q.record_failure(
                id,
                FaultKind::DataQuality,
                format!("tenant {} over ingest quota", batch.tenant),
                batch.collected_at,
            );
        }
        return None;
    }
    let validated = engine.validator.validate(batch);
    drop(engine);
    if !validated.nan_flagged.is_empty() {
        let mut q = quarantine.lock();
        for id in &validated.nan_flagged {
            q.record_failure(
                id,
                FaultKind::DataQuality,
                "non-finite burst at wire boundary",
                batch.collected_at,
            );
        }
    }
    Some(validated)
}

/// Applies routed points to the store, counting appends and rejects.
fn apply_routed(store: &TsdbStore, chunk: &[(SeriesId, Timestamp, f64)], counters: &Counters) {
    let outcome = store.append_batch(chunk);
    counters
        .points_appended
        .fetch_add(outcome.appended as u64, Ordering::Relaxed);
    counters
        .append_rejected
        .fetch_add(outcome.rejected.len() as u64, Ordering::Relaxed);
}

struct RoutedChunk {
    points: Vec<(SeriesId, Timestamp, f64)>,
    ticket: Arc<Ticket>,
}

/// The running pipeline: spawned stage threads plus the ingress handle.
pub struct IngestPipeline {
    ingress_tx: Option<Sender<Bytes>>,
    ingress_rx: Receiver<Bytes>,
    counters: Arc<Counters>,
    progress: Arc<Progress>,
    engine: Arc<OrderedMutex<Engine>>,
    quarantine: Arc<OrderedMutex<Quarantine>>,
    threads: Vec<JoinHandle<()>>,
}

impl IngestPipeline {
    /// Spawns the stage threads against `store` with a fresh quarantine
    /// registry.
    pub fn new(store: Arc<TsdbStore>, config: IngestConfig) -> Self {
        let quarantine = Arc::new(OrderedMutex::new(
            LockDomain::Quarantine,
            Quarantine::new(QuarantineConfig::default(), config.quarantine_rerun_interval),
        ));
        Self::with_quarantine(store, config, quarantine)
    }

    /// Spawns the stage threads, feeding violations into an existing
    /// quarantine registry (shared with a scan pipeline, typically).
    pub fn with_quarantine(
        store: Arc<TsdbStore>,
        config: IngestConfig,
        quarantine: Arc<OrderedMutex<Quarantine>>,
    ) -> Self {
        let depth = config.queue_depth.max(1);
        let appenders = config.appenders.max(1);
        let counters = Arc::new(Counters::default());
        let progress = Arc::new(Progress::default());
        let engine = Arc::new(OrderedMutex::new(
            LockDomain::IngestEngine,
            Engine {
                validator: Validator::new(config.validator),
                quotas: TenantQuotas::new(config.quota),
            },
        ));

        let (ingress_tx, ingress_rx) = bounded::<Bytes>(depth);
        let (decoded_tx, decoded_rx) = bounded::<SampleBatch>(depth);
        let (routed_tx, routed_rx) = bounded::<(ValidatedBatch, Arc<Ticket>)>(depth);
        let worker_channels: Vec<(Sender<RoutedChunk>, Receiver<RoutedChunk>)> =
            (0..appenders).map(|_| bounded(depth)).collect();

        let mut threads = Vec::new();

        // Stage 1: decode. Wire errors end a batch's life here, counted
        // against the decode-error bucket.
        {
            let rx = ingress_rx.clone();
            let counters = Arc::clone(&counters);
            let progress = Arc::clone(&progress);
            threads.push(std::thread::spawn(move || {
                while let Ok(raw) = rx.recv() {
                    let Some(batch) = decode_counted(&raw, &counters) else {
                        progress.completed();
                        continue;
                    };
                    let points = batch.point_count() as u64;
                    if decoded_tx.send(batch).is_err() {
                        counters
                            .internal_error_points
                            .fetch_add(points, Ordering::Relaxed);
                        progress.completed();
                    }
                }
            }));
        }

        // Stage 2: validate + quota (single thread: per-series state).
        {
            let counters = Arc::clone(&counters);
            let progress = Arc::clone(&progress);
            let engine = Arc::clone(&engine);
            let quarantine = Arc::clone(&quarantine);
            threads.push(std::thread::spawn(move || {
                while let Ok(batch) = decoded_rx.recv() {
                    match process_decoded_batch(&batch, &engine, &quarantine, &counters) {
                        Some(validated) if !validated.routed.is_empty() => {
                            let points = validated.routed.len() as u64;
                            let ticket = Arc::new(Ticket {
                                remaining: AtomicUsize::new(1),
                                progress: Arc::clone(&progress),
                            });
                            if routed_tx.send((validated, ticket)).is_err() {
                                counters
                                    .internal_error_points
                                    .fetch_add(points, Ordering::Relaxed);
                                progress.completed();
                            }
                        }
                        _ => progress.completed(),
                    }
                }
            }));
        }

        // Stage 3: route by shard to a fixed appender worker.
        {
            let counters = Arc::clone(&counters);
            let worker_txs: Vec<Sender<RoutedChunk>> =
                worker_channels.iter().map(|(tx, _)| tx.clone()).collect();
            threads.push(std::thread::spawn(move || {
                while let Ok((validated, ticket)) = routed_rx.recv() {
                    let mut chunks: Vec<Vec<(SeriesId, Timestamp, f64)>> =
                        (0..worker_txs.len()).map(|_| Vec::new()).collect();
                    for (id, ts, value) in validated.routed {
                        let worker = TsdbStore::shard_of(&id) % worker_txs.len();
                        chunks[worker].push((id, ts, value));
                    }
                    let live: Vec<usize> = (0..chunks.len())
                        .filter(|&w| !chunks[w].is_empty())
                        .collect();
                    // The ticket was born with 1 outstanding chunk; adjust
                    // to the real fan-out before dispatching.
                    ticket
                        .remaining
                        .fetch_add(live.len().saturating_sub(1), Ordering::AcqRel);
                    if live.is_empty() {
                        ticket.chunk_done();
                        continue;
                    }
                    for w in live {
                        let chunk = std::mem::take(&mut chunks[w]);
                        let points = chunk.len() as u64;
                        if worker_txs[w]
                            .send(RoutedChunk {
                                points: chunk,
                                ticket: Arc::clone(&ticket),
                            })
                            .is_err()
                        {
                            counters
                                .internal_error_points
                                .fetch_add(points, Ordering::Relaxed);
                            ticket.chunk_done();
                        }
                    }
                }
            }));
        }

        // Stage 4: shard-append workers.
        for (_, rx) in &worker_channels {
            let rx = rx.clone();
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            threads.push(std::thread::spawn(move || {
                while let Ok(chunk) = rx.recv() {
                    apply_routed(&store, &chunk.points, &counters);
                    chunk.ticket.chunk_done();
                }
            }));
        }
        drop(worker_channels);

        IngestPipeline {
            ingress_tx: Some(ingress_tx),
            ingress_rx,
            counters,
            progress,
            engine,
            quarantine,
            threads,
        }
    }

    fn count_submit(&self, raw: &Bytes) {
        self.counters
            .batches_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.counters.points_submitted.fetch_add(
            u64::from(peek_point_count(raw).unwrap_or(0)),
            Ordering::Relaxed,
        );
        self.progress.submitted();
    }

    /// Submits a wire batch, blocking while the ingress queue is at its
    /// high-water mark (backpressure mode: nothing is ever shed).
    pub fn submit(&self, raw: Bytes) -> Result<(), PipelineClosed> {
        let Some(tx) = self.ingress_tx.as_ref() else {
            return Err(PipelineClosed);
        };
        self.count_submit(&raw);
        match tx.send(raw) {
            Ok(()) => Ok(()),
            Err(crossbeam::channel::SendError(back)) => {
                // Still accounted: a closed pipeline cannot lose points
                // silently either.
                self.counters.internal_error_points.fetch_add(
                    u64::from(peek_point_count(&back).unwrap_or(0)),
                    Ordering::Relaxed,
                );
                self.progress.completed();
                Err(PipelineClosed)
            }
        }
    }

    /// Submits without blocking: when the ingress queue is full, sheds
    /// the oldest queued batch (counted in [`IngestStats`]) and retries.
    /// Returns how many batches were shed to make room.
    pub fn submit_or_shed(&self, raw: Bytes) -> Result<u64, PipelineClosed> {
        let Some(tx) = self.ingress_tx.as_ref() else {
            return Err(PipelineClosed);
        };
        self.count_submit(&raw);
        let mut shed = 0u64;
        let mut pending = raw;
        loop {
            match tx.try_send(pending) {
                Ok(()) => return Ok(shed),
                Err(TrySendError::Disconnected(back)) => {
                    self.counters.internal_error_points.fetch_add(
                        u64::from(peek_point_count(&back).unwrap_or(0)),
                        Ordering::Relaxed,
                    );
                    self.progress.completed();
                    return Err(PipelineClosed);
                }
                Err(TrySendError::Full(back)) => {
                    pending = back;
                    match self.ingress_rx.try_recv() {
                        Ok(oldest) => {
                            shed += 1;
                            self.counters.batches_shed.fetch_add(1, Ordering::Relaxed);
                            self.counters.points_shed.fetch_add(
                                u64::from(peek_point_count(&oldest).unwrap_or(0)),
                                Ordering::Relaxed,
                            );
                            self.progress.completed();
                        }
                        // The decode stage drained the queue between our
                        // two calls: just retry the send.
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Disconnected) => {
                            self.progress.completed();
                            return Err(PipelineClosed);
                        }
                    }
                }
            }
        }
    }

    /// Blocks until every submitted batch has fully cleared the pipeline
    /// (appended, shed, or rejected).
    pub fn drain(&self) {
        self.progress.drain();
    }

    /// The quarantine registry fed by quota and NaN-burst violations.
    pub fn quarantine(&self) -> Arc<OrderedMutex<Quarantine>> {
        Arc::clone(&self.quarantine)
    }

    /// A point-in-time copy of the session stats. Counters are read
    /// individually (not atomically as a set); call after [`IngestPipeline::drain`]
    /// for exact accounting.
    pub fn stats(&self) -> IngestStats {
        let engine = self.engine.lock();
        let c = &self.counters;
        IngestStats {
            batches_submitted: c.batches_submitted.load(Ordering::Relaxed),
            points_submitted: c.points_submitted.load(Ordering::Relaxed),
            batches_shed: c.batches_shed.load(Ordering::Relaxed),
            points_shed: c.points_shed.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            decode_error_points: c.decode_error_points.load(Ordering::Relaxed),
            quota_violations: c.quota_violations.load(Ordering::Relaxed),
            quota_shed_points: c.quota_shed_points.load(Ordering::Relaxed),
            late_shed_points: engine.validator.totals().late,
            append_rejected: c.append_rejected.load(Ordering::Relaxed),
            internal_error_points: c.internal_error_points.load(Ordering::Relaxed),
            points_appended: c.points_appended.load(Ordering::Relaxed),
            faults: *engine.validator.totals(),
            per_series_faults: engine.validator.per_series().clone(),
        }
    }

    /// Shuts the pipeline down: waits for in-flight batches, joins every
    /// stage thread, and returns the final accounting.
    pub fn finish(mut self) -> IngestStats {
        self.drain();
        self.ingress_tx = None; // disconnect: stages exit in order
        for t in self.threads.drain(..) {
            // A stage thread panicking would already have been counted as
            // internal errors by its neighbors; nothing to do with the
            // payload here.
            let _ = t.join();
        }
        self.stats()
    }
}

/// Ingests `batches` synchronously on the caller's thread, through the
/// exact same decode → quota → validate → append code as the threaded
/// pipeline. This is the determinism oracle: a threaded pipeline fed the
/// same sequence via [`IngestPipeline::submit`] (no ingress shedding)
/// produces byte-identical store contents and identical stats.
pub fn reference_ingest(
    store: &TsdbStore,
    batches: &[Bytes],
    config: IngestConfig,
    quarantine: &OrderedMutex<Quarantine>,
) -> IngestStats {
    let counters = Counters::default();
    let engine = OrderedMutex::new(
        LockDomain::IngestEngine,
        Engine {
            validator: Validator::new(config.validator),
            quotas: TenantQuotas::new(config.quota),
        },
    );
    for raw in batches {
        counters.batches_submitted.fetch_add(1, Ordering::Relaxed);
        counters.points_submitted.fetch_add(
            u64::from(peek_point_count(raw).unwrap_or(0)),
            Ordering::Relaxed,
        );
        let Some(batch) = decode_counted(raw, &counters) else {
            continue;
        };
        if let Some(validated) = process_decoded_batch(&batch, &engine, quarantine, &counters) {
            if !validated.routed.is_empty() {
                apply_routed(store, &validated.routed, &counters);
            }
        }
    }
    let engine = engine.lock();
    IngestStats {
        batches_submitted: counters.batches_submitted.load(Ordering::Relaxed),
        points_submitted: counters.points_submitted.load(Ordering::Relaxed),
        batches_shed: 0,
        points_shed: 0,
        decode_errors: counters.decode_errors.load(Ordering::Relaxed),
        decode_error_points: counters.decode_error_points.load(Ordering::Relaxed),
        quota_violations: counters.quota_violations.load(Ordering::Relaxed),
        quota_shed_points: counters.quota_shed_points.load(Ordering::Relaxed),
        late_shed_points: engine.validator.totals().late,
        append_rejected: counters.append_rejected.load(Ordering::Relaxed),
        internal_error_points: counters.internal_error_points.load(Ordering::Relaxed),
        points_appended: counters.points_appended.load(Ordering::Relaxed),
        faults: *engine.validator.totals(),
        per_series_faults: engine.validator.per_series().clone(),
    }
}
