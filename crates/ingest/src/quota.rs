//! Per-tenant token-bucket ingest quotas.
//!
//! Each tenant spends one token per point. Buckets refill on the
//! *simulated* clock — a batch's `collected_at` — so admission decisions
//! depend only on the submitted batch sequence, never on wall time, and
//! replaying the same batches yields the same verdicts. Integer-only
//! arithmetic keeps the refill exact.
//!
//! A batch that exceeds its tenant's budget is rejected whole (its points
//! are counted as quota-shed, never silently dropped) and the pipeline
//! records a data-quality quarantine entry for every series it carried,
//! feeding the same registry the scan supervisor uses.
//!
//! [`TenantQuotas`] holds no lock of its own: it lives inside the validate
//! stage's `Engine`, guarded by the `ingest-engine` [`fbd_sync::OrderedMutex`]
//! (rank 10 in `LOCK_ORDER.manifest`). That guard is deliberately the
//! lowest rank in the hierarchy because quota denial records quarantine
//! entries (rank 20) while it is still live.

use fbd_tsdb::Timestamp;
use std::collections::BTreeMap;

/// Token-bucket parameters, in points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest burst a tenant may ingest at once.
    pub burst: u64,
    /// Sustained refill rate, points per simulated second.
    pub points_per_sec: u64,
}

impl Default for QuotaConfig {
    /// Generous defaults sized for the simulator: a million-point burst
    /// and 100k points/s sustained per tenant.
    fn default() -> Self {
        QuotaConfig {
            burst: 1_000_000,
            points_per_sec: 100_000,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    refilled_at: Timestamp,
}

/// Admission state for every tenant seen so far.
#[derive(Debug, Default)]
pub struct TenantQuotas {
    config: QuotaConfig,
    buckets: BTreeMap<String, Bucket>,
}

impl TenantQuotas {
    /// Creates the registry with one shared bucket shape per tenant.
    pub fn new(config: QuotaConfig) -> Self {
        TenantQuotas {
            config,
            buckets: BTreeMap::new(),
        }
    }

    /// Charges `points` tokens against `tenant`'s bucket at simulated
    /// time `now`. Returns whether the batch is admitted; a denied batch
    /// charges nothing.
    pub fn admit(&mut self, tenant: &str, now: Timestamp, points: u64) -> bool {
        let bucket = match self.buckets.get_mut(tenant) {
            Some(b) => b,
            None => {
                // First contact starts with a full bucket.
                self.buckets.insert(
                    tenant.to_string(),
                    Bucket {
                        tokens: self.config.burst,
                        refilled_at: now,
                    },
                );
                match self.buckets.get_mut(tenant) {
                    Some(b) => b,
                    // Unreachable: the entry was just inserted.
                    None => return false,
                }
            }
        };
        if now > bucket.refilled_at {
            let elapsed = now - bucket.refilled_at;
            bucket.tokens = bucket
                .tokens
                .saturating_add(elapsed.saturating_mul(self.config.points_per_sec))
                .min(self.config.burst);
            bucket.refilled_at = now;
        }
        // `now < refilled_at` (clock going backwards within a tenant's
        // batch stream) refills nothing: the bucket clock is monotone.
        if bucket.tokens >= points {
            bucket.tokens -= points;
            true
        } else {
            false
        }
    }

    /// Remaining tokens for a tenant, if it has been seen.
    pub fn remaining(&self, tenant: &str) -> Option<u64> {
        self.buckets.get(tenant).map(|b| b.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_deny_then_refill() {
        let mut q = TenantQuotas::new(QuotaConfig {
            burst: 100,
            points_per_sec: 10,
        });
        assert!(q.admit("a", 0, 100));
        assert_eq!(q.remaining("a"), Some(0));
        // Bucket empty: denied, and the denial charges nothing.
        assert!(!q.admit("a", 0, 1));
        assert_eq!(q.remaining("a"), Some(0));
        // 5 seconds refill 50 tokens.
        assert!(q.admit("a", 5, 50));
        assert!(!q.admit("a", 5, 1));
        // Refill caps at burst.
        assert!(q.admit("a", 1_000, 100));
        assert!(!q.admit("a", 1_000, 1));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut q = TenantQuotas::new(QuotaConfig {
            burst: 10,
            points_per_sec: 1,
        });
        assert!(q.admit("a", 0, 10));
        assert!(q.admit("b", 0, 10), "tenant b has its own bucket");
        assert!(!q.admit("a", 0, 1));
    }

    #[test]
    fn backwards_clock_never_refills() {
        let mut q = TenantQuotas::new(QuotaConfig {
            burst: 10,
            points_per_sec: 1_000,
        });
        assert!(q.admit("a", 100, 10));
        // An older batch cannot mint tokens.
        assert!(!q.admit("a", 50, 5));
        assert_eq!(q.remaining("a"), Some(0));
    }
}
