//! Property-based tests for the ingest front-end.
//!
//! The two load-bearing properties:
//!
//! 1. **Determinism**: the threaded pipeline, fed any batch sequence via
//!    blocking `submit`, produces byte-identical store contents and
//!    identical stats to the single-threaded [`reference_ingest`] oracle —
//!    regardless of queue depth or appender count.
//! 2. **No silent loss**: under arbitrary interleavings of valid, faulty,
//!    and corrupted batches, quota exhaustion, and load-shedding ingress,
//!    the pipeline never panics and every submitted point lands in the
//!    store or in exactly one counted loss bucket.

use bytes::Bytes;
use fbd_ingest::pipeline::{reference_ingest, IngestConfig, IngestPipeline};
use fbd_ingest::quota::QuotaConfig;
use fbd_ingest::wire::{decode_batch, encode_batch, SampleBatch};
use fbd_tsdb::{MetricKind, SeriesId, StoreConfig, TsdbStore};
use fbdetect_core::quarantine::{Quarantine, QuarantineConfig};
use fbd_sync::{LockDomain, OrderedMutex};
use proptest::prelude::*;
use std::sync::Arc;

fn sid(n: u8) -> SeriesId {
    SeriesId::new("svc", MetricKind::GCpu, format!("s{n}"))
}

/// `(tenant, collected_at, points)` where each point is
/// `(series, timestamp, value-class)`.
type BatchSpec = (u8, u64, Vec<(u8, u64, u8)>);

fn value_of(class: u8, ts: u64) -> f64 {
    match class % 5 {
        0 | 1 => 1.0 + (ts % 97) as f64 * 1e-3,
        2 => 4.25, // a repeating constant: feeds the stuck detector
        3 => f64::NAN,
        _ => f64::INFINITY,
    }
}

fn build(spec: &BatchSpec) -> Bytes {
    let (tenant, collected_at, points) = spec;
    let mut batch = SampleBatch::new(format!("t{}", tenant % 3), *collected_at);
    for (series, ts, class) in points {
        batch
            .push(&sid(series % 4), *ts, value_of(*class, *ts))
            .unwrap();
    }
    encode_batch(&batch).unwrap()
}

fn batch_strategy() -> impl Strategy<Value = BatchSpec> {
    (
        any::<u8>(),
        0u64..8_000,
        prop::collection::vec((any::<u8>(), 0u64..8_000, any::<u8>()), 0..40),
    )
}

/// A stable fingerprint of the full store contents: series ids in order,
/// their version/append counters, and every point down to the value bits.
fn fingerprint(store: &TsdbStore) -> Vec<(SeriesId, u64, u64, Vec<(u64, u64)>)> {
    let mut ids = store.series_ids();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            let s = store.get(&id).unwrap();
            let points = s
                .points()
                .iter()
                .map(|p| (p.timestamp, p.value.to_bits()))
                .collect();
            (id, s.version(), s.appended(), points)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_pipeline_matches_reference(
        specs in prop::collection::vec(batch_strategy(), 0..20),
        depth in 1usize..8,
        appenders in 1usize..4,
    ) {
        let batches: Vec<Bytes> = specs.iter().map(build).collect();
        let config = IngestConfig {
            queue_depth: depth,
            appenders,
            // A quota tight enough that some runs exercise denial.
            quota: QuotaConfig { burst: 300, points_per_sec: 20 },
            ..IngestConfig::default()
        };

        let threaded_store = Arc::new(TsdbStore::new());
        let pipeline = IngestPipeline::new(Arc::clone(&threaded_store), config.clone());
        for raw in &batches {
            pipeline.submit(raw.clone()).unwrap();
        }
        let threaded = pipeline.finish();

        let reference_store = TsdbStore::new();
        let quarantine = OrderedMutex::new(
            LockDomain::Quarantine,
            Quarantine::new(QuarantineConfig::default(), 500),
        );
        let reference = reference_ingest(&reference_store, &batches, config, &quarantine);

        prop_assert!(threaded.is_accounted(), "{threaded:?}");
        prop_assert_eq!(&threaded, &reference);
        prop_assert_eq!(fingerprint(&threaded_store), fingerprint(&reference_store));
    }

    #[test]
    fn chaotic_input_never_panics_and_accounts_every_point(
        specs in prop::collection::vec(
            (batch_strategy(), any::<u8>(), (any::<bool>(), any::<u16>(), any::<u8>())),
            0..24,
        ),
        depth in 1usize..4,
    ) {
        let config = IngestConfig {
            queue_depth: depth,
            appenders: 2,
            quota: QuotaConfig { burst: 200, points_per_sec: 10 },
            ..IngestConfig::default()
        };
        let store = Arc::new(TsdbStore::new());
        let pipeline = IngestPipeline::new(Arc::clone(&store), config);
        for (spec, mode, (corrupt, pos, flip)) in &specs {
            let mut raw = build(spec).to_vec();
            if *corrupt {
                // Corrupt one byte anywhere in the frame (header, dict,
                // or payload): the pipeline must survive whatever decodes.
                let at = *pos as usize % raw.len().max(1);
                if let Some(byte) = raw.get_mut(at) {
                    *byte ^= flip | 1;
                }
            }
            let raw = Bytes::from(raw);
            // Interleave backpressure submits with load-shedding ones.
            if mode % 2 == 0 {
                pipeline.submit(raw).unwrap();
            } else {
                pipeline.submit_or_shed(raw).unwrap();
            }
        }
        let stats = pipeline.finish();
        prop_assert!(stats.is_accounted(), "{stats:?}");
        // The store holds exactly the points the stats claim it does.
        let stored: u64 = store
            .series_ids()
            .iter()
            .map(|id| store.get(id).map(|s| s.len() as u64).unwrap_or(0))
            .sum();
        prop_assert_eq!(stored, stats.points_appended);
        // Decode failures surface as counted errors, never as lost points.
        prop_assert!(stats.points_appended <= stats.points_submitted);
    }

    #[test]
    fn compressed_store_ingest_matches_plain(
        specs in prop::collection::vec(batch_strategy(), 0..20),
        seal_limit in 1u32..32,
    ) {
        // The full front-end — wire decode, validation, quota, sharded
        // appenders — writing through Gorilla-compressed series heads must
        // admit, shed, and store exactly what it does over plain storage:
        // identical stats and bit-identical store contents, while the
        // compressed store's incremental memory accounting stays honest.
        let config = IngestConfig {
            queue_depth: 4,
            appenders: 2,
            quota: QuotaConfig { burst: u64::MAX / 2, points_per_sec: 0 },
            ..IngestConfig::default()
        };
        let batches: Vec<Bytes> = specs.iter().map(build).collect();
        let plain_store = Arc::new(TsdbStore::new());
        let plain_pipe = IngestPipeline::new(Arc::clone(&plain_store), config.clone());
        let packed_store = Arc::new(TsdbStore::with_config(StoreConfig {
            seal_limit,
            shard_budget_bytes: None,
            decode_cache_bytes: 4_096,
        }));
        let packed_pipe = IngestPipeline::new(Arc::clone(&packed_store), config);
        for raw in &batches {
            plain_pipe.submit(raw.clone()).unwrap();
            packed_pipe.submit(raw.clone()).unwrap();
        }
        let plain_stats = plain_pipe.finish();
        let packed_stats = packed_pipe.finish();
        prop_assert!(packed_stats.is_accounted(), "{packed_stats:?}");
        prop_assert_eq!(&plain_stats, &packed_stats);
        prop_assert_eq!(fingerprint(&plain_store), fingerprint(&packed_store));
        // The O(1)-maintained resident counter matches a full recount.
        let recount: usize = packed_store
            .series_ids()
            .iter()
            .map(|id| packed_store.get(id).map(|s| s.resident_bytes()).unwrap_or(0))
            .sum();
        prop_assert_eq!(packed_store.stats().resident_bytes(), recount);
        // Any series that outgrew its head must actually have sealed.
        let grew = packed_store
            .series_ids()
            .iter()
            .any(|id| packed_store.get(id).map(|s| s.len()).unwrap_or(0) >= seal_limit as usize);
        if grew {
            prop_assert!(packed_store.stats().sealed_blocks() > 0);
        }
    }

    #[test]
    fn wire_roundtrip_is_exact(spec in batch_strategy()) {
        let (tenant, collected_at, points) = &spec;
        let mut batch = SampleBatch::new(format!("t{}", tenant % 3), *collected_at);
        for (series, ts, class) in points {
            batch.push(&sid(series % 4), *ts, value_of(*class, *ts)).unwrap();
        }
        let encoded = encode_batch(&batch).unwrap();
        let decoded = decode_batch(&encoded).unwrap();
        // Compare down to the value bits: NaN payloads must survive the
        // wire exactly, which `f64::eq` cannot express.
        prop_assert_eq!(&decoded.tenant, &batch.tenant);
        prop_assert_eq!(decoded.collected_at, batch.collected_at);
        prop_assert_eq!(decoded.series(), batch.series());
        let bits = |b: &SampleBatch| -> Vec<(u16, u64, u64)> {
            b.points()
                .iter()
                .map(|p| (p.series, p.timestamp, p.value.to_bits()))
                .collect()
        };
        prop_assert_eq!(bits(&decoded), bits(&batch));
    }
}
