//! Feature-matrix utilities shared by the clustering algorithms.

use crate::{ClusterError, Result};

/// Validates that all rows are finite and share one dimension; returns it.
pub fn check_matrix(items: &[Vec<f64>]) -> Result<usize> {
    let Some(first) = items.first() else {
        return Err(ClusterError::EmptyInput);
    };
    let dim = first.len();
    if dim == 0 {
        return Err(ClusterError::InvalidParameter("zero-dimensional features"));
    }
    for row in items {
        if row.len() != dim {
            return Err(ClusterError::DimensionMismatch {
                expected: dim,
                actual: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(ClusterError::NonFiniteInput);
        }
    }
    Ok(dim)
}

/// Squared Euclidean distance between two equal-length vectors.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Z-score normalizes each column in place; constant columns become zeros.
///
/// Feature scales differ wildly (a variance feature vs. a 64-bit hash), so
/// all clustering entry points normalize first.
pub fn normalize_columns(items: &mut [Vec<f64>]) -> Result<()> {
    let dim = check_matrix(items)?;
    let n = items.len() as f64;
    for col in 0..dim {
        let mean: f64 = items.iter().map(|r| r[col]).sum::<f64>() / n;
        let var: f64 = items
            .iter()
            .map(|r| (r[col] - mean) * (r[col] - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        for row in items.iter_mut() {
            row[col] = if std > 0.0 {
                (row[col] - mean) / std
            } else {
                0.0
            };
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_matrix_happy_path() {
        let m = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(check_matrix(&m).unwrap(), 2);
    }

    #[test]
    fn check_matrix_rejects_bad_input() {
        assert_eq!(check_matrix(&[]), Err(ClusterError::EmptyInput));
        assert!(matches!(
            check_matrix(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ClusterError::DimensionMismatch { .. })
        ));
        assert_eq!(
            check_matrix(&[vec![f64::NAN]]),
            Err(ClusterError::NonFiniteInput)
        );
        assert!(check_matrix(&[vec![]]).is_err());
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn normalization_zero_mean_unit_std() {
        let mut m = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        normalize_columns(&mut m).unwrap();
        for col in 0..2 {
            let mean: f64 = m.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        // Both columns now have comparable magnitude.
        assert!((m[0][0] - m[0][1]).abs() < 1e-12);
    }

    #[test]
    fn normalization_constant_column_zeroed() {
        let mut m = vec![vec![7.0], vec![7.0]];
        normalize_columns(&mut m).unwrap();
        assert_eq!(m, vec![vec![0.0], vec![0.0]]);
    }
}
