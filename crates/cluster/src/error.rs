//! Error type for the clustering substrate.

use std::fmt;

/// Errors produced by clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No items to cluster.
    EmptyInput,
    /// Feature vectors had inconsistent dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first row.
        expected: usize,
        /// Dimensionality of the offending row.
        actual: usize,
    },
    /// A parameter was out of range (e.g. k = 0).
    InvalidParameter(&'static str),
    /// Input contained NaN or infinite values.
    NonFiniteInput,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyInput => write!(f, "no items to cluster"),
            ClusterError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {actual}"
                )
            }
            ClusterError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ClusterError::NonFiniteInput => write!(f, "features contain NaN or infinity"),
        }
    }
}

impl std::error::Error for ClusterError {}
