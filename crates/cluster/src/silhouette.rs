//! Silhouette score for clustering quality (§5.5.1).
//!
//! The paper "attempted to automate cut-level selection by testing different
//! values and evaluating their Silhouette scores … however, these scores
//! often do not converge to an optimal value". Implemented for the
//! clustering ablation.

use crate::features::{check_matrix, distance, normalize_columns};
use crate::{ClusterError, Result};

/// Mean silhouette score over all items, in `[-1, 1]`.
///
/// Items in singleton clusters contribute a score of 0 (the usual
/// convention). Returns an error when all items share one cluster, where
/// the score is undefined.
pub fn silhouette_score(items: &[Vec<f64>], labels: &[usize]) -> Result<f64> {
    check_matrix(items)?;
    if labels.len() != items.len() {
        return Err(ClusterError::InvalidParameter(
            "labels length must match items",
        ));
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Err(ClusterError::InvalidParameter(
            "silhouette needs at least two clusters",
        ));
    }
    let mut data = items.to_vec();
    normalize_columns(&mut data)?;
    let n = data.len();
    let mut cluster_sizes = vec![0usize; k];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        if cluster_sizes[own] <= 1 {
            continue; // Contributes 0.
        }
        // Mean distance to own cluster (a) and nearest other cluster (b).
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += distance(&data[i], &data[j]);
        }
        let a = sums[own] / (cluster_sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_score_high() {
        let items = vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
            vec![10.1],
            vec![10.2],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let s = silhouette_score(&items, &labels).unwrap();
        assert!(s > 0.9, "score = {s}");
    }

    #[test]
    fn wrong_assignment_scores_low() {
        let items = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
        // Mix the blobs across labels.
        let labels = vec![0, 1, 0, 1];
        let s = silhouette_score(&items, &labels).unwrap();
        assert!(s < 0.1, "score = {s}");
    }

    #[test]
    fn single_cluster_undefined() {
        let items = vec![vec![0.0], vec![1.0]];
        assert!(silhouette_score(&items, &[0, 0]).is_err());
    }

    #[test]
    fn singletons_contribute_zero() {
        let items = vec![vec![0.0], vec![5.0], vec![5.1]];
        let labels = vec![0, 1, 1];
        let s = silhouette_score(&items, &labels).unwrap();
        // Two good members plus one zero-contribution singleton.
        assert!(s > 0.5);
    }

    #[test]
    fn label_length_mismatch() {
        let items = vec![vec![0.0]];
        assert!(silhouette_score(&items, &[0, 1]).is_err());
    }
}
