//! K-means clustering — the "KNN" alternative the paper evaluated (§5.5.1).
//!
//! The paper rejects K-style clustering for deduplication because
//! "determining the number of clusters (K) beforehand is impractical due to
//! the varying number of regressions, and iterating over different K values
//! is computationally expensive". This implementation exists so the
//! ablation bench can demonstrate exactly that sensitivity.

use crate::features::{check_matrix, normalize_columns, squared_distance};
use crate::{ClusterError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A k-means clustering result.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per item.
    pub assignments: Vec<usize>,
    /// Final centroids (normalized feature space).
    pub centroids: Vec<Vec<f64>>,
    /// Iterations until convergence (or the budget).
    pub iterations: usize,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Runs Lloyd's k-means with k-means++-style seeding.
pub fn kmeans(
    items: &[Vec<f64>],
    k: usize,
    max_iterations: usize,
    seed: u64,
) -> Result<KMeansResult> {
    let dim = check_matrix(items)?;
    if k == 0 || k > items.len() {
        return Err(ClusterError::InvalidParameter("k must be in 1..=n_items"));
    }
    if max_iterations == 0 {
        return Err(ClusterError::InvalidParameter(
            "max_iterations must be positive",
        ));
    }
    let mut data = items.to_vec();
    normalize_columns(&mut data)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++ seeding: first centroid uniform, rest proportional to D².
    let mut centroids: Vec<Vec<f64>> = vec![data[rng.gen_range(0..data.len())].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|x| {
                centroids
                    .iter()
                    .map(|c| squared_distance(x, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(data[rng.gen_range(0..data.len())].clone());
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, &d) in d2.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(data[chosen].clone());
    }
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;
    for it in 0..max_iterations {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, x) in data.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d = squared_distance(x, c);
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (x, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(x) {
                *s += v;
            }
        }
        for (ci, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[ci] = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(x, &a)| squared_distance(x, &centroids[a]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        iterations,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Vec<f64>> {
        let mut items = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for j in 0..per {
                let jitter = ((ci * per + j) % 7) as f64 * 0.01;
                items.push(vec![cx + jitter, cy + jitter]);
            }
        }
        items
    }

    #[test]
    fn correct_k_separates_blobs() {
        let items = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10);
        let r = kmeans(&items, 2, 100, 1).unwrap();
        let first = r.assignments[0];
        assert!(r.assignments[..10].iter().all(|&a| a == first));
        assert!(r.assignments[10..].iter().all(|&a| a != first));
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn wrong_k_splits_or_merges() {
        // k=3 on two blobs: some blob must be split (more clusters used
        // than natural groups) — the sensitivity the paper complains about.
        let items = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10);
        let r = kmeans(&items, 3, 100, 1).unwrap();
        let mut used: Vec<usize> = r.assignments.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() >= 2);
        // And k=1 on two blobs yields huge inertia vs k=2.
        let r1 = kmeans(&items, 1, 100, 1).unwrap();
        let r2 = kmeans(&items, 2, 100, 1).unwrap();
        assert!(r1.inertia > 5.0 * r2.inertia.max(1e-9));
    }

    #[test]
    fn invalid_parameters() {
        let items = blobs(&[(0.0, 0.0)], 3);
        assert!(kmeans(&items, 0, 10, 1).is_err());
        assert!(kmeans(&items, 4, 10, 1).is_err());
        assert!(kmeans(&items, 1, 0, 1).is_err());
        assert!(kmeans(&[], 1, 10, 1).is_err());
    }

    #[test]
    fn deterministic_with_seed() {
        let items = blobs(&[(0.0, 0.0), (5.0, 5.0)], 8);
        let a = kmeans(&items, 2, 50, 9).unwrap();
        let b = kmeans(&items, 2, 50, 9).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn identical_points_converge() {
        let items = vec![vec![1.0, 1.0]; 5];
        let r = kmeans(&items, 2, 50, 3).unwrap();
        assert_eq!(r.assignments.len(), 5);
        assert!(r.inertia < 1e-9);
    }
}
