//! Self-Organizing Map clustering (§5.5.1).
//!
//! SOMDedup maps high-dimensional regression features onto an `L × L` grid
//! and merges items landing on the same cell. The paper's robust
//! hyperparameter rule is `L = ⌈n^(1/4)⌉`, which "consistently yields good
//! results across diverse workloads" — the reason SOM was chosen over KNN
//! and hierarchical clustering.

use crate::features::{check_matrix, distance, normalize_columns, squared_distance};
use crate::{ClusterError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's grid-size rule: `L = ⌈n^(1/4)⌉`, at least 1.
pub fn som_grid_side(n_items: usize) -> usize {
    ((n_items as f64).powf(0.25).ceil() as usize).max(1)
}

/// SOM training parameters.
#[derive(Debug, Clone, Copy)]
pub struct SomConfig {
    /// Grid side length; `None` applies the `⌈n^(1/4)⌉` rule.
    pub grid_side: Option<usize>,
    /// Training epochs over the data.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to ~0).
    pub initial_learning_rate: f64,
    /// RNG seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for SomConfig {
    fn default() -> Self {
        SomConfig {
            grid_side: None,
            epochs: 20,
            initial_learning_rate: 0.5,
            seed: 0x50D0,
        }
    }
}

/// A trained self-organizing map.
#[derive(Debug, Clone)]
pub struct SelfOrganizingMap {
    side: usize,
    dim: usize,
    /// Row-major `side × side` grid of codebook vectors.
    weights: Vec<Vec<f64>>,
}

impl SelfOrganizingMap {
    /// Trains a SOM on (normalized copies of) the items.
    ///
    /// # Examples
    ///
    /// ```
    /// use fbd_cluster::{SelfOrganizingMap, SomConfig};
    /// let items = vec![
    ///     vec![0.0, 0.0], vec![0.1, 0.0],   // Cluster A.
    ///     vec![10.0, 10.0], vec![10.1, 10.0], // Cluster B.
    /// ];
    /// let som = SelfOrganizingMap::train(&items, SomConfig::default()).unwrap();
    /// let cells = som.assign(&items).unwrap();
    /// assert_eq!(cells[0], cells[1]);
    /// assert_eq!(cells[2], cells[3]);
    /// assert_ne!(cells[0], cells[2]);
    /// ```
    pub fn train(items: &[Vec<f64>], config: SomConfig) -> Result<Self> {
        let dim = check_matrix(items)?;
        if config.epochs == 0 {
            return Err(ClusterError::InvalidParameter("epochs must be positive"));
        }
        let side = config
            .grid_side
            .unwrap_or_else(|| som_grid_side(items.len()));
        if side == 0 {
            return Err(ClusterError::InvalidParameter("grid side must be positive"));
        }
        let mut normalized = items.to_vec();
        normalize_columns(&mut normalized)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Initialize codebook vectors by sampling training items with jitter.
        let mut weights: Vec<Vec<f64>> = (0..side * side)
            .map(|_| {
                let base = &normalized[rng.gen_range(0..normalized.len())];
                base.iter()
                    .map(|v| v + rng.gen_range(-0.01..0.01))
                    .collect()
            })
            .collect();
        let total_steps = (config.epochs * normalized.len()).max(1);
        let initial_radius = (side as f64 / 2.0).max(1.0);
        let mut step = 0usize;
        let mut order: Vec<usize> = (0..normalized.len()).collect();
        for _ in 0..config.epochs {
            // Fisher-Yates shuffle for presentation order.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &idx in &order {
                let item = &normalized[idx];
                let progress = step as f64 / total_steps as f64;
                let lr = config.initial_learning_rate * (1.0 - progress);
                let radius = initial_radius * (1.0 - progress) + 0.5;
                let bmu = best_matching_unit(&weights, item);
                let (bx, by) = (bmu % side, bmu / side);
                // Update the BMU neighbourhood with a Gaussian kernel.
                let reach = radius.ceil() as isize;
                for dy in -reach..=reach {
                    for dx in -reach..=reach {
                        let x = bx as isize + dx;
                        let y = by as isize + dy;
                        if x < 0 || y < 0 || x >= side as isize || y >= side as isize {
                            continue;
                        }
                        let grid_dist2 = (dx * dx + dy * dy) as f64;
                        let influence = (-grid_dist2 / (2.0 * radius * radius)).exp();
                        let w = &mut weights[y as usize * side + x as usize];
                        for (wv, iv) in w.iter_mut().zip(item) {
                            *wv += lr * influence * (iv - *wv);
                        }
                    }
                }
                step += 1;
            }
        }
        Ok(SelfOrganizingMap { side, dim, weights })
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Maps each item to its best-matching grid cell index.
    ///
    /// Items must have the training dimensionality; they are normalized with
    /// their own column statistics, so pass the same batch that was trained
    /// on (SOMDedup trains and assigns per analysis window).
    pub fn assign(&self, items: &[Vec<f64>]) -> Result<Vec<usize>> {
        let dim = check_matrix(items)?;
        if dim != self.dim {
            return Err(ClusterError::DimensionMismatch {
                expected: self.dim,
                actual: dim,
            });
        }
        let mut normalized = items.to_vec();
        normalize_columns(&mut normalized)?;
        Ok(normalized
            .iter()
            .map(|item| best_matching_unit(&self.weights, item))
            .collect())
    }

    /// Quantization error: mean distance from each item to its BMU weight.
    pub fn quantization_error(&self, items: &[Vec<f64>]) -> Result<f64> {
        let mut normalized = items.to_vec();
        normalize_columns(&mut normalized)?;
        let total: f64 = normalized
            .iter()
            .map(|item| distance(item, &self.weights[best_matching_unit(&self.weights, item)]))
            .sum();
        Ok(total / items.len() as f64)
    }
}

fn best_matching_unit(weights: &[Vec<f64>], item: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, w) in weights.iter().enumerate() {
        let d = squared_distance(w, item);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Groups item indices by their assigned SOM cell — the SOMDedup clustering
/// step. Returns the clusters (each a list of item indices), ordered by
/// first occurrence.
pub fn cluster_by_cell(assignments: &[usize]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = Vec::new();
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for (i, &cell) in assignments.iter().enumerate() {
        let entry = groups.entry(cell).or_default();
        if entry.is_empty() {
            order.push(cell);
        }
        entry.push(i);
    }
    // Every cell in `order` was inserted into `groups` above; filter_map
    // keeps the walk panic-free all the same.
    order
        .into_iter()
        .filter_map(|cell| groups.remove(&cell))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Vec<f64>> {
        let mut items = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for j in 0..per {
                let jitter = (ci * per + j) as f64 * 0.001;
                items.push(vec![cx + jitter, cy - jitter]);
            }
        }
        items
    }

    #[test]
    fn grid_rule_matches_paper() {
        assert_eq!(som_grid_side(1), 1);
        assert_eq!(som_grid_side(16), 2);
        assert_eq!(som_grid_side(17), 3);
        assert_eq!(som_grid_side(10_000), 10);
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let items = blobs(&[(0.0, 0.0), (50.0, 50.0), (0.0, 50.0)], 10);
        let som = SelfOrganizingMap::train(&items, SomConfig::default()).unwrap();
        let cells = som.assign(&items).unwrap();
        // All items of one blob share a cell; different blobs differ.
        for blob in 0..3 {
            let first = cells[blob * 10];
            assert!(cells[blob * 10..(blob + 1) * 10]
                .iter()
                .all(|&c| c == first));
        }
        assert_ne!(cells[0], cells[10]);
        assert_ne!(cells[10], cells[20]);
    }

    #[test]
    fn cluster_by_cell_groups_indices() {
        let clusters = cluster_by_cell(&[5, 5, 3, 5, 3]);
        assert_eq!(clusters, vec![vec![0, 1, 3], vec![2, 4]]);
    }

    #[test]
    fn deterministic_given_seed() {
        let items = blobs(&[(0.0, 0.0), (10.0, 10.0)], 8);
        let cfg = SomConfig::default();
        let a = SelfOrganizingMap::train(&items, cfg)
            .unwrap()
            .assign(&items)
            .unwrap();
        let b = SelfOrganizingMap::train(&items, cfg)
            .unwrap()
            .assign(&items)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantization_error_small_for_tight_blobs() {
        let items = blobs(&[(0.0, 0.0), (100.0, 100.0)], 20);
        let som = SelfOrganizingMap::train(&items, SomConfig::default()).unwrap();
        assert!(som.quantization_error(&items).unwrap() < 0.2);
    }

    #[test]
    fn dimension_mismatch_on_assign() {
        let items = blobs(&[(0.0, 0.0)], 4);
        let som = SelfOrganizingMap::train(&items, SomConfig::default()).unwrap();
        let bad = vec![vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            som.assign(&bad),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_zero_epochs() {
        assert!(SelfOrganizingMap::train(&[], SomConfig::default()).is_err());
        let cfg = SomConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(SelfOrganizingMap::train(&[vec![1.0]], cfg).is_err());
    }

    #[test]
    fn single_item_trains() {
        let som = SelfOrganizingMap::train(&[vec![1.0, 2.0]], SomConfig::default()).unwrap();
        assert_eq!(som.side(), 1);
        assert_eq!(som.assign(&[vec![1.0, 2.0]]).unwrap(), vec![0]);
    }
}
