//! Agglomerative hierarchical clustering — the second alternative the paper
//! evaluated (§5.5.1).
//!
//! The paper found that the cut level "depends on the data distribution"
//! and that Silhouette-scored automatic cut selection "often does not
//! converge to an optimal value". Implemented here (average linkage, cut by
//! distance) for the ablation bench.

use crate::features::{check_matrix, distance, normalize_columns};
use crate::Result;

/// A merge step in the dendrogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// First merged cluster id.
    pub left: usize,
    /// Second merged cluster id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Id assigned to the merged cluster.
    pub merged_id: usize,
}

/// A complete agglomerative clustering (the dendrogram).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_items: usize,
    steps: Vec<MergeStep>,
}

impl Dendrogram {
    /// Merge steps in order of increasing distance.
    pub fn steps(&self) -> &[MergeStep] {
        &self.steps
    }

    /// Cuts the dendrogram at `max_distance`: merges with larger linkage are
    /// undone. Returns a cluster index per item, compacted to `0..k`.
    pub fn cut(&self, max_distance: f64) -> Vec<usize> {
        // Union-find over items, replaying merges under the cut.
        let mut parent: Vec<usize> = (0..self.n_items).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Cluster ids above n_items refer to earlier merge results; track a
        // representative item for every cluster id.
        let mut representative: Vec<usize> = (0..self.n_items).collect();
        for step in &self.steps {
            if step.distance > max_distance {
                break;
            }
            let a = representative[step.left];
            let b = representative[step.right];
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            parent[rb] = ra;
            representative.push(ra);
        }
        // Compact roots to 0..k in first-seen order.
        let mut labels = Vec::with_capacity(self.n_items);
        let mut seen: Vec<usize> = Vec::new();
        for i in 0..self.n_items {
            let root = find(&mut parent, i);
            let label = match seen.iter().position(|&r| r == root) {
                Some(p) => p,
                None => {
                    seen.push(root);
                    seen.len() - 1
                }
            };
            labels.push(label);
        }
        labels
    }

    /// Number of clusters at a given cut.
    pub fn cluster_count_at(&self, max_distance: f64) -> usize {
        self.cut(max_distance)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// Builds the dendrogram with average linkage over normalized features.
pub fn agglomerative(items: &[Vec<f64>]) -> Result<Dendrogram> {
    check_matrix(items)?;
    let mut data = items.to_vec();
    normalize_columns(&mut data)?;
    let n = data.len();
    // Active clusters: (cluster_id, member item indices).
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut next_id = n;
    let mut steps = Vec::with_capacity(n.saturating_sub(1));
    // Precompute pairwise item distances.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let d = distance(&data[i], &data[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let linkage = |a: &[usize], b: &[usize], dist: &[f64]| -> f64 {
        let mut sum = 0.0;
        for &i in a {
            for &j in b {
                sum += dist[i * n + j];
            }
        }
        sum / (a.len() * b.len()) as f64
    };
    while active.len() > 1 {
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                let d = linkage(&active[i].1, &active[j].1, &dist);
                if d < best_d {
                    best_d = d;
                    best = (i, j);
                }
            }
        }
        let (i, j) = best;
        let (right_id, right_members) = active.remove(j);
        let (left_id, mut left_members) = active.remove(i);
        left_members.extend(right_members);
        steps.push(MergeStep {
            left: left_id,
            right: right_id,
            distance: best_d,
            merged_id: next_id,
        });
        active.push((next_id, left_members));
        next_id += 1;
    }
    Ok(Dendrogram { n_items: n, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterError;

    fn blobs(centers: &[f64], per: usize) -> Vec<Vec<f64>> {
        let mut items = Vec::new();
        for &c in centers {
            for j in 0..per {
                items.push(vec![c + j as f64 * 0.01]);
            }
        }
        items
    }

    #[test]
    fn merge_distances_nondecreasing() {
        let items = blobs(&[0.0, 10.0, 20.0], 4);
        let d = agglomerative(&items).unwrap();
        let mut prev = 0.0;
        for s in d.steps() {
            assert!(s.distance >= prev - 1e-9);
            prev = s.distance;
        }
        assert_eq!(d.steps().len(), items.len() - 1);
    }

    #[test]
    fn cut_recovers_blobs() {
        let items = blobs(&[0.0, 10.0], 5);
        let d = agglomerative(&items).unwrap();
        // A mid-range cut yields exactly two clusters matching the blobs.
        let labels = d.cut(0.5);
        assert_eq!(labels.iter().copied().max().unwrap(), 1);
        assert!(labels[..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..].iter().all(|&l| l == labels[5]));
    }

    #[test]
    fn cut_zero_gives_singletons_cut_inf_gives_one() {
        let items = blobs(&[0.0, 5.0], 3);
        let d = agglomerative(&items).unwrap();
        assert_eq!(d.cluster_count_at(-1.0), 6);
        assert_eq!(d.cluster_count_at(f64::INFINITY), 1);
    }

    #[test]
    fn cut_level_sensitivity() {
        // The paper's complaint: nearby cut levels give very different
        // cluster counts on uneven data.
        let items = blobs(&[0.0, 1.0, 10.0], 3);
        let d = agglomerative(&items).unwrap();
        let counts: Vec<usize> = [0.05, 0.3, 1.0, 3.0]
            .iter()
            .map(|&c| d.cluster_count_at(c))
            .collect();
        // Strictly decreasing through at least three distinct values.
        let mut distinct = counts.clone();
        distinct.dedup();
        assert!(distinct.len() >= 3, "counts = {counts:?}");
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(agglomerative(&[]), Err(ClusterError::EmptyInput)));
    }

    #[test]
    fn single_item() {
        let d = agglomerative(&[vec![1.0]]).unwrap();
        assert!(d.steps().is_empty());
        assert_eq!(d.cut(1.0), vec![0]);
    }
}
