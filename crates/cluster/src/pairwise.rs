//! Incremental pairwise grouping — the engine under PairwiseDedup (§5.5.2).
//!
//! PairwiseDedup "compares each new regression with existing groups,
//! merging it into the most similar group if above a threshold or creating
//! a new group otherwise". This module provides that generic engine: the
//! caller supplies a similarity function between an item and a group member
//! (domain features like Pearson correlation or stack-trace overlap live in
//! the core crate).

/// A group of item handles produced by pairwise clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group<T> {
    /// Members in insertion order; the first member founded the group.
    pub members: Vec<T>,
}

impl<T> Group<T> {
    /// The member that founded the group.
    pub fn representative(&self) -> &T {
        &self.members[0]
    }
}

/// Incremental pairwise clusterer.
///
/// Similarity between an item and a group is the *maximum* similarity to
/// any group member (single-linkage), matching the paper's "compute the
/// coefficient between the source and each regression in the target group,
/// and use the maximal value".
#[derive(Debug, Clone)]
pub struct PairwiseClusterer<T> {
    groups: Vec<Group<T>>,
    threshold: f64,
}

impl<T> PairwiseClusterer<T> {
    /// Creates a clusterer that merges at or above `threshold`.
    pub fn new(threshold: f64) -> Self {
        PairwiseClusterer {
            groups: Vec::new(),
            threshold,
        }
    }

    /// Seeds the clusterer with pre-existing groups (the "past representative
    /// regressions already grouped by prior rounds", §5.5.2).
    pub fn with_existing_groups(threshold: f64, groups: Vec<Group<T>>) -> Self {
        PairwiseClusterer { groups, threshold }
    }

    /// Current groups.
    pub fn groups(&self) -> &[Group<T>] {
        &self.groups
    }

    /// Consumes the clusterer, returning its groups.
    pub fn into_groups(self) -> Vec<Group<T>> {
        self.groups
    }

    /// Adds an item: merged into the most similar group when the best
    /// (max-over-members) similarity reaches the threshold, else founds a
    /// new group. Returns the group index the item landed in and whether it
    /// was merged.
    pub fn add<F>(&mut self, item: T, similarity: F) -> (usize, bool)
    where
        F: Fn(&T, &T) -> f64,
    {
        let mut best_group = None;
        let mut best_score = f64::NEG_INFINITY;
        for (gi, group) in self.groups.iter().enumerate() {
            // Single linkage: max similarity over members.
            let score = group
                .members
                .iter()
                .map(|m| similarity(&item, m))
                .fold(f64::NEG_INFINITY, f64::max);
            if score > best_score {
                best_score = score;
                best_group = Some(gi);
            }
        }
        match best_group {
            Some(gi) if best_score >= self.threshold => {
                self.groups[gi].members.push(item);
                (gi, true)
            }
            _ => {
                self.groups.push(Group {
                    members: vec![item],
                });
                (self.groups.len() - 1, false)
            }
        }
    }

    /// Adds every item from an iterator; returns per-item `(group, merged)`.
    pub fn add_all<F, I>(&mut self, items: I, similarity: F) -> Vec<(usize, bool)>
    where
        I: IntoIterator<Item = T>,
        F: Fn(&T, &T) -> f64,
    {
        items
            .into_iter()
            .map(|item| self.add(item, &similarity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(a: &f64, b: &f64) -> f64 {
        1.0 - (a - b).abs()
    }

    #[test]
    fn close_items_merge() {
        let mut c = PairwiseClusterer::new(0.9);
        c.add(1.0, sim);
        let (g, merged) = c.add(1.05, sim);
        assert!(merged);
        assert_eq!(g, 0);
        assert_eq!(c.groups().len(), 1);
    }

    #[test]
    fn distant_items_found_new_groups() {
        let mut c = PairwiseClusterer::new(0.9);
        c.add(0.0, sim);
        let (g, merged) = c.add(5.0, sim);
        assert!(!merged);
        assert_eq!(g, 1);
        assert_eq!(c.groups().len(), 2);
    }

    #[test]
    fn single_linkage_chains() {
        // 0.0 and 0.08 merge; then 0.16 is within 0.08's reach even though
        // it is farther from the representative.
        let mut c = PairwiseClusterer::new(0.91);
        c.add(0.0, sim);
        c.add(0.08, sim);
        let (_, merged) = c.add(0.16, sim);
        assert!(merged);
        assert_eq!(c.groups().len(), 1);
        assert_eq!(c.groups()[0].members.len(), 3);
    }

    #[test]
    fn picks_the_most_similar_group() {
        let mut c = PairwiseClusterer::new(0.5);
        c.add(0.0, sim);
        c.add(10.0, sim);
        let (g, merged) = c.add(9.8, sim);
        assert!(merged);
        assert_eq!(g, 1);
    }

    #[test]
    fn seeding_with_existing_groups() {
        let existing = vec![Group { members: vec![3.0] }];
        let mut c = PairwiseClusterer::with_existing_groups(0.9, existing);
        let (g, merged) = c.add(3.02, sim);
        assert!(merged);
        assert_eq!(g, 0);
    }

    #[test]
    fn representative_is_first_member() {
        let mut c = PairwiseClusterer::new(0.9);
        c.add(1.0, sim);
        c.add(1.01, sim);
        assert_eq!(*c.groups()[0].representative(), 1.0);
    }

    #[test]
    fn add_all_reports_each_item() {
        let mut c = PairwiseClusterer::new(0.9);
        let results = c.add_all([0.0, 0.05, 7.0], sim);
        assert_eq!(results.len(), 3);
        assert!(!results[0].1);
        assert!(results[1].1);
        assert!(!results[2].1);
    }
}
