//! Clustering substrate for regression deduplication (§5.5).
//!
//! FBDetect deduplicates regressions in two passes: **SOMDedup** uses a
//! Self-Organizing Map for O(n) shallow clustering, and **PairwiseDedup**
//! applies accurate pairwise comparison to the survivors. The paper also
//! discusses — and rejects — K-means-style clustering and hierarchical
//! clustering with Silhouette-scored cut levels (§5.5.1 "Discussion of
//! alternatives"); both are implemented here so the ablation bench can
//! reproduce that comparison.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod hierarchical;
pub mod kmeans;
pub mod pairwise;
pub mod silhouette;
pub mod som;

pub use error::ClusterError;
pub use som::{som_grid_side, SelfOrganizingMap, SomConfig};

/// Convenience alias used by fallible routines in this crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
