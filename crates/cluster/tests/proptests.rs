//! Property-based tests for the clustering substrate.

use fbd_cluster::features::{distance, normalize_columns, squared_distance};
use fbd_cluster::hierarchical::agglomerative;
use fbd_cluster::kmeans::kmeans;
use fbd_cluster::pairwise::PairwiseClusterer;
use fbd_cluster::som::{cluster_by_cell, som_grid_side, SelfOrganizingMap, SomConfig};
use proptest::prelude::*;

fn matrix(rows: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e3f64..1e3, dim..=dim), 2..rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grid_rule_is_fourth_root(n in 1usize..100_000) {
        let side = som_grid_side(n);
        prop_assert!(side >= 1);
        prop_assert!((side as f64).powi(4) >= n as f64);
        prop_assert!(((side - 1) as f64).powi(4) < n as f64 || side == 1);
    }

    #[test]
    fn som_assignments_partition_items(items in matrix(30, 3)) {
        let som = SelfOrganizingMap::train(&items, SomConfig::default()).unwrap();
        let cells = som.assign(&items).unwrap();
        prop_assert_eq!(cells.len(), items.len());
        prop_assert!(cells.iter().all(|&c| c < som.side() * som.side()));
        let clusters = cluster_by_cell(&cells);
        let total: usize = clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(total, items.len());
    }

    #[test]
    fn kmeans_assignments_in_range(items in matrix(30, 2), k in 1usize..5) {
        let k = k.min(items.len());
        let r = kmeans(&items, k, 50, 1).unwrap();
        prop_assert!(r.assignments.iter().all(|&a| a < k));
        prop_assert!(r.inertia >= 0.0);
    }

    #[test]
    fn kmeans_inertia_decreases_with_k(items in matrix(40, 2)) {
        if items.len() >= 6 {
            let r1 = kmeans(&items, 1, 60, 2).unwrap();
            let r3 = kmeans(&items, 3, 60, 2).unwrap();
            prop_assert!(r3.inertia <= r1.inertia + 1e-6);
        }
    }

    #[test]
    fn dendrogram_cut_monotone(items in matrix(20, 2)) {
        let d = agglomerative(&items).unwrap();
        let mut prev = usize::MAX;
        for cut in [0.0, 0.5, 1.0, 2.0, 8.0, f64::INFINITY] {
            let count = d.cluster_count_at(cut);
            prop_assert!(count <= prev);
            prev = count;
        }
        prop_assert_eq!(d.cluster_count_at(f64::INFINITY), 1);
    }

    #[test]
    fn pairwise_groups_cover_all_items(vals in prop::collection::vec(-50.0f64..50.0, 1..40)) {
        let mut c = PairwiseClusterer::new(0.9);
        let n = vals.len();
        c.add_all(vals, |a: &f64, b: &f64| 1.0 - (a - b).abs());
        let total: usize = c.groups().iter().map(|g| g.members.len()).sum();
        prop_assert_eq!(total, n);
        prop_assert!(c.groups().iter().all(|g| !g.members.is_empty()));
    }

    #[test]
    fn normalization_bounds_distances(items in matrix(20, 3)) {
        let mut m = items.clone();
        normalize_columns(&mut m).unwrap();
        for row in &m {
            for v in row {
                // Z-scores over n ≤ 20 samples cannot exceed √(n−1).
                prop_assert!(v.abs() <= (m.len() as f64).sqrt() + 1e-9);
            }
        }
    }

    #[test]
    fn distance_axioms(a in prop::collection::vec(-1e3f64..1e3, 4), b in prop::collection::vec(-1e3f64..1e3, 4)) {
        prop_assert!((distance(&a, &b) - distance(&b, &a)).abs() < 1e-9);
        prop_assert_eq!(distance(&a, &a).to_bits(), 0.0f64.to_bits());
        prop_assert!((distance(&a, &b).powi(2) - squared_distance(&a, &b)).abs() < 1e-6);
    }
}
