//! Property-based tests for the fleet simulator.

use fbd_fleet::lln::{averaged_fleet_series, shift_signal_to_noise, Population};
use fbd_fleet::seasonality::SeasonalProfile;
use fbd_fleet::server::{Fleet, ServerGeneration};
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_fleet::transient::{TransientIssue, TransientKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spec_generation_is_deterministic(
        len in 2usize..200,
        base in -100.0f64..100.0,
        noise in 0.0f64..5.0,
        seed in 0u64..1_000,
    ) {
        let spec = SeriesSpec::flat(len, base, noise);
        prop_assert_eq!(spec.generate(seed).unwrap(), spec.generate(seed).unwrap());
    }

    #[test]
    fn step_mean_shift_matches_delta(
        delta in -10.0f64..10.0,
        at_frac in 0.2f64..0.8,
    ) {
        let len = 2_000;
        let at = (len as f64 * at_frac) as usize;
        let spec = SeriesSpec::flat(len, 5.0, 0.05).with_event(Event::Step { at, delta });
        let v = spec.generate(9).unwrap();
        let before: f64 = v[..at].iter().sum::<f64>() / at as f64;
        let after: f64 = v[at..].iter().sum::<f64>() / (len - at) as f64;
        prop_assert!((after - before - delta).abs() < 0.05);
    }

    #[test]
    fn transient_series_recovers(
        duration in 5usize..100,
        delta in -5.0f64..5.0,
    ) {
        let len = 600;
        let at = 200;
        let spec = SeriesSpec::flat(len, 1.0, 0.0).with_event(Event::Transient {
            at,
            duration,
            delta,
        });
        prop_assert_eq!(spec.mean_at(at + duration), 1.0);
        prop_assert_eq!(spec.mean_at(at.saturating_sub(1)), 1.0);
        prop_assert!((spec.mean_at(at) - (1.0 + delta)).abs() < 1e-12);
    }

    #[test]
    fn fleet_sizes_exact(n in 1usize..500, frac in 0.0f64..1.0) {
        let gens = vec![
            ServerGeneration { cpu_multiplier: 1.0, noise_std: 0.1, regression_multiplier: 1.0 },
            ServerGeneration { cpu_multiplier: 2.0, noise_std: 0.1, regression_multiplier: 1.0 },
        ];
        let f = Fleet::new(n, gens, &[frac, 1.0 - frac]).unwrap();
        prop_assert_eq!(f.len(), n);
        // Ids are dense 0..n.
        let ids: Vec<u32> = f.servers().iter().map(|s| s.id).collect();
        prop_assert_eq!(ids, (0..n as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn seasonal_factor_non_negative_and_periodic(
        amp in 0.0f64..0.5,
        phase in 0u64..86_400,
        t in 0u64..1_000_000,
    ) {
        let p = SeasonalProfile {
            diurnal_amplitude: amp,
            weekly_amplitude: 0.0,
            phase,
        };
        let f = p.factor(t);
        prop_assert!(f >= 0.0);
        prop_assert!((f - p.factor(t + 86_400)).abs() < 1e-9);
    }

    #[test]
    fn transient_factors_bounded(
        severity in 0.0f64..1.0,
        start in 0u64..1_000,
        duration in 1u64..1_000,
        t in 0u64..3_000,
    ) {
        for kind in TransientKind::ALL {
            let i = TransientIssue { kind, start, duration, severity };
            let c = i.cpu_factor(t);
            let th = i.throughput_factor(t);
            prop_assert!((0.0..=2.0).contains(&c), "cpu factor {c}");
            prop_assert!((0.0..=2.0).contains(&th));
            prop_assert!(i.error_rate_delta(t) >= 0.0);
            if !i.active_at(t) {
                prop_assert_eq!(c, 1.0);
                prop_assert_eq!(th, 1.0);
            }
        }
    }

    #[test]
    fn analytic_average_mean_is_exact(
        mean in 0.1f64..0.9,
        m in 1_000u64..1_000_000,
    ) {
        let pops = [Population { fraction: 1.0, mean, variance: 0.01, regression: 0.0 }];
        let series = averaged_fleet_series(&pops, m, 400, 200, 3, 0).unwrap();
        let got: f64 = series.iter().sum::<f64>() / series.len() as f64;
        prop_assert!((got - mean).abs() < 0.01, "mean {got} vs {mean}");
        // No regression injected: SNR near zero.
        let snr = shift_signal_to_noise(&series, 200).unwrap();
        prop_assert!(snr.abs() < 1.0);
    }
}
