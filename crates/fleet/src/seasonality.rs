//! Seasonal load profiles (diurnal and weekly cycles).
//!
//! Production traffic exhibits strong daily and weekly seasonality; the
//! seasonality detector (§5.2.3) must remove it before judging regressions.
//! The profile is a smooth multiplicative factor around 1.0.

/// A multiplicative seasonal profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalProfile {
    /// Amplitude of the diurnal cycle (e.g. 0.2 = ±20%).
    pub diurnal_amplitude: f64,
    /// Amplitude of the weekly cycle.
    pub weekly_amplitude: f64,
    /// Phase offset in seconds (shifts the daily peak).
    pub phase: u64,
}

/// Seconds per day.
pub const DAY: u64 = 86_400;
/// Seconds per week.
pub const WEEK: u64 = 7 * DAY;

impl SeasonalProfile {
    /// A flat profile (no seasonality).
    pub const FLAT: SeasonalProfile = SeasonalProfile {
        diurnal_amplitude: 0.0,
        weekly_amplitude: 0.0,
        phase: 0,
    };

    /// A typical interactive-service profile: ±15% daily, ±5% weekly.
    pub const TYPICAL: SeasonalProfile = SeasonalProfile {
        diurnal_amplitude: 0.15,
        weekly_amplitude: 0.05,
        phase: 0,
    };

    /// The multiplicative load factor at time `t` (seconds), ≥ 0.
    pub fn factor(&self, t: u64) -> f64 {
        let tp = t.wrapping_add(self.phase);
        let daily = (tp % DAY) as f64 / DAY as f64 * std::f64::consts::TAU;
        let weekly = (tp % WEEK) as f64 / WEEK as f64 * std::f64::consts::TAU;
        (1.0 + self.diurnal_amplitude * daily.sin() + self.weekly_amplitude * weekly.sin()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_one() {
        for t in [0, 1000, DAY, WEEK + 5] {
            assert_eq!(SeasonalProfile::FLAT.factor(t), 1.0);
        }
    }

    #[test]
    fn diurnal_cycle_repeats_daily() {
        let p = SeasonalProfile {
            diurnal_amplitude: 0.2,
            weekly_amplitude: 0.0,
            phase: 0,
        };
        for t in [123, 4567, 50_000] {
            assert!((p.factor(t) - p.factor(t + DAY)).abs() < 1e-9);
        }
    }

    #[test]
    fn amplitude_bounds_hold() {
        let p = SeasonalProfile::TYPICAL;
        for t in (0..WEEK).step_by(977) {
            let f = p.factor(t);
            assert!(f >= 1.0 - 0.15 - 0.05 - 1e-9);
            assert!(f <= 1.0 + 0.15 + 0.05 + 1e-9);
        }
    }

    #[test]
    fn mean_factor_is_about_one() {
        let p = SeasonalProfile::TYPICAL;
        let n = 7 * 24;
        let mean: f64 = (0..n).map(|i| p.factor(i * 3600)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn phase_shifts_the_peak() {
        let a = SeasonalProfile {
            diurnal_amplitude: 0.2,
            weekly_amplitude: 0.0,
            phase: 0,
        };
        let b = SeasonalProfile {
            diurnal_amplitude: 0.2,
            weekly_amplitude: 0.0,
            phase: DAY / 2,
        };
        // Half a day out of phase: peaks oppose.
        let t = DAY / 4;
        assert!((a.factor(t) - 1.2).abs() < 1e-6);
        assert!((b.factor(t) - 0.8).abs() < 1e-6);
    }
}
