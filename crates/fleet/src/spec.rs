//! Declarative single-series generation.
//!
//! Most of the evaluation benches need thousands of series with controlled
//! structure: a base level, Gaussian noise, optional seasonality, and a set
//! of *events* — step regressions, gradual ramps, transient dips/spikes.
//! [`SeriesSpec`] declares the structure; [`SeriesSpec::generate`] renders
//! it deterministically from a seed.

use crate::noise::NormalSampler;
use crate::seasonality::SeasonalProfile;
use crate::{FleetError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An event perturbing a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A permanent mean shift starting at `at` — a true regression.
    Step {
        /// Index of the first affected sample.
        at: usize,
        /// Mean shift.
        delta: f64,
    },
    /// A gradual drift: the mean moves linearly from 0 extra at `start` to
    /// `delta` extra at `end`, then stays — a long-term regression (§5.3).
    Ramp {
        /// First affected index.
        start: usize,
        /// Index where the full delta is reached.
        end: usize,
        /// Final mean shift.
        delta: f64,
    },
    /// A transient excursion that recovers on its own — the Figure 1(c)
    /// false positive.
    Transient {
        /// First affected index.
        at: usize,
        /// Number of affected samples.
        duration: usize,
        /// Mean shift while active (negative = dip).
        delta: f64,
    },
}

/// Declarative description of one synthetic series.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// Number of samples.
    pub len: usize,
    /// Seconds between samples (used for seasonality phase).
    pub interval: u64,
    /// Base mean.
    pub base: f64,
    /// Gaussian noise standard deviation.
    pub noise_std: f64,
    /// Optional multiplicative seasonality.
    pub seasonal: Option<SeasonalProfile>,
    /// Events, applied additively.
    pub events: Vec<Event>,
    /// Clamp range (e.g. `[0, 1]` for CPU fractions); `None` disables.
    pub clamp: Option<(f64, f64)>,
}

impl SeriesSpec {
    /// A flat noisy series with no events.
    pub fn flat(len: usize, base: f64, noise_std: f64) -> Self {
        SeriesSpec {
            len,
            interval: 60,
            base,
            noise_std,
            seasonal: None,
            events: Vec::new(),
            clamp: None,
        }
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, event: Event) -> Self {
        self.events.push(event);
        self
    }

    /// Adds seasonality (builder style).
    pub fn with_seasonality(mut self, profile: SeasonalProfile) -> Self {
        self.seasonal = Some(profile);
        self
    }

    /// Validates event indices against the length.
    fn validate(&self) -> Result<()> {
        if self.len == 0 {
            return Err(FleetError::InvalidConfig("series length is zero"));
        }
        for e in &self.events {
            let at = match *e {
                Event::Step { at, .. } => at,
                Event::Ramp { start, end, .. } => {
                    if end < start {
                        return Err(FleetError::InvalidConfig("ramp end before start"));
                    }
                    start
                }
                Event::Transient { at, .. } => at,
            };
            if at >= self.len {
                return Err(FleetError::EventOutOfRange { at, len: self.len });
            }
        }
        Ok(())
    }

    /// The deterministic mean (no noise) at sample `i` — useful for tests.
    pub fn mean_at(&self, i: usize) -> f64 {
        let mut mean = self.base;
        for e in &self.events {
            mean += match *e {
                Event::Step { at, delta } => {
                    if i >= at {
                        delta
                    } else {
                        0.0
                    }
                }
                Event::Ramp { start, end, delta } => {
                    if i < start {
                        0.0
                    } else if i >= end {
                        delta
                    } else {
                        delta * (i - start) as f64 / (end - start).max(1) as f64
                    }
                }
                Event::Transient {
                    at,
                    duration,
                    delta,
                } => {
                    if i >= at && i < at + duration {
                        delta
                    } else {
                        0.0
                    }
                }
            };
        }
        if let Some(p) = &self.seasonal {
            mean *= p.factor(i as u64 * self.interval);
        }
        mean
    }

    /// Renders the series with noise from the given seed.
    pub fn generate(&self, seed: u64) -> Result<Vec<f64>> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = NormalSampler::new();
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let mut v = sampler.sample(&mut rng, self.mean_at(i), self.noise_std);
            if let Some((lo, hi)) = self.clamp {
                v = v.clamp(lo, hi);
            }
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_statistics() {
        let data = SeriesSpec::flat(10_000, 5.0, 0.1).generate(1).unwrap();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!((mean - 5.0).abs() < 0.01);
    }

    #[test]
    fn step_changes_the_mean() {
        let spec = SeriesSpec::flat(2_000, 1.0, 0.05).with_event(Event::Step {
            at: 1_000,
            delta: 0.5,
        });
        let data = spec.generate(2).unwrap();
        let before: f64 = data[..1000].iter().sum::<f64>() / 1000.0;
        let after: f64 = data[1000..].iter().sum::<f64>() / 1000.0;
        assert!((after - before - 0.5).abs() < 0.02);
    }

    #[test]
    fn ramp_interpolates() {
        let spec = SeriesSpec::flat(100, 0.0, 0.0).with_event(Event::Ramp {
            start: 20,
            end: 40,
            delta: 1.0,
        });
        assert_eq!(spec.mean_at(19), 0.0);
        assert!((spec.mean_at(30) - 0.5).abs() < 1e-12);
        assert_eq!(spec.mean_at(40), 1.0);
        assert_eq!(spec.mean_at(99), 1.0);
    }

    #[test]
    fn transient_recovers() {
        let spec = SeriesSpec::flat(100, 1.0, 0.0).with_event(Event::Transient {
            at: 10,
            duration: 5,
            delta: -0.5,
        });
        assert_eq!(spec.mean_at(9), 1.0);
        assert_eq!(spec.mean_at(12), 0.5);
        assert_eq!(spec.mean_at(15), 1.0);
    }

    #[test]
    fn clamping_applies() {
        let mut spec = SeriesSpec::flat(1_000, 0.02, 0.2);
        spec.clamp = Some((0.0, 1.0));
        let data = spec.generate(3).unwrap();
        assert!(data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn determinism() {
        let spec = SeriesSpec::flat(100, 1.0, 0.3);
        assert_eq!(spec.generate(7).unwrap(), spec.generate(7).unwrap());
        assert_ne!(spec.generate(7).unwrap(), spec.generate(8).unwrap());
    }

    #[test]
    fn invalid_specs_rejected() {
        let spec = SeriesSpec::flat(0, 1.0, 0.1);
        assert!(spec.generate(1).is_err());
        let spec = SeriesSpec::flat(10, 1.0, 0.1).with_event(Event::Step { at: 10, delta: 1.0 });
        assert!(matches!(
            spec.generate(1),
            Err(FleetError::EventOutOfRange { .. })
        ));
        let spec = SeriesSpec::flat(10, 1.0, 0.1).with_event(Event::Ramp {
            start: 5,
            end: 3,
            delta: 1.0,
        });
        assert!(spec.generate(1).is_err());
    }

    #[test]
    fn seasonality_modulates_mean() {
        let spec = SeriesSpec {
            len: 24 * 7,
            interval: 3600,
            base: 100.0,
            noise_std: 0.0,
            seasonal: Some(SeasonalProfile::TYPICAL),
            events: vec![],
            clamp: None,
        };
        let data = spec.generate(1).unwrap();
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 110.0);
        assert!(min < 90.0);
    }
}
