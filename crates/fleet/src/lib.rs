//! Fleet and workload simulator for the FBDetect reproduction.
//!
//! FBDetect's evaluation is gated on Meta's production fleet; this crate is
//! the synthetic equivalent (see DESIGN.md). It generates the time series
//! and stack-trace samples the detection pipeline consumes, with the same
//! statistical structure the paper describes:
//!
//! - mixed server generations with distinct performance (§2, Figure 2);
//! - Gaussian measurement noise and diurnal/weekly seasonality (§5.2.3);
//! - transient issues — server failures, maintenance, load spikes, rolling
//!   updates, canary tests, traffic shifts (§1, Figure 1(c));
//! - injected step and gradual regressions with ground truth (§5.2, §5.3);
//! - cost shifts between subroutines (§5.4, Figure 1(b));
//! - full service simulation with stack-trace sampling and per-subroutine
//!   gCPU series (§4);
//! - the §2 feasibility simulations (Figures 1(a), 2, and 3).
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod fault;
pub mod kraken;
pub mod lln;
pub mod mesh;
pub mod noise;
pub mod scenarios;
pub mod seasonality;
pub mod server;
pub mod service;
pub mod spec;
pub mod tao;
pub mod transient;

pub use emit::{EmitSeries, WireEmitter};
pub use error::FleetError;
pub use fault::{DataFault, DataFaultKind, FaultSchedule};
pub use noise::NormalSampler;
pub use server::{Server, ServerGeneration};
pub use service::{ServiceSim, ServiceSimConfig};
pub use spec::{Event, SeriesSpec};

/// Convenience alias used by fallible routines in this crate.
pub type Result<T> = std::result::Result<T, FleetError>;
