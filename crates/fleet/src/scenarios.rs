//! Canned evaluation scenarios.
//!
//! Each function reproduces the data behind one of the paper's figures or
//! feeds one of the evaluation benches: the three challenge cases of
//! Figure 1, the spike-then-regression series of Figure 7, and labelled
//! series suites (with ground truth) for the Table 3 filtering funnel, the
//! Table 4 magnitude distribution, and the §6.5 EGADS comparison.

use crate::seasonality::SeasonalProfile;
use crate::spec::{Event, SeriesSpec};
use crate::Result;

/// Ground-truth label for a generated series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesLabel {
    /// No regression: pure noise (possibly with seasonality).
    Clean,
    /// A true step regression at the recorded index.
    TrueRegression,
    /// A true gradual regression.
    TrueGradualRegression,
    /// A transient issue that recovers — must be filtered (Figure 1(c)).
    Transient,
    /// Pure seasonality strong enough to look like a shift.
    SeasonalOnly,
}

/// A generated series with its ground truth.
#[derive(Debug, Clone)]
pub struct LabelledSeries {
    /// The samples.
    pub values: Vec<f64>,
    /// What the series truly contains.
    pub label: SeriesLabel,
    /// Index of the true change point, when applicable.
    pub change_at: Option<usize>,
    /// Magnitude of the true mean shift, when applicable.
    pub magnitude: f64,
}

/// Figure 1(a): a single-server CPU series with an invisible 0.005%
/// regression. μ=50%, σ²=0.01, clamped to `[0, 1]`, shift mid-series.
pub fn figure1a(len: usize, seed: u64) -> Result<LabelledSeries> {
    let mut spec = SeriesSpec::flat(len, 0.5, 0.1);
    spec.clamp = Some((0.0, 1.0));
    let spec = spec.with_event(Event::Step {
        at: len / 2,
        delta: 0.00005,
    });
    Ok(LabelledSeries {
        values: spec.generate(seed)?,
        label: SeriesLabel::TrueRegression,
        change_at: Some(len / 2),
        magnitude: 0.00005,
    })
}

/// Figure 1(b): a subroutine-level cost-shift false positive. Returns the
/// *destination* subroutine's gCPU series (a visible step) plus the source
/// subroutine's series (an equal drop) — the pair the cost-shift detector
/// inspects.
pub fn figure1b(len: usize, seed: u64) -> Result<(LabelledSeries, LabelledSeries)> {
    let at = len * 3 / 4;
    let gained =
        SeriesSpec::flat(len, 0.0002, 0.00004).with_event(Event::Step { at, delta: 0.0002 });
    let lost =
        SeriesSpec::flat(len, 0.0005, 0.00004).with_event(Event::Step { at, delta: -0.0002 });
    Ok((
        LabelledSeries {
            values: gained.generate(seed)?,
            label: SeriesLabel::Clean, // A cost shift is NOT a regression.
            change_at: Some(at),
            magnitude: 0.0002,
        },
        LabelledSeries {
            values: lost.generate(seed.wrapping_add(1))?,
            label: SeriesLabel::Clean,
            change_at: Some(at),
            magnitude: -0.0002,
        },
    ))
}

/// Figure 1(c): a throughput drop caused by a transient issue that later
/// recovers — a false positive the went-away detector must filter.
pub fn figure1c(len: usize, seed: u64) -> Result<LabelledSeries> {
    let drop_at = len * 7 / 10;
    let duration = len / 5;
    let spec = SeriesSpec::flat(len, 100.0, 3.0).with_event(Event::Transient {
        at: drop_at,
        duration,
        delta: -40.0,
    });
    Ok(LabelledSeries {
        values: spec.generate(seed)?,
        label: SeriesLabel::Transient,
        change_at: Some(drop_at),
        magnitude: -40.0,
    })
}

/// Figure 7: a historical spike (transient) followed by a true regression
/// at the end of the series. The went-away detector must not use the spike
/// window as a baseline and must report the final regression.
pub fn figure7(len: usize, seed: u64) -> Result<LabelledSeries> {
    let spike_at = len / 3;
    let regression_at = len * 4 / 5;
    let spec = SeriesSpec::flat(len, 10.0, 0.3)
        .with_event(Event::Transient {
            at: spike_at,
            duration: len / 20,
            delta: 4.0,
        })
        .with_event(Event::Step {
            at: regression_at,
            delta: 2.0,
        });
    Ok(LabelledSeries {
        values: spec.generate(seed)?,
        label: SeriesLabel::TrueRegression,
        change_at: Some(regression_at),
        magnitude: 2.0,
    })
}

/// Parameters for a labelled evaluation suite.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Series per category.
    pub clean: usize,
    /// True step regressions.
    pub regressions: usize,
    /// True gradual regressions.
    pub gradual: usize,
    /// Transient false positives.
    pub transients: usize,
    /// Seasonal-only series.
    pub seasonal: usize,
    /// Samples per series.
    pub len: usize,
    /// Index (fraction of len) where injected changes land.
    pub change_fraction: f64,
    /// Regression magnitudes are drawn log-uniformly from this range,
    /// relative to the base level (the paper observes 0.005%–15%, Table 4).
    pub relative_magnitude_range: (f64, f64),
    /// Base level of every series.
    pub base: f64,
    /// Noise standard deviation.
    pub noise_std: f64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            clean: 200,
            regressions: 50,
            gradual: 10,
            transients: 100,
            seasonal: 40,
            len: 600,
            change_fraction: 0.75,
            relative_magnitude_range: (0.00005, 0.15),
            base: 1.0,
            noise_std: 0.02,
        }
    }
}

/// Generates a labelled suite of series for end-to-end evaluation.
pub fn labelled_suite(config: &SuiteConfig, seed: u64) -> Result<Vec<LabelledSeries>> {
    let mut out = Vec::new();
    let change_at = (config.len as f64 * config.change_fraction) as usize;
    let (lo, hi) = config.relative_magnitude_range;
    let mut k = 0u64;
    let mut next_seed = || {
        k += 1;
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k)
    };
    // Log-uniform magnitude from a hash of the index.
    let magnitude = |i: usize, n: usize| -> f64 {
        let t = if n <= 1 {
            0.5
        } else {
            i as f64 / (n - 1) as f64
        };
        (lo.ln() + t * (hi.ln() - lo.ln())).exp()
    };
    for _ in 0..config.clean {
        let spec = SeriesSpec::flat(config.len, config.base, config.noise_std);
        out.push(LabelledSeries {
            values: spec.generate(next_seed())?,
            label: SeriesLabel::Clean,
            change_at: None,
            magnitude: 0.0,
        });
    }
    for i in 0..config.regressions {
        let delta = config.base * magnitude(i, config.regressions);
        let spec =
            SeriesSpec::flat(config.len, config.base, config.noise_std).with_event(Event::Step {
                at: change_at,
                delta,
            });
        out.push(LabelledSeries {
            values: spec.generate(next_seed())?,
            label: SeriesLabel::TrueRegression,
            change_at: Some(change_at),
            magnitude: delta,
        });
    }
    for i in 0..config.gradual {
        let delta = config.base * magnitude(i, config.gradual);
        let spec =
            SeriesSpec::flat(config.len, config.base, config.noise_std).with_event(Event::Ramp {
                start: config.len / 4,
                end: config.len * 3 / 4,
                delta,
            });
        out.push(LabelledSeries {
            values: spec.generate(next_seed())?,
            label: SeriesLabel::TrueGradualRegression,
            change_at: Some(config.len / 4),
            magnitude: delta,
        });
    }
    for i in 0..config.transients {
        // Transients are *large* relative to true regressions — that is what
        // makes them deceptive (Figure 1(c)).
        let delta = config.base * (0.1 + 0.4 * (i % 5) as f64 / 5.0);
        let sign = if i % 2 == 0 { -1.0 } else { 1.0 };
        let duration = config.len / 20 + (i % 7) * config.len / 50;
        let spec = SeriesSpec::flat(config.len, config.base, config.noise_std).with_event(
            Event::Transient {
                at: change_at.min(config.len - duration - 1),
                duration,
                delta: sign * delta,
            },
        );
        out.push(LabelledSeries {
            values: spec.generate(next_seed())?,
            label: SeriesLabel::Transient,
            change_at: Some(change_at.min(config.len - duration - 1)),
            magnitude: sign * delta,
        });
    }
    for i in 0..config.seasonal {
        let profile = SeasonalProfile {
            diurnal_amplitude: 0.05 + 0.1 * (i % 4) as f64 / 4.0,
            weekly_amplitude: 0.02,
            phase: (i as u64) * 3_600,
        };
        let mut spec =
            SeriesSpec::flat(config.len, config.base, config.noise_std).with_seasonality(profile);
        // Hourly cadence so the daily cycle spans 24 samples.
        spec.interval = 3_600;
        out.push(LabelledSeries {
            values: spec.generate(next_seed())?,
            label: SeriesLabel::SeasonalOnly,
            change_at: None,
            magnitude: 0.0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1a_shift_is_invisible_in_noise() {
        let s = figure1a(1_000, 1).unwrap();
        assert_eq!(s.label, SeriesLabel::TrueRegression);
        // The 0.005% shift is three orders below the noise std.
        let std = {
            let m = s.values.iter().sum::<f64>() / s.values.len() as f64;
            (s.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / s.values.len() as f64).sqrt()
        };
        assert!(std > 100.0 * s.magnitude);
    }

    #[test]
    fn figure1b_total_is_conserved() {
        let (gained, lost) = figure1b(800, 2).unwrap();
        let sum_before: f64 = gained.values[..600]
            .iter()
            .zip(&lost.values[..600])
            .map(|(a, b)| a + b)
            .sum::<f64>()
            / 600.0;
        let sum_after: f64 = gained.values[600..]
            .iter()
            .zip(&lost.values[600..])
            .map(|(a, b)| a + b)
            .sum::<f64>()
            / 200.0;
        assert!((sum_before - sum_after).abs() < 0.0001);
    }

    #[test]
    fn figure1c_recovers() {
        let s = figure1c(1_000, 3).unwrap();
        let start: f64 = s.values[..400].iter().sum::<f64>() / 400.0;
        let end: f64 = s.values[920..].iter().sum::<f64>() / 80.0;
        assert!((start - end).abs() < 2.0);
        // But the dip is deep while active.
        let mid: f64 = s.values[720..880].iter().sum::<f64>() / 160.0;
        assert!(start - mid > 20.0);
    }

    #[test]
    fn figure7_has_spike_and_final_step() {
        let s = figure7(1_000, 4).unwrap();
        let baseline: f64 = s.values[..300].iter().sum::<f64>() / 300.0;
        let end: f64 = s.values[850..].iter().sum::<f64>() / 150.0;
        assert!(end - baseline > 1.5);
        let spike_max = s.values[330..340].iter().cloned().fold(f64::MIN, f64::max);
        assert!(spike_max > baseline + 3.0);
    }

    #[test]
    fn suite_counts_and_labels() {
        let cfg = SuiteConfig {
            clean: 5,
            regressions: 4,
            gradual: 3,
            transients: 2,
            seasonal: 1,
            ..Default::default()
        };
        let suite = labelled_suite(&cfg, 9).unwrap();
        assert_eq!(suite.len(), 15);
        let count = |l: SeriesLabel| suite.iter().filter(|s| s.label == l).count();
        assert_eq!(count(SeriesLabel::Clean), 5);
        assert_eq!(count(SeriesLabel::TrueRegression), 4);
        assert_eq!(count(SeriesLabel::TrueGradualRegression), 3);
        assert_eq!(count(SeriesLabel::Transient), 2);
        assert_eq!(count(SeriesLabel::SeasonalOnly), 1);
    }

    #[test]
    fn suite_magnitudes_span_configured_range() {
        let cfg = SuiteConfig {
            regressions: 20,
            ..Default::default()
        };
        let suite = labelled_suite(&cfg, 11).unwrap();
        let mags: Vec<f64> = suite
            .iter()
            .filter(|s| s.label == SeriesLabel::TrueRegression)
            .map(|s| s.magnitude)
            .collect();
        let min = mags.iter().cloned().fold(f64::MAX, f64::min);
        let max = mags.iter().cloned().fold(f64::MIN, f64::max);
        assert!((min - 0.00005).abs() / 0.00005 < 0.01);
        assert!((max - 0.15).abs() / 0.15 < 0.01);
    }

    #[test]
    fn suite_is_deterministic() {
        let cfg = SuiteConfig {
            clean: 3,
            regressions: 2,
            gradual: 1,
            transients: 1,
            seasonal: 1,
            ..Default::default()
        };
        let a = labelled_suite(&cfg, 5).unwrap();
        let b = labelled_suite(&cfg, 5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values, y.values);
        }
    }
}
