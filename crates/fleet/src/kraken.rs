//! Kraken-style per-server maximum-throughput benchmarking — the substrate
//! behind Capacity Triage (§3).
//!
//! "CT relies on Kraken to benchmark a service's per-server maximum
//! throughput. If this maximum throughput unexpectedly drops, it is a
//! regression on the supply side. If the total peak requests to a service's
//! all servers unexpectedly increase, it is a regression on the demand
//! side." Kraken live-tests production servers by shifting traffic onto
//! them until saturation; this module simulates that probing: each probe
//! returns the server's saturation throughput, which is inversely
//! proportional to per-request CPU cost (generation multiplier × code-cost
//! factor), minus measurement noise.

use crate::noise::NormalSampler;
use crate::seasonality::SeasonalProfile;
use crate::server::Fleet;
use crate::{FleetError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Kraken-style load-test harness over a fleet.
#[derive(Debug)]
pub struct KrakenBench {
    fleet: Fleet,
    /// Saturation throughput of a reference-generation server at code-cost
    /// factor 1.0 (requests/second).
    pub base_max_throughput: f64,
    /// Relative measurement noise per probe (Kraken probes are noisy).
    pub probe_noise: f64,
    rng: StdRng,
    normal: NormalSampler,
}

impl KrakenBench {
    /// Creates a harness.
    pub fn new(fleet: Fleet, base_max_throughput: f64, seed: u64) -> Result<Self> {
        if base_max_throughput <= 0.0 {
            return Err(FleetError::InvalidConfig(
                "base max throughput must be positive",
            ));
        }
        Ok(KrakenBench {
            fleet,
            base_max_throughput,
            probe_noise: 0.02,
            rng: StdRng::seed_from_u64(seed),
            normal: NormalSampler::new(),
        })
    }

    /// Probes one server's saturation throughput.
    ///
    /// `code_cost_factor` scales per-request CPU cost (1.0 = the deployed
    /// baseline; a 10% CPU regression is 1.1 and cuts max throughput ~9%).
    pub fn probe_server(&mut self, server_index: usize, code_cost_factor: f64) -> Result<f64> {
        if code_cost_factor <= 0.0 {
            return Err(FleetError::InvalidConfig("cost factor must be positive"));
        }
        let server = *self
            .fleet
            .servers()
            .get(server_index)
            .ok_or(FleetError::InvalidConfig("server index out of range"))?;
        let generation = self.fleet.generation_of(&server);
        let ideal = self.base_max_throughput / (generation.cpu_multiplier * code_cost_factor);
        let noisy = self
            .normal
            .sample(&mut self.rng, ideal, ideal * self.probe_noise);
        Ok(noisy.max(0.0))
    }

    /// Probes a rotating subset of servers and returns the fleet's mean
    /// per-server max throughput — one point of the CT-supply series.
    pub fn probe_fleet(&mut self, probes: usize, code_cost_factor: f64) -> Result<f64> {
        if probes == 0 {
            return Err(FleetError::InvalidConfig("probes must be positive"));
        }
        let n = self.fleet.len();
        let mut sum = 0.0;
        for i in 0..probes {
            let idx = (i * 2_654_435_761) % n;
            sum += self.probe_server(idx, code_cost_factor)?;
        }
        Ok(sum / probes as f64)
    }

    /// Produces the CT-supply time series: `points` probes of the fleet at
    /// `interval`-second cadence, with the code cost following
    /// `cost_factor_at(t)` (inject a supply regression by raising it).
    pub fn supply_series<F>(
        &mut self,
        start: u64,
        interval: u64,
        points: usize,
        probes_per_point: usize,
        cost_factor_at: F,
    ) -> Result<Vec<(u64, f64)>>
    where
        F: Fn(u64) -> f64,
    {
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let t = start + i as u64 * interval;
            out.push((t, self.probe_fleet(probes_per_point, cost_factor_at(t))?));
        }
        Ok(out)
    }
}

/// Produces the CT-demand time series: total peak requests across the
/// service's servers, with diurnal seasonality and an injectable demand
/// shift (an unexpected increase is a demand-side regression).
pub fn demand_series<F>(
    base_peak: f64,
    seasonal: SeasonalProfile,
    start: u64,
    interval: u64,
    points: usize,
    seed: u64,
    demand_factor_at: F,
) -> Result<Vec<(u64, f64)>>
where
    F: Fn(u64) -> f64,
{
    if base_peak <= 0.0 {
        return Err(FleetError::InvalidConfig("base peak must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let t = start + i as u64 * interval;
        let mean = base_peak * seasonal.factor(t) * demand_factor_at(t);
        out.push((t, normal.sample(&mut rng, mean, base_peak * 0.01).max(0.0)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerGeneration;

    fn fleet() -> Fleet {
        Fleet::homogeneous(
            16,
            ServerGeneration {
                cpu_multiplier: 1.0,
                noise_std: 0.05,
                regression_multiplier: 1.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn probe_scales_inversely_with_cost() {
        let mut k = KrakenBench::new(fleet(), 1_000.0, 1).unwrap();
        let base = k.probe_fleet(64, 1.0).unwrap();
        let regressed = k.probe_fleet(64, 1.25).unwrap();
        let ratio = regressed / base;
        assert!((ratio - 0.8).abs() < 0.03, "ratio = {ratio}");
    }

    #[test]
    fn old_hardware_is_slower() {
        let mixed = Fleet::two_generations(100).unwrap();
        let mut k = KrakenBench::new(mixed, 1_000.0, 2).unwrap();
        let slow = k.probe_server(99, 1.0).unwrap(); // Generation 1, 1.2x cost.
        let fast = k.probe_server(0, 1.0).unwrap(); // Generation 0, 0.8x cost.
        assert!(fast > slow);
    }

    #[test]
    fn supply_series_shows_injected_regression() {
        let mut k = KrakenBench::new(fleet(), 1_000.0, 3).unwrap();
        let series = k
            .supply_series(
                0,
                3_600,
                48,
                32,
                |t| if t >= 36 * 3_600 { 1.12 } else { 1.0 },
            )
            .unwrap();
        let before: f64 = series[..36].iter().map(|p| p.1).sum::<f64>() / 36.0;
        let after: f64 = series[36..].iter().map(|p| p.1).sum::<f64>() / 12.0;
        // A 12% cost increase cuts supply by ~10.7%.
        let drop = (before - after) / before;
        assert!((drop - 0.107).abs() < 0.02, "drop = {drop}");
    }

    #[test]
    fn demand_series_shows_shift_over_seasonality() {
        let series = demand_series(10_000.0, SeasonalProfile::TYPICAL, 0, 3_600, 96, 4, |t| {
            if t >= 72 * 3_600 {
                1.3
            } else {
                1.0
            }
        })
        .unwrap();
        let before: f64 = series[..72].iter().map(|p| p.1).sum::<f64>() / 72.0;
        let after: f64 = series[72..].iter().map(|p| p.1).sum::<f64>() / 24.0;
        assert!(after / before > 1.15, "ratio = {}", after / before);
    }

    #[test]
    fn invalid_parameters() {
        assert!(KrakenBench::new(fleet(), 0.0, 1).is_err());
        let mut k = KrakenBench::new(fleet(), 100.0, 1).unwrap();
        assert!(k.probe_server(999, 1.0).is_err());
        assert!(k.probe_server(0, 0.0).is_err());
        assert!(k.probe_fleet(0, 1.0).is_err());
        assert!(demand_series(0.0, SeasonalProfile::FLAT, 0, 1, 1, 1, |_| 1.0).is_err());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut k = KrakenBench::new(fleet(), 1_000.0, 9).unwrap();
            k.supply_series(0, 60, 10, 8, |_| 1.0).unwrap()
        };
        assert_eq!(run(), run());
    }
}
