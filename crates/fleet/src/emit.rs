//! Wire-batch emission: the fleet's servers deliver samples through the
//! ingest front door instead of appending directly to the store.
//!
//! The emitter models what a real collection tier adds on top of the raw
//! sample streams: *delivery time*. Samples are sliced into fixed-length
//! collection rounds, and each round becomes one encoded wire batch whose
//! `collected_at` is the round's end. Data faults keep their
//! [`DataFault::apply`](crate::fault::DataFault::apply) semantics with one
//! refinement — [`DataFaultKind::LateWindow`] is modeled where it actually
//! happens, at delivery: affected samples keep their recorded timestamps
//! but are *delivered* `duration` seconds late, landing in much later
//! rounds. At the wire boundary they are genuinely stale (far older than
//! their batch's `collected_at`), which is what lets the ingest validator
//! classify and shed them; the direct-append path's timestamp-shift model
//! leaves the same scan windows empty, so scan outcomes agree.
//!
//! Like every fleet module, emission is seed-deterministic: the same RNG
//! and inputs produce the same batch bytes forever.

use crate::fault::{DataFault, DataFaultKind};
use crate::{FleetError, Result};
use bytes::Bytes;
use fbd_ingest::wire::{encode_batch, SampleBatch};
use fbd_tsdb::SeriesId;
use rand::Rng;
use std::collections::BTreeMap;

/// One series' contribution to an emission: its clean sample stream and
/// the data fault (if any) corrupting its collector.
#[derive(Debug, Clone)]
pub struct EmitSeries {
    /// The series identity carried on the wire.
    pub id: SeriesId,
    /// Clean `(timestamp, value)` samples, in timestamp order.
    pub samples: Vec<(u64, f64)>,
    /// Collector fault to inject, if any.
    pub fault: Option<DataFault>,
}

impl EmitSeries {
    /// A healthy series.
    pub fn clean(id: SeriesId, samples: Vec<(u64, f64)>) -> Self {
        EmitSeries {
            id,
            samples,
            fault: None,
        }
    }

    /// A series whose collector exhibits `fault`.
    pub fn faulted(id: SeriesId, samples: Vec<(u64, f64)>, fault: DataFault) -> Self {
        EmitSeries {
            id,
            samples,
            fault: Some(fault),
        }
    }
}

/// Slices per-series sample streams into collection rounds of encoded
/// wire batches for one tenant.
#[derive(Debug, Clone)]
pub struct WireEmitter {
    tenant: String,
    round_len: u64,
}

impl WireEmitter {
    /// An emitter collecting every `round_len` simulated seconds. The
    /// ingest validator's late-point slack must be at least `round_len`,
    /// or punctual end-of-round samples would be misread as late.
    pub fn new(tenant: impl Into<String>, round_len: u64) -> Self {
        WireEmitter {
            tenant: tenant.into(),
            round_len: round_len.max(1),
        }
    }

    /// Builds the ordered sequence of round batches for `fleet`.
    ///
    /// Faults are applied per series in fleet order, consuming `rng`
    /// exactly as the direct-append path's `DataFault::apply` does — so a
    /// store built from these batches matches one built by applying the
    /// same faults to the same streams with the same RNG, modulo the
    /// late-delivered points the ingest boundary sheds.
    pub fn rounds<R: Rng>(&self, rng: &mut R, fleet: &[EmitSeries]) -> Result<Vec<Bytes>> {
        // round index -> (series index, timestamp, value), insertion
        // order preserved so per-series sample order survives.
        let mut buckets: BTreeMap<u64, Vec<(usize, u64, f64)>> = BTreeMap::new();
        for (series_idx, series) in fleet.iter().enumerate() {
            let delivered: Vec<(u64, u64, f64)> = match &series.fault {
                // LateWindow consumes no randomness in `apply` either:
                // the two paths stay RNG-aligned.
                Some(fault) if fault.kind == DataFaultKind::LateWindow => series
                    .samples
                    .iter()
                    .map(|&(t, v)| {
                        let delivery = if fault.active_at(t) {
                            t.saturating_add(fault.duration)
                        } else {
                            t
                        };
                        (delivery, t, v)
                    })
                    .collect(),
                Some(fault) => fault
                    .apply(rng, &series.samples)
                    .into_iter()
                    .map(|(t, v)| (t, t, v))
                    .collect(),
                None => series.samples.iter().map(|&(t, v)| (t, t, v)).collect(),
            };
            for (delivery, t, v) in delivered {
                buckets
                    .entry(delivery / self.round_len)
                    .or_default()
                    .push((series_idx, t, v));
            }
        }
        let mut out = Vec::with_capacity(buckets.len());
        for (round, points) in buckets {
            let collected_at = round
                .saturating_add(1)
                .saturating_mul(self.round_len);
            let mut batch = SampleBatch::new(self.tenant.clone(), collected_at);
            for (series_idx, t, v) in points {
                let id = fleet
                    .get(series_idx)
                    .map(|s| &s.id)
                    .ok_or(FleetError::InvalidConfig("emit series index out of range"))?;
                batch
                    .push(id, t, v)
                    .map_err(|e| FleetError::Wire(e.to_string()))?;
            }
            out.push(encode_batch(&batch).map_err(|e| FleetError::Wire(e.to_string()))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_ingest::wire::decode_batch;
    use fbd_tsdb::MetricKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sid(n: u32) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, format!("s{n}"))
    }

    fn stream(n: u64) -> Vec<(u64, f64)> {
        (0..n).map(|t| (t * 10, 1.0 + t as f64 * 0.001)).collect()
    }

    #[test]
    fn clean_series_slice_into_rounds() {
        let emitter = WireEmitter::new("t", 100);
        let mut rng = StdRng::seed_from_u64(1);
        let rounds = emitter
            .rounds(&mut rng, &[EmitSeries::clean(sid(0), stream(30))])
            .unwrap();
        // 30 samples at cadence 10 span [0, 290]: rounds 0..=2.
        assert_eq!(rounds.len(), 3);
        let first = decode_batch(&rounds[0]).unwrap();
        assert_eq!(first.collected_at, 100);
        assert_eq!(first.point_count(), 10);
        let total: usize = rounds
            .iter()
            .map(|r| decode_batch(r).unwrap().point_count())
            .sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn late_window_defers_delivery_not_timestamps() {
        let emitter = WireEmitter::new("t", 100);
        let mut rng = StdRng::seed_from_u64(1);
        let fault = DataFault {
            kind: DataFaultKind::LateWindow,
            start: 100,
            duration: 1_000,
            intensity: 1.0,
        };
        let rounds = emitter
            .rounds(&mut rng, &[EmitSeries::faulted(sid(0), stream(30), fault)])
            .unwrap();
        let batches: Vec<SampleBatch> =
            rounds.iter().map(|r| decode_batch(r).unwrap()).collect();
        // Samples at t >= 100 are delivered 1000s late but keep their
        // recorded timestamps.
        let late: Vec<&SampleBatch> = batches
            .iter()
            .filter(|b| b.points().iter().any(|p| p.timestamp >= 100))
            .collect();
        assert!(!late.is_empty());
        for b in &late {
            for p in b.points() {
                assert!(
                    b.collected_at >= p.timestamp + 1_000,
                    "late point ts {} delivered at {}",
                    p.timestamp,
                    b.collected_at
                );
            }
        }
        // Punctual samples (t < 100) stay in the first round.
        let first = &batches[0];
        assert_eq!(first.collected_at, 100);
        assert!(first.points().iter().all(|p| p.timestamp < 100));
    }

    #[test]
    fn emission_is_seed_deterministic() {
        let emitter = WireEmitter::new("t", 100);
        let fault = DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 0,
            duration: 10_000,
            intensity: 0.5,
        };
        let fleet = vec![
            EmitSeries::faulted(sid(0), stream(50), fault),
            EmitSeries::clean(sid(1), stream(50)),
        ];
        let a = emitter
            .rounds(&mut StdRng::seed_from_u64(7), &fleet)
            .unwrap();
        let b = emitter
            .rounds(&mut StdRng::seed_from_u64(7), &fleet)
            .unwrap();
        assert_eq!(a, b);
        let c = emitter
            .rounds(&mut StdRng::seed_from_u64(8), &fleet)
            .unwrap();
        assert_ne!(a, c, "different seed drops different samples");
    }

    #[test]
    fn multiple_series_share_round_batches() {
        let emitter = WireEmitter::new("t", 1_000);
        let mut rng = StdRng::seed_from_u64(1);
        let fleet = vec![
            EmitSeries::clean(sid(0), stream(10)),
            EmitSeries::clean(sid(1), stream(10)),
        ];
        let rounds = emitter.rounds(&mut rng, &fleet).unwrap();
        assert_eq!(rounds.len(), 1);
        let batch = decode_batch(&rounds[0]).unwrap();
        assert_eq!(batch.series().len(), 2);
        assert_eq!(batch.point_count(), 20);
    }
}
