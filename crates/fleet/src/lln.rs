//! The §2 feasibility simulations (Figures 1(a), 2, and 3).
//!
//! Figure 2 averages the CPU series of `m` servers (up to 50,000,000) drawn
//! from two hardware generations with a mid-series regression; Figure 3
//! repeats the experiment at the subroutine level, where the per-subroutine
//! variance is `k` times smaller, so 1000× fewer servers suffice.
//!
//! Materializing 50M series is pointless: the average of `m` IID normal
//! series is itself normal with variance `σ²/m` (Appendix A.1), so for
//! large `m` we sample the average directly. A brute-force path exists for
//! small `m` and the tests confirm the two agree.

use crate::noise::NormalSampler;
use crate::{FleetError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One server population in the §2 simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Population {
    /// Fraction of the fleet in this population.
    pub fraction: f64,
    /// Mean CPU before the change (e.g. 0.40 = 40%).
    pub mean: f64,
    /// Per-sample variance (the paper uses 0.01 and 0.02).
    pub variance: f64,
    /// Mean shift after the change point (e.g. 0.00003 = 0.003%).
    pub regression: f64,
}

/// The paper's Figure 2 populations: half the fleet at μ=40% σ²=0.01 with a
/// 0.003% regression, half at μ=60% σ²=0.02 with a 0.007% regression.
pub const FIGURE2_POPULATIONS: [Population; 2] = [
    Population {
        fraction: 0.5,
        mean: 0.40,
        variance: 0.01,
        regression: 0.00003,
    },
    Population {
        fraction: 0.5,
        mean: 0.60,
        variance: 0.02,
        regression: 0.00007,
    },
];

/// Simulates the average of `m` per-server series of length `len`, with the
/// regression applied from `change_at` onward.
///
/// For `m ≤ brute_force_limit` every server series is materialized and
/// averaged (values clamped to `[0, 1]` as in the paper); beyond that the
/// average is sampled directly from its exact distribution.
pub fn averaged_fleet_series(
    populations: &[Population],
    m: u64,
    len: usize,
    change_at: usize,
    seed: u64,
    brute_force_limit: u64,
) -> Result<Vec<f64>> {
    if populations.is_empty() {
        return Err(FleetError::InvalidConfig("no populations"));
    }
    let frac_sum: f64 = populations.iter().map(|p| p.fraction).sum();
    if (frac_sum - 1.0).abs() > 1e-6 {
        return Err(FleetError::InvalidConfig(
            "population fractions must sum to 1",
        ));
    }
    if m == 0 || len == 0 {
        return Err(FleetError::InvalidConfig("m and len must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = NormalSampler::new();
    if m <= brute_force_limit {
        // Materialize every server.
        let mut acc = vec![0.0f64; len];
        let mut produced = 0u64;
        for (pi, p) in populations.iter().enumerate() {
            let count = if pi + 1 == populations.len() {
                m - produced
            } else {
                (p.fraction * m as f64).round() as u64
            };
            for _ in 0..count {
                for (i, slot) in acc.iter_mut().enumerate() {
                    let mean = if i >= change_at {
                        p.mean + p.regression
                    } else {
                        p.mean
                    };
                    *slot += sampler.sample_clamped(&mut rng, mean, p.variance.sqrt(), 0.0, 1.0);
                }
            }
            produced += count;
        }
        Ok(acc.into_iter().map(|v| v / m as f64).collect())
    } else {
        // Sample the average directly: mean = Σ f_p μ_p, var = Σ f_p σ_p² / m.
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let mut mean = 0.0;
            let mut var = 0.0;
            for p in populations {
                let mu = if i >= change_at {
                    p.mean + p.regression
                } else {
                    p.mean
                };
                mean += p.fraction * mu;
                var += p.fraction * p.variance;
            }
            let avg_std = (var / m as f64).sqrt();
            out.push(sampler.sample(&mut rng, mean, avg_std));
        }
        Ok(out)
    }
}

/// The subroutine-level variant (Figure 3): the process-level CPU is
/// distributed across `k` subroutines, so the *monitored subroutine's* mean
/// and variance are `1/k` of the process values (Expression 2) — but the
/// regression lands wholly in that one subroutine. The fleet-average
/// variance becomes `σ²/(k·m)` while the shift magnitude is unchanged,
/// which is why `k = 1000` subroutines let Figure 3 match Figure 2 with
/// 1000× fewer servers.
pub fn averaged_subroutine_series(
    populations: &[Population],
    k: usize,
    m: u64,
    len: usize,
    change_at: usize,
    seed: u64,
    brute_force_limit: u64,
) -> Result<Vec<f64>> {
    if k == 0 {
        return Err(FleetError::InvalidConfig("k must be positive"));
    }
    let scaled: Vec<Population> = populations
        .iter()
        .map(|p| Population {
            fraction: p.fraction,
            mean: p.mean / k as f64,
            variance: p.variance / k as f64,
            // The regression is concentrated in this subroutine.
            regression: p.regression,
        })
        .collect();
    averaged_fleet_series(&scaled, m, len, change_at, seed, brute_force_limit)
}

/// Measures the detectability of the mid-series shift in an averaged
/// series: `(mean_after − mean_before) / std_of_residuals`. Values above ~2
/// mean the regression is visually and statistically evident.
pub fn shift_signal_to_noise(series: &[f64], change_at: usize) -> Result<f64> {
    if change_at == 0 || change_at >= series.len() {
        return Err(FleetError::InvalidConfig("change point out of range"));
    }
    let (before, after) = series.split_at(change_at);
    let mb = before.iter().sum::<f64>() / before.len() as f64;
    let ma = after.iter().sum::<f64>() / after.len() as f64;
    let ss: f64 = before.iter().map(|v| (v - mb) * (v - mb)).sum::<f64>()
        + after.iter().map(|v| (v - ma) * (v - ma)).sum::<f64>();
    let pooled_std = (ss / series.len() as f64).sqrt();
    if pooled_std <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok((ma - mb) / pooled_std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_and_brute_force_agree() {
        let m = 200;
        let len = 400;
        let brute =
            averaged_fleet_series(&FIGURE2_POPULATIONS, m, len, len / 2, 1, u64::MAX).unwrap();
        let analytic = averaged_fleet_series(&FIGURE2_POPULATIONS, m, len, len / 2, 2, 0).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Same population mean (±noise) and comparable spread.
        assert!((mean(&brute) - mean(&analytic)).abs() < 0.005);
        let spread = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let ratio = spread(&brute) / spread(&analytic);
        assert!((0.5..2.0).contains(&ratio), "spread ratio = {ratio}");
    }

    #[test]
    fn noise_shrinks_with_m() {
        // Figure 2's visual: larger fleets average away the noise.
        let len = 500;
        let snr_small = shift_signal_to_noise(
            &averaged_fleet_series(&FIGURE2_POPULATIONS, 500_000, len, len / 2, 3, 0).unwrap(),
            len / 2,
        )
        .unwrap();
        let snr_large = shift_signal_to_noise(
            &averaged_fleet_series(&FIGURE2_POPULATIONS, 50_000_000, len, len / 2, 3, 0).unwrap(),
            len / 2,
        )
        .unwrap();
        assert!(snr_large > snr_small * 3.0, "{snr_small} vs {snr_large}");
        // At 50M servers the 0.005% shift is clearly detectable.
        assert!(snr_large > 2.0, "snr_large = {snr_large}");
    }

    #[test]
    fn subroutine_level_needs_1000x_fewer_servers() {
        // Figure 3: k=1000 subroutines, m=50,000 servers matches the
        // detectability of m=50,000,000 at the process level.
        let len = 500;
        let process = shift_signal_to_noise(
            &averaged_fleet_series(&FIGURE2_POPULATIONS, 50_000_000, len, len / 2, 5, 0).unwrap(),
            len / 2,
        )
        .unwrap();
        let subroutine = shift_signal_to_noise(
            &averaged_subroutine_series(&FIGURE2_POPULATIONS, 1_000, 50_000, len, len / 2, 5, 0)
                .unwrap(),
            len / 2,
        )
        .unwrap();
        // Equal within statistical noise (identical in expectation).
        let ratio = subroutine / process;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
        assert!(subroutine > 2.0);
    }

    #[test]
    fn single_server_regression_invisible() {
        // Figure 1(a): one server, 0.005% shift, σ²=0.01 — SNR ≈ 0.
        let pops = [Population {
            fraction: 1.0,
            mean: 0.5,
            variance: 0.01,
            regression: 0.00005,
        }];
        let series = averaged_fleet_series(&pops, 1, 1_000, 500, 7, u64::MAX).unwrap();
        let snr = shift_signal_to_noise(&series, 500).unwrap();
        assert!(snr.abs() < 0.2, "snr = {snr}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(averaged_fleet_series(&[], 10, 10, 5, 1, 0).is_err());
        assert!(averaged_fleet_series(&FIGURE2_POPULATIONS, 0, 10, 5, 1, 0).is_err());
        assert!(averaged_subroutine_series(&FIGURE2_POPULATIONS, 0, 10, 10, 5, 1, 0).is_err());
        assert!(shift_signal_to_noise(&[1.0, 2.0], 0).is_err());
        assert!(shift_signal_to_noise(&[1.0, 2.0], 2).is_err());
    }
}
