//! Error type for the fleet simulator.

use std::fmt;

/// Errors produced by the fleet simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// An event referenced a point outside the series.
    EventOutOfRange {
        /// Index the event referenced.
        at: usize,
        /// Length of the series.
        len: usize,
    },
    /// A propagation from an underlying substrate.
    Profiler(String),
    /// A propagation from the time-series store.
    Tsdb(String),
    /// A propagation from the ingest wire codec.
    Wire(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            FleetError::EventOutOfRange { at, len } => {
                write!(f, "event at index {at} outside series of length {len}")
            }
            FleetError::Profiler(e) => write!(f, "profiler error: {e}"),
            FleetError::Tsdb(e) => write!(f, "tsdb error: {e}"),
            FleetError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<fbd_profiler::ProfilerError> for FleetError {
    fn from(e: fbd_profiler::ProfilerError) -> Self {
        FleetError::Profiler(e.to_string())
    }
}

impl From<fbd_tsdb::TsdbError> for FleetError {
    fn from(e: fbd_tsdb::TsdbError) -> Self {
        FleetError::Tsdb(e.to_string())
    }
}
