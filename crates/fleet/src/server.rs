//! Server fleet model with mixed hardware generations (§2).
//!
//! "A hyperscale environment … exhibits high variance due to factors like
//! mixed server generations." A generation carries a performance multiplier
//! (the same code costs different CPU on different hardware) and its own
//! noise level; the §2 simulation explicitly uses two generations with
//! different means, variances, and even different regression magnitudes.

use crate::{FleetError, Result};

/// A hardware generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerGeneration {
    /// CPU-cost multiplier relative to the reference generation (older
    /// hardware > 1.0).
    pub cpu_multiplier: f64,
    /// Standard deviation of per-sample measurement noise.
    pub noise_std: f64,
    /// Regression-magnitude multiplier: "a code change may perform
    /// differently across server generations" (§2).
    pub regression_multiplier: f64,
}

/// One server: an id and its generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Server {
    /// Fleet-unique id.
    pub id: u32,
    /// Index into the fleet's generation table.
    pub generation: usize,
}

/// A fleet of servers split across generations.
#[derive(Debug, Clone)]
pub struct Fleet {
    generations: Vec<ServerGeneration>,
    servers: Vec<Server>,
}

impl Fleet {
    /// Builds a fleet of `n` servers spread across `generations` by the
    /// given fractions (must sum to ~1).
    pub fn new(n: usize, generations: Vec<ServerGeneration>, fractions: &[f64]) -> Result<Self> {
        if generations.is_empty() {
            return Err(FleetError::InvalidConfig("no server generations"));
        }
        if generations.len() != fractions.len() {
            return Err(FleetError::InvalidConfig(
                "fractions must match generations",
            ));
        }
        let total: f64 = fractions.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(FleetError::InvalidConfig("fractions must sum to 1"));
        }
        if n == 0 {
            return Err(FleetError::InvalidConfig("fleet must have servers"));
        }
        let mut servers = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for (g, &f) in fractions.iter().enumerate() {
            let count = if g + 1 == fractions.len() {
                n - assigned
            } else {
                (f * n as f64).round() as usize
            };
            for _ in 0..count.min(n - assigned) {
                servers.push(Server {
                    id: servers.len() as u32,
                    generation: g,
                });
                assigned += 1;
            }
        }
        // Rounding may leave a straggler; assign to the last generation.
        while servers.len() < n {
            servers.push(Server {
                id: servers.len() as u32,
                generation: generations.len() - 1,
            });
        }
        Ok(Fleet {
            generations,
            servers,
        })
    }

    /// A homogeneous single-generation fleet.
    pub fn homogeneous(n: usize, generation: ServerGeneration) -> Result<Self> {
        Fleet::new(n, vec![generation], &[1.0])
    }

    /// The paper's §2 two-generation setup: half the fleet at one
    /// performance level, half at another, with distinct noise.
    pub fn two_generations(n: usize) -> Result<Self> {
        Fleet::new(
            n,
            vec![
                ServerGeneration {
                    cpu_multiplier: 0.8,
                    noise_std: 0.1,
                    regression_multiplier: 0.6,
                },
                ServerGeneration {
                    cpu_multiplier: 1.2,
                    noise_std: 0.141_4,
                    regression_multiplier: 1.4,
                },
            ],
            &[0.5, 0.5],
        )
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true for built fleets).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The generation record for a server.
    pub fn generation_of(&self, server: &Server) -> &ServerGeneration {
        &self.generations[server.generation]
    }

    /// The generation table.
    pub fn generations(&self) -> &[ServerGeneration] {
        &self.generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(mult: f64) -> ServerGeneration {
        ServerGeneration {
            cpu_multiplier: mult,
            noise_std: 0.1,
            regression_multiplier: 1.0,
        }
    }

    #[test]
    fn split_matches_fractions() {
        let f = Fleet::new(100, vec![gen(1.0), gen(2.0)], &[0.3, 0.7]).unwrap();
        let g0 = f.servers().iter().filter(|s| s.generation == 0).count();
        assert_eq!(g0, 30);
        assert_eq!(f.len(), 100);
    }

    #[test]
    fn uneven_division_fills_fleet() {
        let f = Fleet::new(7, vec![gen(1.0), gen(2.0), gen(3.0)], &[0.33, 0.33, 0.34]).unwrap();
        assert_eq!(f.len(), 7);
        let ids: Vec<u32> = f.servers().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Fleet::new(10, vec![], &[]).is_err());
        assert!(Fleet::new(10, vec![gen(1.0)], &[0.5]).is_err());
        assert!(Fleet::new(0, vec![gen(1.0)], &[1.0]).is_err());
        assert!(Fleet::new(10, vec![gen(1.0), gen(2.0)], &[1.0]).is_err());
    }

    #[test]
    fn two_generation_preset() {
        let f = Fleet::two_generations(1000).unwrap();
        assert_eq!(f.len(), 1000);
        let g0 = f.servers().iter().filter(|s| s.generation == 0).count();
        assert_eq!(g0, 500);
        // The two generations differ in performance and regression impact.
        assert!(f.generations()[0].cpu_multiplier < f.generations()[1].cpu_multiplier);
        assert!(
            f.generations()[0].regression_multiplier < f.generations()[1].regression_multiplier
        );
    }

    #[test]
    fn generation_lookup() {
        let f = Fleet::new(4, vec![gen(1.0), gen(2.0)], &[0.5, 0.5]).unwrap();
        let s = f.servers()[3];
        assert_eq!(f.generation_of(&s).cpu_multiplier, 2.0);
    }
}
