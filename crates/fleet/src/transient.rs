//! Transient production issues (§1, Figure 1(c)).
//!
//! "Server failures, maintenance operations, load spikes, software rolling
//! updates, canary tests, and traffic shifts … can last from seconds to
//! hours." These events perturb metrics without any code change; the
//! went-away detector (§5.2.2) must filter them out. Each issue has a time
//! window and an additive/multiplicative effect per metric dimension.

use rand::Rng;

/// The kinds of transient issues the paper enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransientKind {
    /// A server crashes and restarts: throughput dips, error rate spikes.
    ServerFailure,
    /// Planned maintenance drains part of the fleet.
    Maintenance,
    /// A sudden surge of requests.
    LoadSpike,
    /// A rolling software update cycles through servers.
    RollingUpdate,
    /// A canary test shifts a slice of traffic to new code.
    CanaryTest,
    /// Traffic is shifted between regions/clusters.
    TrafficShift,
}

impl TransientKind {
    /// All kinds, for sweep tests.
    pub const ALL: [TransientKind; 6] = [
        TransientKind::ServerFailure,
        TransientKind::Maintenance,
        TransientKind::LoadSpike,
        TransientKind::RollingUpdate,
        TransientKind::CanaryTest,
        TransientKind::TrafficShift,
    ];
}

/// A scheduled transient issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientIssue {
    /// What happened.
    pub kind: TransientKind,
    /// Start (simulator seconds).
    pub start: u64,
    /// Duration in seconds ("seconds to hours").
    pub duration: u64,
    /// Severity in `[0, 1]`; scales the effect.
    pub severity: f64,
}

impl TransientIssue {
    /// Whether the issue is active at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t < self.start + self.duration
    }

    /// Multiplicative effect on CPU-like metrics at time `t` (1.0 = none).
    pub fn cpu_factor(&self, t: u64) -> f64 {
        if !self.active_at(self.clamp_time(t)) {
            return 1.0;
        }
        match self.kind {
            // Fewer servers doing the same work -> higher CPU on survivors.
            TransientKind::ServerFailure => 1.0 + 0.3 * self.severity,
            TransientKind::Maintenance => 1.0 + 0.15 * self.severity,
            TransientKind::LoadSpike => 1.0 + 0.5 * self.severity,
            // Restarting servers run colder caches -> transient extra CPU.
            TransientKind::RollingUpdate => 1.0 + 0.2 * self.severity,
            TransientKind::CanaryTest => 1.0 + 0.1 * self.severity,
            TransientKind::TrafficShift => 1.0 - 0.2 * self.severity,
        }
    }

    /// Multiplicative effect on throughput at time `t` (1.0 = none).
    pub fn throughput_factor(&self, t: u64) -> f64 {
        if !self.active_at(self.clamp_time(t)) {
            return 1.0;
        }
        match self.kind {
            TransientKind::ServerFailure => 1.0 - 0.4 * self.severity,
            TransientKind::Maintenance => 1.0 - 0.2 * self.severity,
            TransientKind::LoadSpike => 1.0 + 0.6 * self.severity,
            TransientKind::RollingUpdate => 1.0 - 0.1 * self.severity,
            TransientKind::CanaryTest => 1.0,
            TransientKind::TrafficShift => 1.0 - 0.5 * self.severity,
        }
    }

    /// Additive effect on error rate at time `t`.
    pub fn error_rate_delta(&self, t: u64) -> f64 {
        if !self.active_at(self.clamp_time(t)) {
            return 0.0;
        }
        match self.kind {
            TransientKind::ServerFailure => 0.02 * self.severity,
            TransientKind::RollingUpdate => 0.005 * self.severity,
            TransientKind::CanaryTest => 0.002 * self.severity,
            _ => 0.0,
        }
    }

    fn clamp_time(&self, t: u64) -> u64 {
        t
    }
}

/// A schedule of transient issues affecting one service.
#[derive(Debug, Clone, Default)]
pub struct TransientSchedule {
    issues: Vec<TransientIssue>,
}

impl TransientSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an issue.
    pub fn add(&mut self, issue: TransientIssue) {
        self.issues.push(issue);
    }

    /// All scheduled issues.
    pub fn issues(&self) -> &[TransientIssue] {
        &self.issues
    }

    /// Combined CPU factor at time `t` (product over active issues).
    pub fn cpu_factor(&self, t: u64) -> f64 {
        self.issues.iter().map(|i| i.cpu_factor(t)).product()
    }

    /// Combined throughput factor at time `t`.
    pub fn throughput_factor(&self, t: u64) -> f64 {
        self.issues.iter().map(|i| i.throughput_factor(t)).product()
    }

    /// Combined error-rate delta at time `t`.
    pub fn error_rate_delta(&self, t: u64) -> f64 {
        self.issues.iter().map(|i| i.error_rate_delta(t)).sum()
    }

    /// Populates the schedule with random issues over `[start, end)` at the
    /// given mean rate (issues per day). Durations span seconds to hours.
    pub fn generate_random<R: Rng>(
        &mut self,
        rng: &mut R,
        start: u64,
        end: u64,
        issues_per_day: f64,
    ) {
        let days = (end.saturating_sub(start)) as f64 / 86_400.0;
        let count = (issues_per_day * days).round() as usize;
        for _ in 0..count {
            let kind = TransientKind::ALL[rng.gen_range(0..TransientKind::ALL.len())];
            let issue_start = rng.gen_range(start..end.max(start + 1));
            // Log-uniform duration from 30 seconds to 4 hours.
            let log_lo = (30.0f64).ln();
            let log_hi = (4.0 * 3600.0f64).ln();
            let duration = rng.gen_range(log_lo..log_hi).exp() as u64;
            self.add(TransientIssue {
                kind,
                start: issue_start,
                duration: duration.max(1),
                severity: rng.gen_range(0.3..1.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn active_window_is_half_open() {
        let i = TransientIssue {
            kind: TransientKind::LoadSpike,
            start: 100,
            duration: 50,
            severity: 1.0,
        };
        assert!(!i.active_at(99));
        assert!(i.active_at(100));
        assert!(i.active_at(149));
        assert!(!i.active_at(150));
    }

    #[test]
    fn effects_revert_after_issue() {
        let i = TransientIssue {
            kind: TransientKind::ServerFailure,
            start: 0,
            duration: 10,
            severity: 1.0,
        };
        assert!(i.cpu_factor(5) > 1.0);
        assert!(i.throughput_factor(5) < 1.0);
        assert!(i.error_rate_delta(5) > 0.0);
        assert_eq!(i.cpu_factor(20), 1.0);
        assert_eq!(i.throughput_factor(20), 1.0);
        assert_eq!(i.error_rate_delta(20), 0.0);
    }

    #[test]
    fn severity_scales_effects() {
        let mk = |s| TransientIssue {
            kind: TransientKind::LoadSpike,
            start: 0,
            duration: 10,
            severity: s,
        };
        assert!(mk(1.0).cpu_factor(0) > mk(0.3).cpu_factor(0));
    }

    #[test]
    fn schedule_combines_overlapping_issues() {
        let mut s = TransientSchedule::new();
        s.add(TransientIssue {
            kind: TransientKind::LoadSpike,
            start: 0,
            duration: 10,
            severity: 1.0,
        });
        s.add(TransientIssue {
            kind: TransientKind::ServerFailure,
            start: 5,
            duration: 10,
            severity: 1.0,
        });
        assert!((s.cpu_factor(7) - 1.5 * 1.3).abs() < 1e-12);
        assert_eq!(s.cpu_factor(100), 1.0);
    }

    #[test]
    fn random_schedule_respects_rate_and_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = TransientSchedule::new();
        s.generate_random(&mut rng, 0, 10 * 86_400, 3.0);
        assert_eq!(s.issues().len(), 30);
        for i in s.issues() {
            assert!(i.start < 10 * 86_400);
            assert!(i.duration >= 1 && i.duration <= 4 * 3600 + 1);
            assert!((0.3..1.0).contains(&i.severity));
        }
    }

    #[test]
    fn traffic_shift_lowers_cpu() {
        let i = TransientIssue {
            kind: TransientKind::TrafficShift,
            start: 0,
            duration: 10,
            severity: 1.0,
        };
        assert!(i.cpu_factor(0) < 1.0);
        assert!(i.throughput_factor(0) < 1.0);
    }
}
