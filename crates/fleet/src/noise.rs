//! Gaussian noise generation (Box-Muller over the `rand` crate).

use rand::Rng;

/// Samples standard-normal deviates with the Box-Muller transform, caching
/// the spare deviate between calls.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal deviate.
    pub fn standard<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box-Muller: two uniforms -> two independent normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a normal deviate with the given mean and standard deviation.
    pub fn sample<R: Rng>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard(rng)
    }

    /// Draws a normal deviate clamped to `[lo, hi]` — the paper's §2
    /// simulation caps CPU-usage samples within `[0, 1]`.
    pub fn sample_clamped<R: Rng>(
        &mut self,
        rng: &mut R,
        mean: f64,
        std_dev: f64,
        lo: f64,
        hi: f64,
    ) -> f64 {
        self.sample(rng, mean, std_dev).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = NormalSampler::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.standard(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn scaled_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sampler.sample(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn clamping_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = NormalSampler::new();
        for _ in 0..10_000 {
            let v = sampler.sample_clamped(&mut rng, 0.5, 0.5, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut s = NormalSampler::new();
            (0..10).map(|_| s.standard(&mut rng)).collect::<Vec<f64>>()
        };
        assert_eq!(draw(), draw());
    }
}
