//! Service meshes: groups of services that work together (§3, AdServing).
//!
//! "AdServing is a group of ultra-large services that work together to
//! serve ads." A regression rarely stays inside one service: a slow
//! downstream dependency inflates its callers' latency, and a single root
//! cause then surfaces as anomalies across several services' metrics — the
//! situation PairwiseDedup exists to merge (§5.5.2). [`ServiceMesh`] steps
//! several [`ServiceSim`]s in lockstep and propagates each callee's
//! code-cost factor into its callers' latency.

use crate::service::ServiceSim;
use crate::{FleetError, Result};
use fbd_tsdb::TsdbStore;

/// A directed call edge: `caller` invokes `callee` (indices into the mesh).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallEdge {
    /// Index of the calling service.
    pub caller: usize,
    /// Index of the called service.
    pub callee: usize,
    /// How strongly the callee's slowdown shows in the caller's latency
    /// (1.0 = the caller waits on the callee for its whole request).
    pub coupling: f64,
}

/// A group of services stepped together with cross-service propagation.
pub struct ServiceMesh {
    services: Vec<ServiceSim>,
    edges: Vec<CallEdge>,
}

impl ServiceMesh {
    /// Creates a mesh over the given services.
    ///
    /// All services must share one tick interval (they advance in
    /// lockstep).
    pub fn new(services: Vec<ServiceSim>) -> Result<Self> {
        if services.is_empty() {
            return Err(FleetError::InvalidConfig("mesh needs services"));
        }
        let tick = services[0].tick_interval();
        if services.iter().any(|s| s.tick_interval() != tick) {
            return Err(FleetError::InvalidConfig(
                "mesh services must share a tick interval",
            ));
        }
        Ok(ServiceMesh {
            services,
            edges: Vec::new(),
        })
    }

    /// Adds a call edge.
    pub fn add_edge(&mut self, edge: CallEdge) -> Result<()> {
        if edge.caller >= self.services.len() || edge.callee >= self.services.len() {
            return Err(FleetError::InvalidConfig("edge index out of range"));
        }
        if edge.caller == edge.callee {
            return Err(FleetError::InvalidConfig("self edges are not allowed"));
        }
        if edge.coupling < 0.0 || !edge.coupling.is_finite() {
            return Err(FleetError::InvalidConfig("coupling must be non-negative"));
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Access to a member service (for injections and endpoints).
    pub fn service_mut(&mut self, index: usize) -> Result<&mut ServiceSim> {
        self.services
            .get_mut(index)
            .ok_or(FleetError::InvalidConfig("service index out of range"))
    }

    /// The member services.
    pub fn services(&self) -> &[ServiceSim] {
        &self.services
    }

    /// The downstream latency factor a caller observes: 1 plus the coupled
    /// excess cost of every callee (`coupling × (weight_factor − 1)`).
    fn downstream_factor(&self, caller: usize) -> f64 {
        let mut factor = 1.0;
        for e in self.edges.iter().filter(|e| e.caller == caller) {
            let excess = (self.services[e.callee].weight_factor() - 1.0).max(0.0);
            factor += e.coupling * excess;
        }
        factor
    }

    /// Runs all services in lockstep over `[start, end)`.
    pub fn run(&mut self, store: &TsdbStore, start: u64, end: u64) -> Result<()> {
        if end <= start {
            return Err(FleetError::InvalidConfig("end must exceed start"));
        }
        let tick = self.services[0].tick_interval();
        let mut now = start;
        while now < end {
            // Downstream factors are computed against the callees' state at
            // the top of the tick (they mutate during step).
            let factors: Vec<f64> = (0..self.services.len())
                .map(|i| self.downstream_factor(i))
                .collect();
            for (service, factor) in self.services.iter_mut().zip(&factors) {
                service.step(store, now, *factor)?;
            }
            now += tick;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Fleet;
    use crate::service::ServiceSimConfig;
    use fbd_profiler::callgraph::uniform_service_graph;
    use fbd_tsdb::{MetricKind, SeriesId};

    fn sim(name: &str, seed: u64) -> ServiceSim {
        let graph = uniform_service_graph(10, 1.0).unwrap();
        let fleet = Fleet::two_generations(10).unwrap();
        ServiceSim::new(
            ServiceSimConfig {
                name: name.to_string(),
                samples_per_tick: 500,
                seed,
                ..Default::default()
            },
            graph,
            fleet,
        )
        .unwrap()
    }

    #[test]
    fn downstream_regression_raises_caller_latency() {
        let frontend = sim("frontend", 1);
        let backend = sim("backend", 2);
        // Regress the backend by 20% total weight at mid-run.
        let victim = frontend.graph().frame_by_name("subroutine_00000").unwrap();
        let mut mesh = ServiceMesh::new(vec![frontend, backend]).unwrap();
        mesh.add_edge(CallEdge {
            caller: 0,
            callee: 1,
            coupling: 1.0,
        })
        .unwrap();
        mesh.service_mut(1)
            .unwrap()
            .inject_regression(victim, 30_000, 0.2, 7)
            .unwrap();
        let store = TsdbStore::new();
        mesh.run(&store, 0, 60_000).unwrap();
        // The FRONTEND's latency rises ~20% after the BACKEND regression.
        let lat = store
            .get(&SeriesId::new("frontend", MetricKind::Latency, ""))
            .unwrap()
            .values();
        let boundary = 500; // 30_000 / 60.
        let before: f64 = lat[..boundary].iter().sum::<f64>() / boundary as f64;
        let after: f64 =
            lat[boundary + 5..].iter().sum::<f64>() / (lat.len() - boundary - 5) as f64;
        assert!(
            (after / before - 1.2).abs() < 0.05,
            "latency ratio = {}",
            after / before
        );
        // The frontend's own CPU stays flat — nothing changed in its code.
        let cpu = store
            .get(&SeriesId::new("frontend", MetricKind::Cpu, ""))
            .unwrap()
            .values();
        let c_before: f64 = cpu[..boundary].iter().sum::<f64>() / boundary as f64;
        let c_after: f64 = cpu[boundary..].iter().sum::<f64>() / (cpu.len() - boundary) as f64;
        assert!((c_after - c_before).abs() < 0.02);
    }

    #[test]
    fn uncoupled_services_are_independent() {
        let frontend = sim("f", 3);
        let mut backend = sim("b", 4);
        let victim = backend.graph().frame_by_name("subroutine_00001").unwrap();
        backend.inject_regression(victim, 30_000, 0.3, 9).unwrap();
        let mesh_services = vec![frontend, backend];
        let mut mesh = ServiceMesh::new(mesh_services).unwrap();
        // No edges: the frontend must not move.
        let store = TsdbStore::new();
        mesh.run(&store, 0, 60_000).unwrap();
        let lat = store
            .get(&SeriesId::new("f", MetricKind::Latency, ""))
            .unwrap()
            .values();
        let before: f64 = lat[..500].iter().sum::<f64>() / 500.0;
        let after: f64 = lat[500..].iter().sum::<f64>() / (lat.len() - 500) as f64;
        assert!((after - before).abs() < 0.1);
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(ServiceMesh::new(vec![]).is_err());
        let mut mesh = ServiceMesh::new(vec![sim("a", 1), sim("b", 2)]).unwrap();
        assert!(mesh
            .add_edge(CallEdge {
                caller: 0,
                callee: 9,
                coupling: 1.0
            })
            .is_err());
        assert!(mesh
            .add_edge(CallEdge {
                caller: 0,
                callee: 0,
                coupling: 1.0
            })
            .is_err());
        assert!(mesh
            .add_edge(CallEdge {
                caller: 0,
                callee: 1,
                coupling: -1.0
            })
            .is_err());
        assert!(mesh.service_mut(5).is_err());
        let store = TsdbStore::new();
        assert!(mesh.run(&store, 10, 10).is_err());
    }

    #[test]
    fn mismatched_tick_intervals_rejected() {
        let a = sim("a", 1);
        let graph = uniform_service_graph(5, 1.0).unwrap();
        let fleet = Fleet::two_generations(4).unwrap();
        let b = ServiceSim::new(
            ServiceSimConfig {
                name: "b".to_string(),
                tick_interval: 30,
                samples_per_tick: 100,
                ..Default::default()
            },
            graph,
            fleet,
        )
        .unwrap();
        assert!(ServiceMesh::new(vec![a, b]).is_err());
    }
}
