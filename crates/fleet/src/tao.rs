//! TAO-style per-data-type I/O monitoring (§3).
//!
//! "For its traffic from FrontFaaS and PythonFaaS, FBDetect detects
//! regressions in subroutines, endpoints, and per-data-type I/Os. For other
//! traffic, FBDetect detects regressions in query-processing throughput."
//!
//! This module simulates a graph database's I/O accounting: each request
//! from an upstream service touches a mix of data types (user nodes,
//! association edges, media blobs, …); a code change upstream can shift the
//! mix or inflate the I/O count of one data type. The per-data-type I/O
//! rate series are what the pipeline scans.

use crate::noise::NormalSampler;
use crate::seasonality::SeasonalProfile;
use crate::{FleetError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One data type served by the store.
#[derive(Debug, Clone, PartialEq)]
pub struct DataType {
    /// Name, e.g. `"assoc_friend"`.
    pub name: String,
    /// Baseline I/O operations per second from this upstream.
    pub base_rate: f64,
}

/// An injected per-data-type I/O regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRegression {
    /// Index into the data-type table.
    pub data_type: usize,
    /// Start time (seconds).
    pub at: u64,
    /// Multiplicative rate increase (0.25 = +25% I/Os — e.g. a dropped
    /// cache layer upstream).
    pub rate_increase: f64,
}

/// One generated series: data-type name plus `(timestamp, rate)` points.
pub type NamedSeries = (String, Vec<(u64, f64)>);

/// Simulates per-data-type I/O rates for one upstream's traffic.
#[derive(Debug)]
pub struct TaoIoSim {
    data_types: Vec<DataType>,
    regressions: Vec<IoRegression>,
    seasonal: SeasonalProfile,
    noise_fraction: f64,
    rng: StdRng,
    normal: NormalSampler,
}

impl TaoIoSim {
    /// Creates a simulator.
    pub fn new(data_types: Vec<DataType>, seasonal: SeasonalProfile, seed: u64) -> Result<Self> {
        if data_types.is_empty() {
            return Err(FleetError::InvalidConfig("no data types"));
        }
        if data_types.iter().any(|d| d.base_rate <= 0.0) {
            return Err(FleetError::InvalidConfig("base rates must be positive"));
        }
        Ok(TaoIoSim {
            data_types,
            regressions: Vec::new(),
            seasonal,
            noise_fraction: 0.01,
            rng: StdRng::seed_from_u64(seed),
            normal: NormalSampler::new(),
        })
    }

    /// The data-type table.
    pub fn data_types(&self) -> &[DataType] {
        &self.data_types
    }

    /// Schedules an I/O regression.
    pub fn inject(&mut self, regression: IoRegression) -> Result<()> {
        if regression.data_type >= self.data_types.len() {
            return Err(FleetError::InvalidConfig("data type index out of range"));
        }
        if regression.rate_increase <= -1.0 {
            return Err(FleetError::InvalidConfig("rate cannot go negative"));
        }
        self.regressions.push(regression);
        Ok(())
    }

    /// The expected (noise-free) I/O rate of a data type at time `t`.
    pub fn expected_rate(&self, data_type: usize, t: u64) -> f64 {
        let base = self.data_types[data_type].base_rate;
        let mut factor = 1.0;
        for r in &self.regressions {
            if r.data_type == data_type && t >= r.at {
                factor *= 1.0 + r.rate_increase;
            }
        }
        base * factor * self.seasonal.factor(t)
    }

    /// Samples every data type's I/O rate at time `t`; returns
    /// `(name, rate)` pairs in table order.
    pub fn sample_rates(&mut self, t: u64) -> Vec<(String, f64)> {
        (0..self.data_types.len())
            .map(|d| {
                let mean = self.expected_rate(d, t);
                let rate = self
                    .normal
                    .sample(&mut self.rng, mean, mean * self.noise_fraction)
                    .max(0.0);
                (self.data_types[d].name.clone(), rate)
            })
            .collect()
    }

    /// Generates full series for all data types over `[start, end)` at the
    /// given cadence: one `(timestamps, per-type values)` bundle.
    pub fn generate(&mut self, start: u64, end: u64, interval: u64) -> Result<Vec<NamedSeries>> {
        if end <= start || interval == 0 {
            return Err(FleetError::InvalidConfig("bad time range"));
        }
        let mut series: Vec<NamedSeries> = self
            .data_types
            .iter()
            .map(|d| (d.name.clone(), Vec::new()))
            .collect();
        let mut t = start;
        while t < end {
            for (i, (_, rate)) in self.sample_rates(t).into_iter().enumerate() {
                series[i].1.push((t, rate));
            }
            t += interval;
        }
        Ok(series)
    }
}

/// A standard TAO-ish data-type mix for tests and benches.
pub fn standard_data_types() -> Vec<DataType> {
    vec![
        DataType {
            name: "node_user".to_string(),
            base_rate: 50_000.0,
        },
        DataType {
            name: "assoc_friend".to_string(),
            base_rate: 120_000.0,
        },
        DataType {
            name: "assoc_like".to_string(),
            base_rate: 200_000.0,
        },
        DataType {
            name: "node_media".to_string(),
            base_rate: 30_000.0,
        },
        DataType {
            name: "node_comment".to_string(),
            base_rate: 80_000.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_track_baseline() {
        let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 1).unwrap();
        let rates = sim.sample_rates(0);
        assert_eq!(rates.len(), 5);
        assert!((rates[0].1 - 50_000.0).abs() < 2_500.0);
    }

    #[test]
    fn injected_regression_raises_one_type_only() {
        let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 2).unwrap();
        sim.inject(IoRegression {
            data_type: 1,
            at: 1_000,
            rate_increase: 0.3,
        })
        .unwrap();
        assert!((sim.expected_rate(1, 999) - 120_000.0).abs() < 1e-6);
        assert!((sim.expected_rate(1, 1_000) - 156_000.0).abs() < 1e-6);
        assert!((sim.expected_rate(2, 5_000) - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn stacked_regressions_compound() {
        let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 3).unwrap();
        for at in [100, 200] {
            sim.inject(IoRegression {
                data_type: 0,
                at,
                rate_increase: 0.1,
            })
            .unwrap();
        }
        assert!((sim.expected_rate(0, 300) - 50_000.0 * 1.21).abs() < 1e-6);
    }

    #[test]
    fn generate_produces_full_series() {
        let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 4).unwrap();
        let series = sim.generate(0, 600, 60).unwrap();
        assert_eq!(series.len(), 5);
        assert!(series.iter().all(|(_, pts)| pts.len() == 10));
        assert_eq!(series[0].1[3].0, 180);
    }

    #[test]
    fn invalid_configs() {
        assert!(TaoIoSim::new(vec![], SeasonalProfile::FLAT, 1).is_err());
        assert!(TaoIoSim::new(
            vec![DataType {
                name: "x".into(),
                base_rate: 0.0
            }],
            SeasonalProfile::FLAT,
            1
        )
        .is_err());
        let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 1).unwrap();
        assert!(sim
            .inject(IoRegression {
                data_type: 99,
                at: 0,
                rate_increase: 0.1
            })
            .is_err());
        assert!(sim
            .inject(IoRegression {
                data_type: 0,
                at: 0,
                rate_increase: -1.5
            })
            .is_err());
        assert!(sim.generate(10, 10, 60).is_err());
        assert!(sim.generate(0, 10, 0).is_err());
    }
}
