//! Data-quality fault injection.
//!
//! [`transient`](crate::transient) models *performance* disturbances — the
//! metrics move but the data is sound. This module models the other failure
//! mode production monitoring lives with: the *data itself* goes bad.
//! Collectors drop samples, report the same timestamp twice, emit NaN
//! bursts, freeze on a stale constant, or deliver whole windows late. The
//! detection pipeline's scan supervisor must survive all of it; the chaos
//! tests drive it with [`DataFault`] schedules.
//!
//! Faults are applied to a raw `(timestamp, value)` sample stream before it
//! is inserted into the store, mirroring where real collectors corrupt
//! data: upstream of the TSDB.

use rand::Rng;

/// The kinds of data-quality faults collectors exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFaultKind {
    /// Samples inside the window are dropped with probability `intensity`.
    DroppedSamples,
    /// Samples inside the window are reported twice (same timestamp) with
    /// probability `intensity`.
    DuplicatedTimestamps,
    /// Sample values inside the window become NaN with probability
    /// `intensity`.
    NaNBurst,
    /// A stuck collector: every sample in the window repeats the value
    /// observed at the window start.
    StuckConstant,
    /// The window's samples arrive late: timestamps shift past the window
    /// end by its duration (a gap followed by a catch-up burst).
    LateWindow,
}

impl DataFaultKind {
    /// All kinds, for sweep tests and random schedules.
    pub const ALL: [DataFaultKind; 5] = [
        DataFaultKind::DroppedSamples,
        DataFaultKind::DuplicatedTimestamps,
        DataFaultKind::NaNBurst,
        DataFaultKind::StuckConstant,
        DataFaultKind::LateWindow,
    ];

    /// Whether the fault removes or invalidates data (as opposed to merely
    /// distorting it) — the kinds the scan supervisor is expected to
    /// surface as skipped/quarantined series when severe.
    pub fn is_destructive(&self) -> bool {
        matches!(
            self,
            DataFaultKind::DroppedSamples | DataFaultKind::NaNBurst | DataFaultKind::LateWindow
        )
    }
}

/// One scheduled data-quality fault on a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFault {
    /// What goes wrong.
    pub kind: DataFaultKind,
    /// First affected timestamp (simulator seconds).
    pub start: u64,
    /// Length of the affected window in seconds.
    pub duration: u64,
    /// Fault probability per sample in `[0, 1]` (ignored by
    /// `StuckConstant` and `LateWindow`, which affect the whole window).
    pub intensity: f64,
}

impl DataFault {
    /// Whether the fault affects samples at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t < self.start.saturating_add(self.duration)
    }

    /// Applies the fault to a sample stream, returning the corrupted
    /// stream sorted by timestamp. `rng` drives the per-sample coin flips,
    /// so corruption is deterministic per seed.
    pub fn apply<R: Rng>(&self, rng: &mut R, samples: &[(u64, f64)]) -> Vec<(u64, f64)> {
        let p = self.intensity.clamp(0.0, 1.0);
        let mut out: Vec<(u64, f64)> = Vec::with_capacity(samples.len());
        match self.kind {
            DataFaultKind::DroppedSamples => {
                for &(t, v) in samples {
                    if self.active_at(t) && rng.gen_bool(p) {
                        continue;
                    }
                    out.push((t, v));
                }
            }
            DataFaultKind::DuplicatedTimestamps => {
                for &(t, v) in samples {
                    out.push((t, v));
                    if self.active_at(t) && rng.gen_bool(p) {
                        out.push((t, v));
                    }
                }
            }
            DataFaultKind::NaNBurst => {
                for &(t, v) in samples {
                    if self.active_at(t) && rng.gen_bool(p) {
                        out.push((t, f64::NAN));
                    } else {
                        out.push((t, v));
                    }
                }
            }
            DataFaultKind::StuckConstant => {
                let stuck = samples
                    .iter()
                    .find(|(t, _)| self.active_at(*t))
                    .map(|&(_, v)| v);
                for &(t, v) in samples {
                    match stuck {
                        Some(s) if self.active_at(t) => out.push((t, s)),
                        _ => out.push((t, v)),
                    }
                }
            }
            DataFaultKind::LateWindow => {
                for &(t, v) in samples {
                    if self.active_at(t) {
                        out.push((t.saturating_add(self.duration), v));
                    } else {
                        out.push((t, v));
                    }
                }
            }
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }
}

/// A schedule of data-quality faults affecting one series.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    faults: Vec<DataFault>,
}

impl FaultSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn add(&mut self, fault: DataFault) {
        self.faults.push(fault);
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[DataFault] {
        &self.faults
    }

    /// Applies every fault in schedule order to the sample stream.
    pub fn apply<R: Rng>(&self, rng: &mut R, samples: &[(u64, f64)]) -> Vec<(u64, f64)> {
        let mut out = samples.to_vec();
        for fault in &self.faults {
            out = fault.apply(rng, &out);
        }
        out
    }

    /// Populates the schedule with random faults over `[start, end)` at
    /// the given mean rate (faults per day), mirroring
    /// [`TransientSchedule::generate_random`](crate::transient::TransientSchedule::generate_random).
    /// Durations are log-uniform from one minute to eight hours.
    pub fn generate_random<R: Rng>(&mut self, rng: &mut R, start: u64, end: u64, faults_per_day: f64) {
        let days = (end.saturating_sub(start)) as f64 / 86_400.0;
        let count = (faults_per_day * days).round() as usize;
        for _ in 0..count {
            let kind = DataFaultKind::ALL[rng.gen_range(0..DataFaultKind::ALL.len())];
            let fault_start = rng.gen_range(start..end.max(start + 1));
            let log_lo = (60.0f64).ln();
            let log_hi = (8.0 * 3600.0f64).ln();
            let duration = rng.gen_range(log_lo..log_hi).exp() as u64;
            self.add(DataFault {
                kind,
                start: fault_start,
                duration: duration.max(1),
                intensity: rng.gen_range(0.5..1.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(n: u64) -> Vec<(u64, f64)> {
        (0..n).map(|t| (t * 10, 1.0 + t as f64 * 0.001)).collect()
    }

    #[test]
    fn dropped_samples_thin_the_window_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let fault = DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 1_000,
            duration: 1_000,
            intensity: 1.0,
        };
        let out = fault.apply(&mut rng, &stream(300));
        assert!(out.iter().all(|&(t, _)| !(1_000..2_000).contains(&t)));
        // 100 samples fall in the window at 10s cadence.
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn duplicates_preserve_timestamp_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let fault = DataFault {
            kind: DataFaultKind::DuplicatedTimestamps,
            start: 0,
            duration: 3_000,
            intensity: 1.0,
        };
        let out = fault.apply(&mut rng, &stream(300));
        assert_eq!(out.len(), 600);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn nan_burst_hits_only_the_window() {
        let mut rng = StdRng::seed_from_u64(3);
        let fault = DataFault {
            kind: DataFaultKind::NaNBurst,
            start: 500,
            duration: 500,
            intensity: 1.0,
        };
        let out = fault.apply(&mut rng, &stream(200));
        for (t, v) in out {
            assert_eq!(v.is_nan(), (500..1_000).contains(&t), "t = {t}");
        }
    }

    #[test]
    fn stuck_constant_freezes_the_window() {
        let mut rng = StdRng::seed_from_u64(4);
        let fault = DataFault {
            kind: DataFaultKind::StuckConstant,
            start: 1_000,
            duration: 500,
            intensity: 1.0,
        };
        let input = stream(300);
        let stuck_value = input.iter().find(|(t, _)| *t >= 1_000).unwrap().1;
        let out = fault.apply(&mut rng, &input);
        for (i, &(t, v)) in out.iter().enumerate() {
            if (1_000..1_500).contains(&t) {
                assert_eq!(v, stuck_value);
            } else {
                assert_eq!(v, input[i].1);
            }
        }
    }

    #[test]
    fn late_window_shifts_past_the_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let fault = DataFault {
            kind: DataFaultKind::LateWindow,
            start: 1_000,
            duration: 500,
            intensity: 1.0,
        };
        let out = fault.apply(&mut rng, &stream(300));
        // The window [1000, 1500) is empty; its samples land in
        // [1500, 2000) interleaved with the on-time ones.
        assert!(out.iter().all(|&(t, _)| !(1_000..1_500).contains(&t)));
        assert_eq!(out.len(), 300);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn intensity_scales_corruption() {
        let mut rng = StdRng::seed_from_u64(6);
        let fault = DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 0,
            duration: 10_000,
            intensity: 0.5,
        };
        let out = fault.apply(&mut rng, &stream(1_000));
        let dropped = 1_000 - out.len();
        assert!((300..700).contains(&dropped), "dropped = {dropped}");
    }

    #[test]
    fn schedule_applies_faults_in_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut schedule = FaultSchedule::new();
        schedule.add(DataFault {
            kind: DataFaultKind::NaNBurst,
            start: 0,
            duration: 500,
            intensity: 1.0,
        });
        schedule.add(DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 1_000,
            duration: 500,
            intensity: 1.0,
        });
        let out = schedule.apply(&mut rng, &stream(200));
        assert!(out
            .iter()
            .any(|&(t, v)| t < 500 && v.is_nan()));
        assert!(out.iter().all(|&(t, _)| !(1_000..1_500).contains(&t)));
    }

    #[test]
    fn random_schedule_respects_rate_and_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut schedule = FaultSchedule::new();
        schedule.generate_random(&mut rng, 0, 10 * 86_400, 2.0);
        assert_eq!(schedule.faults().len(), 20);
        for f in schedule.faults() {
            assert!(f.start < 10 * 86_400);
            assert!(f.duration >= 1 && f.duration <= 8 * 3_600 + 1);
            assert!((0.5..1.0).contains(&f.intensity));
        }
    }

    #[test]
    fn destructive_kinds_are_flagged() {
        assert!(DataFaultKind::DroppedSamples.is_destructive());
        assert!(DataFaultKind::NaNBurst.is_destructive());
        assert!(DataFaultKind::LateWindow.is_destructive());
        assert!(!DataFaultKind::StuckConstant.is_destructive());
        assert!(!DataFaultKind::DuplicatedTimestamps.is_destructive());
    }
}
