//! Full service simulation: call graph + fleet + profiler + metrics.
//!
//! [`ServiceSim`] drives everything end-to-end the way production does: at
//! every tick it collects stack-trace samples across all servers, derives
//! per-subroutine gCPU values, and appends gCPU / CPU / throughput /
//! latency / error-rate series into a [`fbd_tsdb::TsdbStore`]. Code changes
//! are injected as scheduled call-graph mutations — weight increases (true
//! regressions) and cost shifts (the false positives of §5.4) — with ground
//! truth retained for evaluation.

use crate::noise::NormalSampler;
use crate::seasonality::SeasonalProfile;
use crate::server::Fleet;
use crate::transient::TransientSchedule;
use crate::{FleetError, Result};
use fbd_changelog::ChangeId;
use fbd_profiler::callgraph::{CallGraph, FrameId};
use fbd_profiler::gcpu::GcpuTable;
use fbd_profiler::sample::{StackSample, TraceSampler};
use fbd_tsdb::{MetricKind, SeriesId, TsdbStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A scheduled call-graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphMutation {
    /// Increase a subroutine's self weight — a true regression.
    WeightDelta {
        /// Affected frame.
        frame: FrameId,
        /// Self-weight increase (absolute units of the graph).
        delta: f64,
    },
    /// Move self weight between subroutines — a cost shift (no total change).
    CostShift {
        /// Weight source.
        from: FrameId,
        /// Weight destination.
        to: FrameId,
        /// Amount moved.
        amount: f64,
    },
}

/// Ground truth about one injected change.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// The change id blamed for the mutation (links to the change log).
    pub change_id: ChangeId,
    /// When the mutation takes effect.
    pub at: u64,
    /// What was mutated.
    pub mutation: GraphMutation,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct ServiceSimConfig {
    /// Service name stamped on series ids.
    pub name: String,
    /// Seconds between ticks (one gCPU data point per tick).
    pub tick_interval: u64,
    /// Stack-trace samples collected per tick across the whole fleet.
    pub samples_per_tick: usize,
    /// Mean service-level CPU utilization in `[0, 1]`.
    pub base_cpu: f64,
    /// Noise standard deviation on the service CPU series.
    pub cpu_noise_std: f64,
    /// Base throughput (requests/sec, fleet-wide).
    pub base_throughput: f64,
    /// Seasonality applied to CPU and throughput.
    pub seasonal: SeasonalProfile,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServiceSimConfig {
    fn default() -> Self {
        ServiceSimConfig {
            name: "svc".to_string(),
            tick_interval: 60,
            samples_per_tick: 1_000,
            base_cpu: 0.5,
            cpu_noise_std: 0.01,
            base_throughput: 10_000.0,
            seasonal: SeasonalProfile::FLAT,
            seed: 0xF1EE7,
        }
    }
}

/// The simulator.
#[derive(Debug)]
pub struct ServiceSim {
    config: ServiceSimConfig,
    graph: CallGraph,
    fleet: Fleet,
    transients: TransientSchedule,
    injections: Vec<InjectionRecord>,
    applied: usize,
    rng: StdRng,
    sampler: Option<TraceSampler>,
    normal: NormalSampler,
    /// Registered endpoints: name -> frames whose samples aggregate into
    /// the endpoint's end-to-end cost (§3), including async helpers.
    endpoints: Vec<(String, Vec<FrameId>)>,
    /// Metadata scopes: (scope name, annotated frame, measured frame).
    /// Emits the measured frame's gCPU restricted to samples whose trace
    /// contains the annotated frame — `SetFrameMetadata()` detection (§3).
    metadata_scopes: Vec<(String, FrameId, FrameId)>,
    /// Retained stack samples from the most recent run (for RCA and
    /// overlap features). Bounded by `max_retained_samples`.
    retained_samples: Vec<StackSample>,
    /// Cap on retained samples (oldest evicted first).
    pub max_retained_samples: usize,
}

impl ServiceSim {
    /// Creates a simulator.
    pub fn new(config: ServiceSimConfig, graph: CallGraph, fleet: Fleet) -> Result<Self> {
        if config.tick_interval == 0 {
            return Err(FleetError::InvalidConfig("tick interval is zero"));
        }
        if config.samples_per_tick == 0 {
            return Err(FleetError::InvalidConfig("samples per tick is zero"));
        }
        let seed = config.seed;
        Ok(ServiceSim {
            config,
            graph,
            fleet,
            transients: TransientSchedule::new(),
            injections: Vec::new(),
            applied: 0,
            rng: StdRng::seed_from_u64(seed),
            sampler: None,
            normal: NormalSampler::new(),
            endpoints: Vec::new(),
            metadata_scopes: Vec::new(),
            retained_samples: Vec::new(),
            max_retained_samples: 2_000_000,
        })
    }

    /// The call graph (current, post-applied-mutations state).
    pub fn graph(&self) -> &CallGraph {
        &self.graph
    }

    /// The transient-issue schedule (mutable so callers can populate it).
    pub fn transients_mut(&mut self) -> &mut TransientSchedule {
        &mut self.transients
    }

    /// Ground truth of all scheduled injections.
    pub fn injections(&self) -> &[InjectionRecord] {
        &self.injections
    }

    /// Stack samples retained from simulation (most recent run).
    pub fn retained_samples(&self) -> &[StackSample] {
        &self.retained_samples
    }

    /// Registers an endpoint whose end-to-end cost aggregates the samples
    /// of all listed frames — synchronous entry points and asynchronous
    /// helpers alike (§3 end-to-end tracing).
    pub fn register_endpoint(
        &mut self,
        name: impl Into<String>,
        frames: Vec<FrameId>,
    ) -> Result<()> {
        for &f in &frames {
            self.graph.frame(f)?;
        }
        self.endpoints.push((name.into(), frames));
        Ok(())
    }

    /// Registers a metadata scope — the simulator-side equivalent of the
    /// `annotated` frame calling `SetFrameMetadata(scope)`. Emits a gCPU
    /// series for `measured` restricted to samples inside the scope, so
    /// regressions affecting only one request category are detectable (§3).
    pub fn register_metadata_scope(
        &mut self,
        scope: impl Into<String>,
        annotated: FrameId,
        measured: FrameId,
    ) -> Result<()> {
        self.graph.frame(annotated)?;
        self.graph.frame(measured)?;
        self.metadata_scopes
            .push((scope.into(), annotated, measured));
        Ok(())
    }

    /// Schedules a step regression: `frame` gains `delta` self weight at
    /// time `at`, blamed on `change_id`.
    pub fn inject_regression(
        &mut self,
        frame: FrameId,
        at: u64,
        delta: f64,
        change_id: ChangeId,
    ) -> Result<()> {
        self.graph.frame(frame)?;
        self.injections.push(InjectionRecord {
            change_id,
            at,
            mutation: GraphMutation::WeightDelta { frame, delta },
        });
        self.injections.sort_by_key(|r| r.at);
        Ok(())
    }

    /// Schedules a cost shift from `from` to `to` at time `at`.
    pub fn inject_cost_shift(
        &mut self,
        from: FrameId,
        to: FrameId,
        at: u64,
        amount: f64,
        change_id: ChangeId,
    ) -> Result<()> {
        self.graph.frame(from)?;
        self.graph.frame(to)?;
        self.injections.push(InjectionRecord {
            change_id,
            at,
            mutation: GraphMutation::CostShift { from, to, amount },
        });
        self.injections.sort_by_key(|r| r.at);
        Ok(())
    }

    fn apply_due_mutations(&mut self, now: u64) -> Result<bool> {
        let mut any = false;
        while self.applied < self.injections.len() && self.injections[self.applied].at <= now {
            let record = self.injections[self.applied].clone();
            match record.mutation {
                GraphMutation::WeightDelta { frame, delta } => {
                    self.graph.adjust_self_weight(frame, delta)?;
                }
                GraphMutation::CostShift { from, to, amount } => {
                    self.graph.shift_cost(from, to, amount)?;
                }
            }
            self.applied += 1;
            any = true;
        }
        Ok(any)
    }

    /// Runs the simulation over `[start, end)`, appending series to `store`.
    ///
    /// Emitted series (all tagged with the service name):
    /// - `GCpu` per subroutine (target = subroutine name);
    /// - `EndpointCost` per registered endpoint;
    /// - `GCpu` with a `meta:` target per metadata scope;
    /// - `Cpu`, `Throughput`, `Latency`, `ErrorRate` service-wide.
    pub fn run(&mut self, store: &TsdbStore, start: u64, end: u64) -> Result<()> {
        if end <= start {
            return Err(FleetError::InvalidConfig("end must exceed start"));
        }
        let mut now = start;
        while now < end {
            self.step(store, now, 1.0)?;
            now += self.config.tick_interval;
        }
        Ok(())
    }

    /// The current total graph weight relative to a 1.0-normalized base —
    /// the code-cost factor other services in a mesh observe.
    pub fn weight_factor(&self) -> f64 {
        self.graph.total_weight()
    }

    /// The tick interval configured for this simulator.
    pub fn tick_interval(&self) -> u64 {
        self.config.tick_interval
    }

    /// Advances one tick at time `now`.
    ///
    /// `downstream_factor` multiplies this service's latency, modelling the
    /// extra wait caused by regressed downstream dependencies (1.0 = none);
    /// a service mesh passes its callees' [`weight_factor`](Self::weight_factor)
    /// here.
    pub fn step(&mut self, store: &TsdbStore, now: u64, downstream_factor: f64) -> Result<()> {
        let names: Vec<String> = self.graph.names().iter().map(|s| s.to_string()).collect();
        let gcpu_ids: Vec<SeriesId> = names
            .iter()
            .map(|n| SeriesId::new(&self.config.name, MetricKind::GCpu, n.clone()))
            .collect();
        let endpoint_ids: Vec<SeriesId> = self
            .endpoints
            .iter()
            .map(|(name, _)| {
                SeriesId::new(&self.config.name, MetricKind::EndpointCost, name.clone())
            })
            .collect();
        let scope_ids: Vec<SeriesId> = self
            .metadata_scopes
            .iter()
            .map(|(scope, _, _)| {
                SeriesId::new(&self.config.name, MetricKind::GCpu, format!("meta:{scope}"))
            })
            .collect();
        let cpu_id = SeriesId::new(&self.config.name, MetricKind::Cpu, "");
        let tput_id = SeriesId::new(&self.config.name, MetricKind::Throughput, "");
        let lat_id = SeriesId::new(&self.config.name, MetricKind::Latency, "");
        let err_id = SeriesId::new(&self.config.name, MetricKind::ErrorRate, "");
        // Apply due mutations and (re)build the sampler.
        if self.apply_due_mutations(now)? || self.sampler.is_none() {
            self.sampler = Some(TraceSampler::new(&self.graph)?);
        }
        let Some(sampler) = self.sampler.as_ref() else {
            return Err(FleetError::InvalidConfig("sampler failed to build"));
        };
        // Collect this tick's stack samples across the fleet.
        let server_count = self.fleet.len() as u32;
        let mut tick_samples = Vec::with_capacity(self.config.samples_per_tick);
        for i in 0..self.config.samples_per_tick {
            let server = (i as u32).wrapping_mul(2654435761) % server_count;
            tick_samples.push(sampler.sample(&mut self.rng, now, server));
        }
        // Per-subroutine gCPU for this tick.
        let table = GcpuTable::from_samples(&tick_samples)
            .map_err(|e| FleetError::Profiler(e.to_string()))?;
        for (frame, id) in gcpu_ids.iter().enumerate() {
            store.append(id, now, table.gcpu(frame))?;
        }
        // Endpoint-level aggregated cost: the fraction of samples that
        // belong to any of the endpoint's frames.
        for ((_, frames), id) in self.endpoints.iter().zip(&endpoint_ids) {
            let hits = tick_samples
                .iter()
                .filter(|s| frames.iter().any(|&f| s.contains(f)))
                .count();
            store.append(id, now, hits as f64 / tick_samples.len() as f64)?;
        }
        // Metadata-scoped gCPU: the measured frame's cost among samples
        // whose trace carries the annotated frame.
        for ((_, annotated, measured), id) in self.metadata_scopes.iter().zip(&scope_ids) {
            let in_scope = tick_samples.iter().filter(|s| s.contains(*annotated));
            let (mut scoped, mut hits) = (0usize, 0usize);
            for s in in_scope {
                scoped += 1;
                if s.contains(*measured) {
                    hits += 1;
                }
            }
            let value = if scoped == 0 {
                0.0
            } else {
                hits as f64 / scoped as f64
            };
            store.append(id, now, value)?;
        }
        // Service-level metrics: per-generation CPU averaged fleet-wide.
        let seasonal = self.config.seasonal.factor(now);
        let t_cpu = self.transients.cpu_factor(now);
        let t_tput = self.transients.throughput_factor(now);
        let t_err = self.transients.error_rate_delta(now);
        // Regressions raise the graph's total weight; service CPU scales
        // with it relative to the initial weight of 1.0-normalized base.
        let weight_factor = self.graph.total_weight();
        let mut cpu_sum = 0.0;
        for g in self.fleet.generations() {
            let mean = self.config.base_cpu * g.cpu_multiplier * seasonal * t_cpu * weight_factor;
            cpu_sum += self.normal.sample_clamped(
                &mut self.rng,
                mean,
                self.config.cpu_noise_std,
                0.0,
                1.0,
            );
        }
        let cpu = cpu_sum / self.fleet.generations().len() as f64;
        store.append(&cpu_id, now, cpu)?;
        let tput = self.normal.sample(
            &mut self.rng,
            self.config.base_throughput * seasonal * t_tput,
            self.config.base_throughput * 0.01,
        );
        store.append(&tput_id, now, tput.max(0.0))?;
        let latency = self.normal.sample(
            &mut self.rng,
            5.0 * t_cpu * weight_factor * downstream_factor,
            0.1,
        );
        store.append(&lat_id, now, latency.max(0.0))?;
        let err = self
            .normal
            .sample(&mut self.rng, 0.001 + t_err, 0.0002)
            .clamp(0.0, 1.0);
        store.append(&err_id, now, err)?;
        // Retain samples for RCA, bounded.
        if self.retained_samples.len() + tick_samples.len() > self.max_retained_samples {
            let overflow =
                self.retained_samples.len() + tick_samples.len() - self.max_retained_samples;
            self.retained_samples
                .drain(..overflow.min(self.retained_samples.len()));
        }
        self.retained_samples.extend(tick_samples);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerGeneration;
    use fbd_profiler::callgraph::uniform_service_graph;

    fn small_sim(samples_per_tick: usize) -> (ServiceSim, TsdbStore) {
        let graph = uniform_service_graph(20, 1.0).unwrap();
        let fleet = Fleet::homogeneous(
            10,
            ServerGeneration {
                cpu_multiplier: 1.0,
                noise_std: 0.05,
                regression_multiplier: 1.0,
            },
        )
        .unwrap();
        let config = ServiceSimConfig {
            samples_per_tick,
            tick_interval: 60,
            ..Default::default()
        };
        (
            ServiceSim::new(config, graph, fleet).unwrap(),
            TsdbStore::new(),
        )
    }

    #[test]
    fn emits_expected_series() {
        let (mut sim, store) = small_sim(200);
        sim.run(&store, 0, 600).unwrap();
        // 22 graph frames + 4 service-wide series.
        assert_eq!(store.series_count(), 26);
        let cpu = store
            .get(&SeriesId::new("svc", MetricKind::Cpu, ""))
            .unwrap();
        assert_eq!(cpu.len(), 10);
    }

    #[test]
    fn gcpu_matches_graph_expectation() {
        let (mut sim, store) = small_sim(2_000);
        sim.run(&store, 0, 60 * 100).unwrap();
        let id = SeriesId::new("svc", MetricKind::GCpu, "subroutine_00000");
        let series = store.get(&id).unwrap();
        let mean: f64 = series.values().iter().sum::<f64>() / series.len() as f64;
        // Each of 20 leaves holds 5% of the weight.
        assert!((mean - 0.05).abs() < 0.005, "mean gCPU = {mean}");
    }

    #[test]
    fn injected_regression_steps_gcpu() {
        let (mut sim, store) = small_sim(5_000);
        let frame = sim.graph().frame_by_name("subroutine_00003").unwrap();
        sim.inject_regression(frame, 60 * 50, 0.05, 77).unwrap();
        sim.run(&store, 0, 60 * 100).unwrap();
        let id = SeriesId::new("svc", MetricKind::GCpu, "subroutine_00003");
        let v = store.get(&id).unwrap().values();
        let before: f64 = v[..50].iter().sum::<f64>() / 50.0;
        let after: f64 = v[50..].iter().sum::<f64>() / 50.0;
        // Weight goes 0.05 -> 0.10 of a total that grows to 1.05:
        // expected gCPU after ≈ 0.0952.
        assert!((before - 0.05).abs() < 0.01, "before = {before}");
        assert!((after - 0.0952).abs() < 0.012, "after = {after}");
    }

    #[test]
    fn cost_shift_preserves_total_cpu() {
        let (mut sim, store) = small_sim(5_000);
        let from = sim.graph().frame_by_name("subroutine_00001").unwrap();
        let to = sim.graph().frame_by_name("subroutine_00002").unwrap();
        sim.inject_cost_shift(from, to, 60 * 50, 0.04, 88).unwrap();
        sim.run(&store, 0, 60 * 100).unwrap();
        let v_to = store
            .get(&SeriesId::new("svc", MetricKind::GCpu, "subroutine_00002"))
            .unwrap()
            .values();
        let after_to: f64 = v_to[55..].iter().sum::<f64>() / (v_to.len() - 55) as f64;
        // Destination roughly doubles (0.05 -> 0.09 of unchanged total).
        assert!(after_to > 0.075, "after_to = {after_to}");
        // Service CPU stays flat: compare halves.
        let cpu = store
            .get(&SeriesId::new("svc", MetricKind::Cpu, ""))
            .unwrap()
            .values();
        let c_before: f64 = cpu[..50].iter().sum::<f64>() / 50.0;
        let c_after: f64 = cpu[50..].iter().sum::<f64>() / 50.0;
        assert!((c_after - c_before).abs() < 0.01);
    }

    #[test]
    fn ground_truth_is_recorded() {
        let (mut sim, _) = small_sim(100);
        let f = sim.graph().frame_by_name("subroutine_00000").unwrap();
        sim.inject_regression(f, 100, 0.01, 5).unwrap();
        assert_eq!(sim.injections().len(), 1);
        assert_eq!(sim.injections()[0].change_id, 5);
    }

    #[test]
    fn invalid_configs_rejected() {
        let graph = uniform_service_graph(5, 1.0).unwrap();
        let fleet = Fleet::homogeneous(
            2,
            ServerGeneration {
                cpu_multiplier: 1.0,
                noise_std: 0.1,
                regression_multiplier: 1.0,
            },
        )
        .unwrap();
        let bad = ServiceSimConfig {
            tick_interval: 0,
            ..Default::default()
        };
        assert!(ServiceSim::new(bad, graph.clone(), fleet.clone()).is_err());
        let bad = ServiceSimConfig {
            samples_per_tick: 0,
            ..Default::default()
        };
        assert!(ServiceSim::new(bad, graph, fleet).is_err());
    }

    #[test]
    fn retained_samples_capped() {
        let (mut sim, store) = small_sim(100);
        sim.max_retained_samples = 250;
        sim.run(&store, 0, 60 * 10).unwrap();
        assert_eq!(sim.retained_samples().len(), 250);
    }
}
