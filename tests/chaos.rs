//! Chaos test: the scan supervisor must survive randomized data-quality
//! faults without aborting, while still catching a real regression on the
//! healthy series.
//!
//! At each RNG seed, 20% of a 25-series fleet is corrupted with
//! [`DataFault`]s — destructive kinds (total sample loss, heavy NaN
//! bursts, late-arriving windows) and benign kinds (stuck collectors,
//! duplicated timestamps). One healthy series carries a 5% step. The
//! monitoring run must complete, report the step, surface destructive
//! faults as skipped series, and quarantine them with backoff.

use std::sync::Arc;

use fbdetect::core::scheduler::{MonitoringOutcome, MonitoringScheduler};
use fbdetect::core::{DetectorConfig, FaultKind, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::{DataFault, DataFaultKind, EmitSeries, Event, SeriesSpec, WireEmitter};
use fbdetect::ingest::{IngestConfig, IngestPipeline, QuotaConfig};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INTERVAL: u64 = 10;
const LEN: usize = 820; // samples 0..8200s at 10s cadence
const SCAN_START: u64 = 5_000;
const SCAN_END: u64 = 8_000;

fn config() -> DetectorConfig {
    DetectorConfig::new(
        "chaos",
        WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        },
        Threshold::Absolute(0.02),
    )
}

fn id(target: &str) -> SeriesId {
    SeriesId::new("svc", MetricKind::GCpu, target)
}

/// Destructive faults: severe enough that the affected series must be
/// skipped (no data or bad data) rather than scanned.
fn destructive_fault(i: usize) -> DataFault {
    match i % 3 {
        0 => DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 0,
            duration: 10_000,
            intensity: 1.0,
        },
        1 => DataFault {
            kind: DataFaultKind::NaNBurst,
            start: 0,
            duration: 10_000,
            intensity: 0.95,
        },
        _ => DataFault {
            // Everything from t=3500 on arrives 5000s late: the analysis
            // window is empty for every scan in [5000, 8000].
            kind: DataFaultKind::LateWindow,
            start: 3_500,
            duration: 5_000,
            intensity: 1.0,
        },
    }
}

/// Benign faults: the series stays scannable.
fn benign_fault(i: usize) -> DataFault {
    match i % 2 {
        0 => DataFault {
            kind: DataFaultKind::StuckConstant,
            start: 2_000,
            duration: 2_000,
            intensity: 1.0,
        },
        _ => DataFault {
            kind: DataFaultKind::DuplicatedTimestamps,
            start: 1_000,
            duration: 3_000,
            intensity: 0.5,
        },
    }
}

/// Builds the fleet: series `s00` carries a 5% step at t=5200; of the
/// remaining 24 flat series, the first 3 get destructive faults and the
/// next 2 benign ones (5 of 25 = 20% faulted).
fn build_fleet(seed: u64) -> (TsdbStore, Vec<SeriesId>, Vec<SeriesId>, Vec<SeriesId>) {
    let store = TsdbStore::new();
    let mut series = Vec::new();
    let mut destructive = Vec::new();
    let mut benign = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    for n in 0..25usize {
        let target = format!("s{n:02}");
        let sid = id(&target);
        let mut spec = SeriesSpec::flat(LEN, 1.0, 0.005);
        spec.interval = INTERVAL;
        if n == 0 {
            // 5% step well inside the monitored range.
            spec = spec.with_event(Event::Step {
                at: 520,
                delta: 0.05,
            });
        }
        let values = spec.generate(seed.wrapping_add(n as u64)).unwrap();
        let mut samples: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 * INTERVAL, v))
            .collect();
        // Fault 20% of the fleet, never the step series.
        if (1..=3).contains(&n) {
            samples = destructive_fault(n - 1).apply(&mut rng, &samples);
            destructive.push(sid.clone());
        } else if (4..=5).contains(&n) {
            samples = benign_fault(n - 4).apply(&mut rng, &samples);
            benign.push(sid.clone());
        }
        let ts = TimeSeries::from_pairs(samples).unwrap();
        store.insert_series(sid.clone(), ts);
        series.push(sid);
    }
    (store, series, destructive, benign)
}

#[test]
fn randomized_data_faults_do_not_abort_the_scan() {
    for seed in [11u64, 42, 1_337] {
        let (store, series, destructive, benign) = build_fleet(seed);
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        let outcome = scheduler
            .run(&store, &series, SCAN_START, SCAN_END, &ScanContext::default())
            .unwrap_or_else(|e| panic!("seed {seed}: scan aborted: {e}"));
        assert_eq!(outcome.scans, 7, "seed {seed}");

        // The injected 5% step on the healthy series is still caught.
        assert!(
            outcome
                .reports
                .iter()
                .any(|r| r.regression.series.target == "s00"),
            "seed {seed}: step on s00 not reported; reports = {:?}, health = {:?}",
            outcome
                .reports
                .iter()
                .map(|r| r.regression.series.target.clone())
                .collect::<Vec<_>>(),
            outcome.health
        );
        // No phantom reports from faulted series.
        for r in &outcome.reports {
            assert!(
                !destructive.contains(&r.regression.series),
                "seed {seed}: report from destructively faulted series {:?}",
                r.regression.series
            );
        }

        // Destructive faults surface as skipped series and quarantine
        // entries — not as aborts and not as silent scans.
        assert!(
            outcome.health.series_skipped >= destructive.len(),
            "seed {seed}: skipped {} < {} faulted",
            outcome.health.series_skipped,
            destructive.len()
        );
        assert!(
            outcome.health.series_quarantined > 0,
            "seed {seed}: backoff never parked a faulted series; health = {:?}",
            outcome.health
        );
        let quarantine = scheduler.pipeline().quarantine();
        for sid in &destructive {
            let entry = quarantine
                .entry(sid)
                .unwrap_or_else(|| panic!("seed {seed}: {sid:?} not quarantined"));
            assert!(
                matches!(entry.kind, FaultKind::NoData | FaultKind::DataQuality),
                "seed {seed}: unexpected fault kind {:?} for {sid:?}",
                entry.kind
            );
        }
        // Benign faults never quarantine: the series remain scannable.
        for sid in &benign {
            assert!(
                quarantine.entry(sid).is_none(),
                "seed {seed}: benign fault quarantined {sid:?}"
            );
        }
        // Every series is accounted for each scan: scanned + skipped +
        // quarantined covers the whole fleet across all 7 scans.
        assert_eq!(
            outcome.health.series_scanned
                + outcome.health.series_skipped
                + outcome.health.series_quarantined,
            outcome.health.series_total,
            "seed {seed}: health = {:?}",
            outcome.health
        );
        assert_eq!(outcome.health.series_total, 25 * 7, "seed {seed}");
        assert_eq!(outcome.health.panicked, 0, "seed {seed}");
    }
}

/// Collection-round length for the wire path. Must stay at or below the
/// validator's default late slack (900s) so punctual end-of-round samples
/// are never misread as late.
const ROUND_LEN: u64 = 500;

/// The same fleet as [`build_fleet`], but with fault application deferred
/// to the wire emitter: clean sample streams plus fault assignments, in
/// the same series order so the shared RNG is consumed identically.
fn wire_fleet(seed: u64) -> (Vec<EmitSeries>, Vec<SeriesId>) {
    let mut fleet = Vec::new();
    let mut series = Vec::new();
    for n in 0..25usize {
        let target = format!("s{n:02}");
        let sid = id(&target);
        let mut spec = SeriesSpec::flat(LEN, 1.0, 0.005);
        spec.interval = INTERVAL;
        if n == 0 {
            spec = spec.with_event(Event::Step {
                at: 520,
                delta: 0.05,
            });
        }
        let values = spec.generate(seed.wrapping_add(n as u64)).unwrap();
        let samples: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 * INTERVAL, v))
            .collect();
        let fault = if (1..=3).contains(&n) {
            Some(destructive_fault(n - 1))
        } else if (4..=5).contains(&n) {
            Some(benign_fault(n - 4))
        } else {
            None
        };
        fleet.push(EmitSeries {
            id: sid.clone(),
            samples,
            fault,
        });
        series.push(sid);
    }
    (fleet, series)
}

fn scan(store: &TsdbStore, series: &[SeriesId]) -> MonitoringOutcome {
    let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
    scheduler
        .run(store, series, SCAN_START, SCAN_END, &ScanContext::default())
        .expect("scan must survive chaos")
}

fn report_targets(outcome: &MonitoringOutcome) -> Vec<(String, u64)> {
    outcome
        .reports
        .iter()
        .map(|r| (r.regression.series.target.clone(), r.reported_at))
        .collect()
}

/// The tentpole chaos guarantee: ingesting the corrupted fleet through
/// the wire pipeline — decode, validation, quotas, sharded append — must
/// yield the *same scan outcome* as direct appends of the same corrupted
/// streams. Faults degrade to counted health signals at the boundary;
/// every point the boundary sheds is accounted for; nothing new breaks
/// downstream.
#[test]
fn wire_path_chaos_matches_direct_append_fingerprints() {
    for seed in [11u64, 42, 1_337] {
        let (direct_store, series, _destructive, _benign) = build_fleet(seed);
        let (fleet, wire_series) = wire_fleet(seed);
        assert_eq!(series, wire_series, "seed {seed}: fleet shape diverged");

        // Same RNG stream as build_fleet: fault corruption on the wire is
        // sample-for-sample the corruption the direct path applied.
        let emitter = WireEmitter::new("chaos", ROUND_LEN);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let batches = emitter
            .rounds(&mut rng, &fleet)
            .unwrap_or_else(|e| panic!("seed {seed}: emission failed: {e}"));

        let store = Arc::new(TsdbStore::new());
        let pipeline = IngestPipeline::new(Arc::clone(&store), IngestConfig::default());
        for raw in &batches {
            pipeline
                .submit(raw.clone())
                .unwrap_or_else(|e| panic!("seed {seed}: submit failed: {e}"));
        }
        let quarantine = pipeline.quarantine();
        let stats = pipeline.finish();

        // Every submitted point is accounted for — appended or counted
        // into an explicit shed bucket, never silently lost.
        assert!(stats.is_accounted(), "seed {seed}: {stats:?}");
        assert_eq!(stats.decode_errors, 0, "seed {seed}");
        assert_eq!(stats.points_shed, 0, "seed {seed}: blocking submit never sheds");
        assert_eq!(stats.append_rejected, 0, "seed {seed}");
        assert_eq!(stats.internal_error_points, 0, "seed {seed}");
        assert_eq!(
            stats.points_appended + stats.late_shed_points,
            stats.points_submitted,
            "seed {seed}: {stats:?}"
        );

        // The boundary classified every fault kind it could observe (the
        // full-intensity drop on s01 emits nothing to observe; partial
        // drops are covered separately below).
        assert!(stats.faults.duplicated > 0, "seed {seed}: {:?}", stats.faults);
        assert!(stats.faults.nan > 0, "seed {seed}: {:?}", stats.faults);
        assert!(stats.faults.stuck_runs > 0, "seed {seed}: {:?}", stats.faults);
        assert!(stats.faults.late > 0, "seed {seed}: {:?}", stats.faults);
        assert!(stats.late_shed_points > 0, "seed {seed}");
        // Fault attribution lands on the series that were actually
        // corrupted: NaN burst on s02, late window on s03, stuck on s04,
        // duplicates on s05.
        let per = &stats.per_series_faults;
        assert!(per[&id("s02")].nan > 0, "seed {seed}");
        assert!(per[&id("s03")].late > 0, "seed {seed}");
        assert!(per[&id("s04")].stuck_runs > 0, "seed {seed}");
        assert!(per[&id("s05")].duplicated > 0, "seed {seed}");
        // The NaN-drowned series is parked in the ingest quarantine as a
        // data-quality fault at the boundary, before any scan ran.
        {
            let q = quarantine.lock();
            let entry = q
                .entry(&id("s02"))
                .unwrap_or_else(|| panic!("seed {seed}: NaN burst not quarantined"));
            assert_eq!(entry.kind, FaultKind::DataQuality, "seed {seed}");
        }

        // The scan fingerprint over the wire-built store matches the
        // direct-append store: same reports at the same times, same
        // funnel, same health counters.
        let direct = scan(&direct_store, &series);
        let wired = scan(&store, &series);
        assert_eq!(direct.scans, wired.scans, "seed {seed}");
        assert_eq!(
            report_targets(&direct),
            report_targets(&wired),
            "seed {seed}"
        );
        assert_eq!(direct.funnel, wired.funnel, "seed {seed}");
        assert_eq!(direct.health, wired.health, "seed {seed}");
        // And the step is still caught through the wire.
        assert!(
            wired
                .reports
                .iter()
                .any(|r| r.regression.series.target == "s00"),
            "seed {seed}: step on s00 lost through the wire path"
        );
    }
}

/// A partial (non-total) sample drop is observable on the wire — the
/// survivors arrive with holes — and must be counted as dropped-sample
/// gaps, completing five-of-five fault-kind coverage at the boundary.
#[test]
fn wire_boundary_counts_partial_sample_drops() {
    let mut rng = StdRng::seed_from_u64(99);
    let spec = {
        let mut s = SeriesSpec::flat(LEN, 1.0, 0.005);
        s.interval = INTERVAL;
        s
    };
    let values = spec.generate(7).unwrap();
    let samples: Vec<(u64, f64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u64 * INTERVAL, v))
        .collect();
    let fleet = vec![EmitSeries::faulted(
        id("gappy"),
        samples,
        DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 0,
            duration: 10_000,
            intensity: 0.5,
        },
    )];
    let batches = WireEmitter::new("chaos", ROUND_LEN)
        .rounds(&mut rng, &fleet)
        .unwrap();
    let store = Arc::new(TsdbStore::new());
    let pipeline = IngestPipeline::new(Arc::clone(&store), IngestConfig::default());
    for raw in &batches {
        pipeline.submit(raw.clone()).unwrap();
    }
    let stats = pipeline.finish();
    assert!(stats.is_accounted(), "{stats:?}");
    assert!(stats.faults.dropped_gaps > 0, "{:?}", stats.faults);
    assert_eq!(stats.faults.late, 0, "{:?}", stats.faults);
    // Gapped survivors still pass through: the store holds every point
    // that actually arrived.
    assert_eq!(stats.points_appended, stats.points_submitted);
}

/// Quota exhaustion under chaos: a tenant blowing through its token
/// bucket has whole batches refused — every refused point counted, every
/// carried series quarantined as a data-quality fault — while an innocent
/// tenant on the same pipeline is untouched.
#[test]
fn quota_exhaustion_sheds_batches_and_quarantines_tenants() {
    let mut rng = StdRng::seed_from_u64(5);
    let spec = {
        let mut s = SeriesSpec::flat(LEN, 1.0, 0.005);
        s.interval = INTERVAL;
        s
    };
    let values = spec.generate(3).unwrap();
    let samples: Vec<(u64, f64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u64 * INTERVAL, v))
        .collect();
    let noisy = WireEmitter::new("noisy", ROUND_LEN)
        .rounds(&mut rng, &[EmitSeries::clean(id("flood"), samples.clone())])
        .unwrap();
    // The quiet tenant stays inside its own 100-point bucket.
    let quiet = WireEmitter::new("quiet", ROUND_LEN)
        .rounds(
            &mut rng,
            &[EmitSeries::clean(id("calm"), samples[..80].to_vec())],
        )
        .unwrap();

    let store = Arc::new(TsdbStore::new());
    // A bucket holding two rounds' worth with no refill to speak of: the
    // noisy tenant's later rounds must be refused.
    let config = IngestConfig {
        quota: QuotaConfig {
            burst: 100,
            points_per_sec: 0,
        },
        ..IngestConfig::default()
    };
    let pipeline = IngestPipeline::new(Arc::clone(&store), config);
    for raw in noisy.iter().chain(quiet.iter()) {
        pipeline.submit(raw.clone()).unwrap();
    }
    let quarantine = pipeline.quarantine();
    let stats = pipeline.finish();

    assert!(stats.is_accounted(), "{stats:?}");
    assert!(stats.quota_violations > 0, "{stats:?}");
    assert!(stats.quota_shed_points > 0, "{stats:?}");
    // Refusals are exact: appended + quota-refused covers every point.
    assert_eq!(
        stats.points_appended + stats.quota_shed_points,
        stats.points_submitted,
        "{stats:?}"
    );
    let q = quarantine.lock();
    let entry = q
        .entry(&id("flood"))
        .expect("over-quota tenant's series quarantined");
    assert_eq!(entry.kind, FaultKind::DataQuality);
    assert!(entry.detail.contains("quota"), "detail = {}", entry.detail);
    // The quiet tenant was admitted in full.
    assert!(q.entry(&id("calm")).is_none());
    assert_eq!(store.get(&id("calm")).map(|s| s.len()).unwrap_or(0), 80);
}

#[test]
fn panicking_detector_is_isolated_under_chaos() {
    let (store, series, _destructive, _benign) = build_fleet(42);
    let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
    // A deliberately buggy detector: panics on one healthy series.
    scheduler
        .pipeline_mut()
        .set_chaos_hook(Arc::new(|sid: &SeriesId| {
            assert!(sid.target != "s10", "injected detector bug");
        }));
    let outcome = scheduler
        .run(&store, &series, SCAN_START, SCAN_END, &ScanContext::default())
        .expect("panic must be isolated, not abort the run");
    assert!(outcome.health.panicked > 0);
    // Backoff (1, 2, 4 intervals) limits the 7 scans to 3 attempts.
    assert_eq!(outcome.health.panicked, 3);
    let entry = scheduler
        .pipeline()
        .quarantine()
        .entry(&id("s10"))
        .expect("panicking series is quarantined");
    assert_eq!(entry.kind, FaultKind::Panic);
    assert!(entry.detail.contains("injected detector bug"));
    // The step is still reported despite the buggy detector.
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.regression.series.target == "s00"));
}
