//! Chaos test: the scan supervisor must survive randomized data-quality
//! faults without aborting, while still catching a real regression on the
//! healthy series.
//!
//! At each RNG seed, 20% of a 25-series fleet is corrupted with
//! [`DataFault`]s — destructive kinds (total sample loss, heavy NaN
//! bursts, late-arriving windows) and benign kinds (stuck collectors,
//! duplicated timestamps). One healthy series carries a 5% step. The
//! monitoring run must complete, report the step, surface destructive
//! faults as skipped series, and quarantine them with backoff.

use std::sync::Arc;

use fbdetect::core::scheduler::MonitoringScheduler;
use fbdetect::core::{DetectorConfig, FaultKind, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::{DataFault, DataFaultKind, Event, SeriesSpec};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INTERVAL: u64 = 10;
const LEN: usize = 820; // samples 0..8200s at 10s cadence
const SCAN_START: u64 = 5_000;
const SCAN_END: u64 = 8_000;

fn config() -> DetectorConfig {
    DetectorConfig::new(
        "chaos",
        WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        },
        Threshold::Absolute(0.02),
    )
}

fn id(target: &str) -> SeriesId {
    SeriesId::new("svc", MetricKind::GCpu, target)
}

/// Destructive faults: severe enough that the affected series must be
/// skipped (no data or bad data) rather than scanned.
fn destructive_fault(i: usize) -> DataFault {
    match i % 3 {
        0 => DataFault {
            kind: DataFaultKind::DroppedSamples,
            start: 0,
            duration: 10_000,
            intensity: 1.0,
        },
        1 => DataFault {
            kind: DataFaultKind::NaNBurst,
            start: 0,
            duration: 10_000,
            intensity: 0.95,
        },
        _ => DataFault {
            // Everything from t=3500 on arrives 5000s late: the analysis
            // window is empty for every scan in [5000, 8000].
            kind: DataFaultKind::LateWindow,
            start: 3_500,
            duration: 5_000,
            intensity: 1.0,
        },
    }
}

/// Benign faults: the series stays scannable.
fn benign_fault(i: usize) -> DataFault {
    match i % 2 {
        0 => DataFault {
            kind: DataFaultKind::StuckConstant,
            start: 2_000,
            duration: 2_000,
            intensity: 1.0,
        },
        _ => DataFault {
            kind: DataFaultKind::DuplicatedTimestamps,
            start: 1_000,
            duration: 3_000,
            intensity: 0.5,
        },
    }
}

/// Builds the fleet: series `s00` carries a 5% step at t=5200; of the
/// remaining 24 flat series, the first 3 get destructive faults and the
/// next 2 benign ones (5 of 25 = 20% faulted).
fn build_fleet(seed: u64) -> (TsdbStore, Vec<SeriesId>, Vec<SeriesId>, Vec<SeriesId>) {
    let store = TsdbStore::new();
    let mut series = Vec::new();
    let mut destructive = Vec::new();
    let mut benign = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    for n in 0..25usize {
        let target = format!("s{n:02}");
        let sid = id(&target);
        let mut spec = SeriesSpec::flat(LEN, 1.0, 0.005);
        spec.interval = INTERVAL;
        if n == 0 {
            // 5% step well inside the monitored range.
            spec = spec.with_event(Event::Step {
                at: 520,
                delta: 0.05,
            });
        }
        let values = spec.generate(seed.wrapping_add(n as u64)).unwrap();
        let mut samples: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 * INTERVAL, v))
            .collect();
        // Fault 20% of the fleet, never the step series.
        if (1..=3).contains(&n) {
            samples = destructive_fault(n - 1).apply(&mut rng, &samples);
            destructive.push(sid.clone());
        } else if (4..=5).contains(&n) {
            samples = benign_fault(n - 4).apply(&mut rng, &samples);
            benign.push(sid.clone());
        }
        let ts = TimeSeries::from_pairs(samples).unwrap();
        store.insert_series(sid.clone(), ts);
        series.push(sid);
    }
    (store, series, destructive, benign)
}

#[test]
fn randomized_data_faults_do_not_abort_the_scan() {
    for seed in [11u64, 42, 1_337] {
        let (store, series, destructive, benign) = build_fleet(seed);
        let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
        let outcome = scheduler
            .run(&store, &series, SCAN_START, SCAN_END, &ScanContext::default())
            .unwrap_or_else(|e| panic!("seed {seed}: scan aborted: {e}"));
        assert_eq!(outcome.scans, 7, "seed {seed}");

        // The injected 5% step on the healthy series is still caught.
        assert!(
            outcome
                .reports
                .iter()
                .any(|r| r.regression.series.target == "s00"),
            "seed {seed}: step on s00 not reported; reports = {:?}, health = {:?}",
            outcome
                .reports
                .iter()
                .map(|r| r.regression.series.target.clone())
                .collect::<Vec<_>>(),
            outcome.health
        );
        // No phantom reports from faulted series.
        for r in &outcome.reports {
            assert!(
                !destructive.contains(&r.regression.series),
                "seed {seed}: report from destructively faulted series {:?}",
                r.regression.series
            );
        }

        // Destructive faults surface as skipped series and quarantine
        // entries — not as aborts and not as silent scans.
        assert!(
            outcome.health.series_skipped >= destructive.len(),
            "seed {seed}: skipped {} < {} faulted",
            outcome.health.series_skipped,
            destructive.len()
        );
        assert!(
            outcome.health.series_quarantined > 0,
            "seed {seed}: backoff never parked a faulted series; health = {:?}",
            outcome.health
        );
        let quarantine = scheduler.pipeline().quarantine();
        for sid in &destructive {
            let entry = quarantine
                .entry(sid)
                .unwrap_or_else(|| panic!("seed {seed}: {sid:?} not quarantined"));
            assert!(
                matches!(entry.kind, FaultKind::NoData | FaultKind::DataQuality),
                "seed {seed}: unexpected fault kind {:?} for {sid:?}",
                entry.kind
            );
        }
        // Benign faults never quarantine: the series remain scannable.
        for sid in &benign {
            assert!(
                quarantine.entry(sid).is_none(),
                "seed {seed}: benign fault quarantined {sid:?}"
            );
        }
        // Every series is accounted for each scan: scanned + skipped +
        // quarantined covers the whole fleet across all 7 scans.
        assert_eq!(
            outcome.health.series_scanned
                + outcome.health.series_skipped
                + outcome.health.series_quarantined,
            outcome.health.series_total,
            "seed {seed}: health = {:?}",
            outcome.health
        );
        assert_eq!(outcome.health.series_total, 25 * 7, "seed {seed}");
        assert_eq!(outcome.health.panicked, 0, "seed {seed}");
    }
}

#[test]
fn panicking_detector_is_isolated_under_chaos() {
    let (store, series, _destructive, _benign) = build_fleet(42);
    let mut scheduler = MonitoringScheduler::new(Pipeline::new(config()).unwrap());
    // A deliberately buggy detector: panics on one healthy series.
    scheduler
        .pipeline_mut()
        .set_chaos_hook(Arc::new(|sid: &SeriesId| {
            assert!(sid.target != "s10", "injected detector bug");
        }));
    let outcome = scheduler
        .run(&store, &series, SCAN_START, SCAN_END, &ScanContext::default())
        .expect("panic must be isolated, not abort the run");
    assert!(outcome.health.panicked > 0);
    // Backoff (1, 2, 4 intervals) limits the 7 scans to 3 attempts.
    assert_eq!(outcome.health.panicked, 3);
    let entry = scheduler
        .pipeline()
        .quarantine()
        .entry(&id("s10"))
        .expect("panicking series is quarantined");
    assert_eq!(entry.kind, FaultKind::Panic);
    assert!(entry.detail.contains("injected detector bug"));
    // The step is still reported despite the buggy detector.
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.regression.series.target == "s00"));
}
