//! Robustness: malformed or degenerate monitoring data must never panic
//! the pipeline — production collectors emit NaNs, gaps, constant series,
//! and empty series all the time.

use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn config() -> DetectorConfig {
    DetectorConfig::new(
        "robust",
        WindowConfig {
            historic: 300,
            analysis: 100,
            extended: 50,
            rerun_interval: 50,
        },
        Threshold::Absolute(0.1),
    )
}

fn id(target: &str) -> SeriesId {
    SeriesId::new("svc", MetricKind::GCpu, target)
}

#[test]
fn nan_and_infinite_values_are_skipped_not_fatal() {
    let store = TsdbStore::new();
    let mut values: Vec<f64> = (0..450).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect();
    values[100] = f64::NAN;
    values[300] = f64::INFINITY;
    values[410] = f64::NEG_INFINITY;
    store.insert_series(id("glitchy"), TimeSeries::from_values(0, 1, &values));
    // A healthy series with a real regression alongside it.
    let healthy: Vec<f64> = (0..450)
        .map(|i| if i >= 380 { 1.5 } else { 1.0 } + (i % 5) as f64 * 0.01)
        .collect();
    store.insert_series(id("healthy"), TimeSeries::from_values(0, 1, &healthy));
    let mut pipeline = Pipeline::new(config()).unwrap();
    let out = pipeline
        .scan(
            &store,
            &[id("glitchy"), id("healthy")],
            450,
            &ScanContext::default(),
        )
        .unwrap();
    // The glitchy series is skipped; the healthy one is still detected.
    assert_eq!(out.reports.len(), 1);
    assert_eq!(out.reports[0].series.target, "healthy");
}

#[test]
fn constant_series_is_harmless() {
    let store = TsdbStore::new();
    store.insert_series(id("flat"), TimeSeries::from_values(0, 1, &[2.0; 450]));
    let mut pipeline = Pipeline::new(config()).unwrap();
    let out = pipeline
        .scan(&store, &[id("flat")], 450, &ScanContext::default())
        .unwrap();
    assert!(out.reports.is_empty());
    assert_eq!(out.funnel.change_points, 0);
}

#[test]
fn short_and_empty_series_are_skipped() {
    let store = TsdbStore::new();
    store.insert_series(id("tiny"), TimeSeries::from_values(0, 1, &[1.0, 2.0]));
    store.insert_series(id("empty"), TimeSeries::new());
    // A series entirely inside the historic region (no analysis data).
    store.insert_series(id("stale"), TimeSeries::from_values(0, 1, &[1.0; 50]));
    let mut pipeline = Pipeline::new(config()).unwrap();
    let out = pipeline
        .scan(
            &store,
            &[id("tiny"), id("empty"), id("stale"), id("missing")],
            450,
            &ScanContext::default(),
        )
        .unwrap();
    assert!(out.reports.is_empty());
}

#[test]
fn extreme_magnitudes_do_not_overflow() {
    let store = TsdbStore::new();
    let values: Vec<f64> = (0..450)
        .map(|i| if i >= 380 { 1e15 } else { 1e-15 })
        .collect();
    store.insert_series(id("extreme"), TimeSeries::from_values(0, 1, &values));
    let mut pipeline = Pipeline::new(config()).unwrap();
    // Must not panic; whether it reports is secondary.
    let out = pipeline
        .scan(&store, &[id("extreme")], 450, &ScanContext::default())
        .unwrap();
    for r in &out.reports {
        assert!(r.magnitude().is_finite());
    }
}

#[test]
fn gaps_in_sampling_are_tolerated() {
    let store = TsdbStore::new();
    let series_id = id("gappy");
    // Data exists only every 10th second, with a long outage mid-window.
    for t in (0..450u64).step_by(10) {
        if (200..260).contains(&t) {
            continue; // Collector outage.
        }
        let v = if t >= 380 { 1.4 } else { 1.0 };
        store.append(&series_id, t, v).unwrap();
    }
    let mut pipeline = Pipeline::new(config()).unwrap();
    let out = pipeline
        .scan(
            &store,
            std::slice::from_ref(&series_id),
            450,
            &ScanContext::default(),
        )
        .unwrap();
    // The step is still found despite the gaps.
    assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
}
