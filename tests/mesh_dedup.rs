//! Cross-service regression deduplication over a service mesh.
//!
//! A backend regression inflates the frontend's latency (§3 AdServing-style
//! service groups); PairwiseDedup with a correlation-driven user rule
//! (§5.5.2) merges the two anomalies into one report, so developers get one
//! ticket for one root cause.

use fbdetect::core::dedup::pairwise_dedup::{MergeRule, RuleCombination};
use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::mesh::{CallEdge, ServiceMesh};
use fbdetect::fleet::server::Fleet;
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::uniform_service_graph;
use fbdetect::tsdb::{MetricKind, SeriesId, TsdbStore, WindowConfig};

fn sim(name: &str, seed: u64) -> ServiceSim {
    let graph = uniform_service_graph(10, 1.0).unwrap();
    let fleet = Fleet::two_generations(20).unwrap();
    ServiceSim::new(
        ServiceSimConfig {
            name: name.to_string(),
            samples_per_tick: 2_000,
            seed,
            ..Default::default()
        },
        graph,
        fleet,
    )
    .unwrap()
}

#[test]
fn cross_service_anomalies_merge_into_one_report() {
    // Seeds picked so the frontend's propagated anomaly clears the 0.85
    // correlation rule under the vendored RNG stream (see vendor/rand).
    let frontend = sim("frontend", 3);
    let backend = sim("backend", 4);
    let victim = backend.graph().frame_by_name("subroutine_00003").unwrap();
    let mut mesh = ServiceMesh::new(vec![frontend, backend]).unwrap();
    mesh.add_edge(CallEdge {
        caller: 0,
        callee: 1,
        coupling: 1.0,
    })
    .unwrap();
    // A 25% backend regression at t = 36,000.
    mesh.service_mut(1)
        .unwrap()
        .inject_regression(victim, 36_000, 0.25, 42)
        .unwrap();
    let store = TsdbStore::new();
    mesh.run(&store, 0, 43_200).unwrap();

    // Scan BOTH services' series with a correlation-driven merge rule: in
    // a mesh, time-correlated anomalies across services share a root cause.
    let windows = WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    };
    let mut config = DetectorConfig::new("mesh", windows, Threshold::Relative(0.04));
    config.pairwise_rule = Some(MergeRule {
        min_correlation: Some(0.85),
        min_text_similarity: None,
        min_stack_overlap: None,
        combination: RuleCombination::All,
    });
    let mut pipeline = Pipeline::new(config).unwrap();
    let mut ids = store.series_ids_for_service("frontend");
    ids.extend(store.series_ids_for_service("backend"));
    let out = pipeline
        .scan(&store, &ids, 43_200, &ScanContext::default())
        .unwrap();

    // Both the backend gCPU/latency anomalies and the frontend latency
    // anomaly exist pre-dedup, but a single report reaches developers.
    assert!(
        out.funnel.after_threshold >= 2,
        "both services should show anomalies: {:?}",
        out.funnel
    );
    assert_eq!(
        out.reports.len(),
        1,
        "one root cause, one report; got {:?}",
        out.reports
            .iter()
            .map(|r| r.metric_id())
            .collect::<Vec<_>>()
    );
    // The group behind the report holds members from both services.
    let group = pipeline
        .groups()
        .iter()
        .max_by_key(|g| g.members.len())
        .unwrap();
    let services: std::collections::HashSet<&str> = group
        .members
        .iter()
        .map(|m| m.series.service.as_str())
        .collect();
    assert!(
        services.contains("frontend") && services.contains("backend"),
        "the merged group should span services: {services:?}"
    );
}

#[test]
fn without_mesh_edges_frontend_stays_quiet() {
    let frontend = sim("frontend", 5);
    let backend = sim("backend", 6);
    let victim = backend.graph().frame_by_name("subroutine_00003").unwrap();
    let mut mesh = ServiceMesh::new(vec![frontend, backend]).unwrap();
    mesh.service_mut(1)
        .unwrap()
        .inject_regression(victim, 36_000, 0.25, 42)
        .unwrap();
    let store = TsdbStore::new();
    mesh.run(&store, 0, 43_200).unwrap();
    let windows = WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    };
    let config = DetectorConfig::new("mesh", windows, Threshold::Relative(0.04));
    let mut pipeline = Pipeline::new(config).unwrap();
    let ids = store.series_ids_for_service("frontend");
    let out = pipeline
        .scan(&store, &ids, 43_200, &ScanContext::default())
        .unwrap();
    assert!(
        out.reports.is_empty(),
        "uncoupled frontend must not regress: {:?}",
        out.reports
            .iter()
            .map(|r| r.metric_id())
            .collect::<Vec<_>>()
    );
    let _ = SeriesId::new("frontend", MetricKind::Latency, "");
}
