//! Determinism regression tests: the guarantee that the same fleet seed
//! produces byte-identical detection output, run to run and regardless of
//! worker-thread count.
//!
//! The hot-path overhaul advertises bit-identical detection fingerprints;
//! `fbd-lint`'s determinism rules (`hash-order`, `nondet-source`) guard the
//! code paths, and this test pins the end-to-end behavior: two full
//! pipeline runs — fleet simulation, tsdb ingestion, supervised parallel
//! scan, dedup, RCA, report rendering — must serialize to identical bytes.

use fbdetect::changelog::{ChangeLog, ChangeTrafficConfig, ChangeTrafficGenerator};
use fbdetect::core::{report, DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::server::Fleet;
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::{CallGraph, CallGraphBuilder};
use fbdetect::tsdb::{TsdbStore, WindowConfig};

const SEED: u64 = 0xDE7EC7;

fn service_graph() -> CallGraph {
    let mut b = CallGraphBuilder::new("main", 0.01);
    let dispatch = b.add_child(0, "dispatch", 0.01, "Runtime").unwrap();
    b.add_child(dispatch, "Render::page", 0.3, "Render")
        .unwrap();
    b.add_child(dispatch, "Render::body", 0.2, "Render")
        .unwrap();
    b.add_child(dispatch, "Data::fetch", 0.2, "Data").unwrap();
    b.add_child(dispatch, "Data::serialize", 0.1, "Data")
        .unwrap();
    b.add_child(dispatch, "Auth::check", 0.1, "Auth").unwrap();
    b.build().unwrap()
}

/// One full end-to-end build: simulate a fleet with an injected regression
/// from `SEED`, scan it, and serialize everything observable.
fn build_world() -> (TsdbStore, ServiceSim, ChangeLog, CallGraph) {
    let graph = service_graph();
    let fleet = Fleet::two_generations(50).unwrap();
    let config = ServiceSimConfig {
        name: "svc".to_string(),
        tick_interval: 60,
        samples_per_tick: 3_000,
        seed: SEED,
        ..Default::default()
    };
    let mut sim = ServiceSim::new(config, graph.clone(), fleet).unwrap();
    let mut log = ChangeLog::new();
    let mut traffic = ChangeTrafficGenerator::new(
        ChangeTrafficConfig {
            service: "svc".to_string(),
            changes_per_day: 50.0,
            subroutine_pool: graph.names().iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        },
        SEED,
    );
    traffic.generate_background(&mut log, 0, 43_200);
    let frame = graph.frame_by_name("Data::serialize").unwrap();
    let culprit = traffic.plant_culprit(
        &mut log,
        35_900,
        &["Data::serialize"],
        Some("Enable schema validation in serializer"),
    );
    sim.inject_regression(frame, 36_000, 0.05, culprit).unwrap();
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();
    (store, sim, log, graph)
}

fn detector_config() -> DetectorConfig {
    let windows = WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    };
    DetectorConfig::new("determinism", windows, Threshold::Absolute(0.01))
}

/// Scans the world with `threads` workers and serializes the complete
/// observable outcome: rendered reports plus funnel and health telemetry.
fn scan_fingerprint(
    store: &TsdbStore,
    sim: &ServiceSim,
    log: &ChangeLog,
    graph: &CallGraph,
    threads: usize,
) -> String {
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    pipeline.threads = threads;
    let context = ScanContext {
        changelog: Some(log),
        samples: Some(sim.retained_samples()),
        graph: Some(graph),
        domain_providers: vec![],
    };
    let ids = store.series_ids_for_service("svc");
    let outcome = pipeline.scan(store, &ids, 43_200, &context).unwrap();
    let mut out = report::render_batch(&outcome.reports, Some(log));
    out.push_str(&format!("funnel: {:?}\n", outcome.funnel));
    out.push_str(&format!("health: {:?}\n", outcome.health));
    out
}

/// Runs the same world through several scan rounds with fresh points
/// appended between rounds, mimicking the production cadence: the scan
/// watermark is quantized to `rerun_interval` boundaries, so consecutive
/// rounds at the same watermark see identical windows while ingestion runs
/// ahead of it. Returns the concatenated per-round fingerprint.
///
/// With `streaming` enabled the incremental engine must reuse cached
/// outcomes on unchanged rounds; with it disabled every round is a cold
/// scan. Both must serialize to identical bytes.
fn multi_round_fingerprint(streaming: bool, threads: usize) -> (String, u64) {
    let (store, mut sim, log, graph) = build_world();
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    pipeline.threads = threads;
    pipeline.set_streaming(streaming);
    let ids = store.series_ids_for_service("svc");
    let mut out = String::new();
    let mut frontier = 43_200;
    for round in 0..6u64 {
        // Two rounds per watermark: the second sees the same windows as the
        // first (appends land at or past `now`), then the watermark jumps.
        let now = 43_200 + (round / 2) * 3_600;
        {
            let context = ScanContext {
                changelog: Some(&log),
                samples: Some(sim.retained_samples()),
                graph: Some(&graph),
                domain_providers: vec![],
            };
            let outcome = pipeline.scan(&store, &ids, now, &context).unwrap();
            out.push_str(&format!("== round {round} now {now}\n"));
            out.push_str(&report::render_batch(&outcome.reports, Some(&log)));
            out.push_str(&format!("funnel: {:?}\n", outcome.funnel));
            out.push_str(&format!("health: {:?}\n", outcome.health));
        }
        // Ingest half a rerun interval of fresh data before the next round.
        sim.run(&store, frontier, frontier + 1_800).unwrap();
        frontier += 1_800;
    }
    let reused = pipeline
        .streaming_stats()
        .map(|s| s.reused_full + s.reused_quiet)
        .unwrap_or(0);
    (out, reused)
}

#[test]
fn streaming_engine_does_not_change_fingerprint() {
    let (on, reused) = multi_round_fingerprint(true, 4);
    let (off, _) = multi_round_fingerprint(false, 4);
    assert!(
        reused > 0,
        "streaming run never exercised the reuse path; the comparison is vacuous"
    );
    assert_eq!(
        on.as_bytes(),
        off.as_bytes(),
        "streaming engine changed the fingerprint:\n--- streaming ---\n{on}\n--- cold ---\n{off}"
    );
}

#[test]
fn streaming_engine_is_thread_invariant() {
    let (serial, _) = multi_round_fingerprint(true, 1);
    let (parallel, reused) = multi_round_fingerprint(true, 8);
    assert!(reused > 0, "streaming run never exercised the reuse path");
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "thread count changed the streaming fingerprint:\n--- 1 thread ---\n{serial}\n--- 8 threads ---\n{parallel}"
    );
}

#[test]
fn double_run_same_seed_is_byte_identical() {
    let (store_a, sim_a, log_a, graph_a) = build_world();
    let (store_b, sim_b, log_b, graph_b) = build_world();
    let a = scan_fingerprint(&store_a, &sim_a, &log_a, &graph_a, 4);
    let b = scan_fingerprint(&store_b, &sim_b, &log_b, &graph_b, 4);
    assert!(!a.is_empty());
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "same seed produced different serialized reports:\n--- run A ---\n{a}\n--- run B ---\n{b}"
    );
}

#[test]
fn thread_count_does_not_change_fingerprint() {
    let (store, sim, log, graph) = build_world();
    let serial = scan_fingerprint(&store, &sim, &log, &graph, 1);
    let parallel = scan_fingerprint(&store, &sim, &log, &graph, 8);
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "thread count changed the fingerprint:\n--- 1 thread ---\n{serial}\n--- 8 threads ---\n{parallel}"
    );
}
