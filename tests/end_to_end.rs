//! Cross-crate integration tests: fleet simulation -> tsdb -> detection
//! pipeline -> reports, exercising the public API the way the examples do.

use fbdetect::changelog::{ChangeLog, ChangeTrafficConfig, ChangeTrafficGenerator};
use fbdetect::core::cost_shift::{ClassDomain, CostDomainProvider, UpstreamCallerDomain};
use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::server::Fleet;
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::{CallGraph, CallGraphBuilder};
use fbdetect::tsdb::{TsdbStore, WindowConfig};

fn service_graph() -> CallGraph {
    let mut b = CallGraphBuilder::new("main", 0.01);
    let dispatch = b.add_child(0, "dispatch", 0.01, "Runtime").unwrap();
    b.add_child(dispatch, "Render::page", 0.3, "Render")
        .unwrap();
    b.add_child(dispatch, "Render::body", 0.2, "Render")
        .unwrap();
    b.add_child(dispatch, "Data::fetch", 0.2, "Data").unwrap();
    b.add_child(dispatch, "Data::serialize", 0.1, "Data")
        .unwrap();
    b.add_child(dispatch, "Auth::check", 0.1, "Auth").unwrap();
    b.add_child(dispatch, "Log::write", 0.08, "Log").unwrap();
    b.build().unwrap()
}

fn simulate(
    inject: impl FnOnce(&mut ServiceSim, &CallGraph, &mut ChangeLog, &mut ChangeTrafficGenerator),
) -> (TsdbStore, ServiceSim, ChangeLog, CallGraph) {
    let graph = service_graph();
    let fleet = Fleet::two_generations(50).unwrap();
    let config = ServiceSimConfig {
        name: "svc".to_string(),
        tick_interval: 60,
        samples_per_tick: 3_000,
        ..Default::default()
    };
    let mut sim = ServiceSim::new(config, graph.clone(), fleet).unwrap();
    let mut log = ChangeLog::new();
    let mut traffic = ChangeTrafficGenerator::new(
        ChangeTrafficConfig {
            service: "svc".to_string(),
            changes_per_day: 50.0,
            subroutine_pool: graph.names().iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        },
        3,
    );
    traffic.generate_background(&mut log, 0, 43_200);
    inject(&mut sim, &graph, &mut log, &mut traffic);
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();
    (store, sim, log, graph)
}

fn detector_config() -> DetectorConfig {
    let windows = WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    };
    DetectorConfig::new("itest", windows, Threshold::Absolute(0.01))
}

#[test]
fn injected_regression_is_detected_and_root_caused() {
    let (store, sim, log, graph) = simulate(|sim, graph, log, traffic| {
        let frame = graph.frame_by_name("Data::serialize").unwrap();
        let culprit = traffic.plant_culprit(
            log,
            35_900,
            &["Data::serialize"],
            Some("Enable schema validation in serializer"),
        );
        sim.inject_regression(frame, 36_000, 0.05, culprit).unwrap();
    });
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: vec![],
    };
    let ids = store.series_ids_for_service("svc");
    let outcome = pipeline.scan(&store, &ids, 43_200, &context).unwrap();
    assert!(!outcome.reports.is_empty(), "funnel = {:?}", outcome.funnel);
    // The regressed subroutine (or its ancestors, pre-dedup) is reported,
    // and at least one report carries the culprit among its candidates.
    let culprit_id = sim.injections()[0].change_id;
    let any_root_caused = outcome
        .reports
        .iter()
        .any(|r| r.root_cause_candidates.contains(&culprit_id));
    assert!(
        any_root_caused,
        "culprit #{culprit_id} not among candidates: {:?}",
        outcome
            .reports
            .iter()
            .map(|r| (&r.series.target, &r.root_cause_candidates))
            .collect::<Vec<_>>()
    );
}

#[test]
fn cost_shift_refactor_is_filtered() {
    let (store, sim, log, graph) = simulate(|sim, graph, log, traffic| {
        let from = graph.frame_by_name("Log::write").unwrap();
        let to = graph.frame_by_name("Auth::check").unwrap();
        let refactor = traffic.plant_culprit(
            log,
            35_900,
            &["Log::write", "Auth::check"],
            Some("Inline logging into auth path"),
        );
        sim.inject_cost_shift(from, to, 36_000, 0.05, refactor)
            .unwrap();
    });
    let upstream = UpstreamCallerDomain { graph: &graph };
    let class = ClassDomain { graph: &graph };
    let providers: Vec<&dyn CostDomainProvider> = vec![&upstream, &class];
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: providers,
    };
    let ids = store.series_ids_for_service("svc");
    let outcome = pipeline.scan(&store, &ids, 43_200, &context).unwrap();
    // Auth::check's apparent regression is a cost shift; it must not be
    // reported even though its gCPU jumped.
    assert!(
        !outcome
            .reports
            .iter()
            .any(|r| r.series.target == "Auth::check"),
        "cost shift leaked through: {:?}",
        outcome
            .reports
            .iter()
            .map(|r| &r.series.target)
            .collect::<Vec<_>>()
    );
}

#[test]
fn clean_service_reports_nothing() {
    let (store, sim, log, graph) = simulate(|_, _, _, _| {});
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: vec![],
    };
    let ids = store.series_ids_for_service("svc");
    let outcome = pipeline.scan(&store, &ids, 43_200, &context).unwrap();
    assert!(
        outcome.reports.is_empty(),
        "false positives on a clean service: {:?}",
        outcome
            .reports
            .iter()
            .map(|r| (&r.series.target, r.magnitude()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn repeated_scans_do_not_rereport() {
    let (store, sim, log, graph) = simulate(|sim, graph, log, traffic| {
        let frame = graph.frame_by_name("Render::page").unwrap();
        let culprit = traffic.plant_culprit(log, 35_900, &["Render::page"], None);
        sim.inject_regression(frame, 36_000, 0.08, culprit).unwrap();
    });
    let mut pipeline = Pipeline::new(detector_config()).unwrap();
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: vec![],
    };
    let ids = store.series_ids_for_service("svc");
    let first = pipeline.scan(&store, &ids, 40_000, &context).unwrap();
    let second = pipeline.scan(&store, &ids, 43_200, &context).unwrap();
    assert!(!first.reports.is_empty());
    assert!(
        second.reports.is_empty(),
        "re-reported: {:?}",
        second
            .reports
            .iter()
            .map(|r| &r.series.target)
            .collect::<Vec<_>>()
    );
}
