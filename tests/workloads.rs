//! Integration tests for the workload families of §3: endpoint-level
//! detection, the Invoicer small-service configuration, TAO per-data-type
//! I/O regressions, Capacity Triage via Kraken, and metadata-annotated
//! measurement.

use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::kraken::{demand_series, KrakenBench};
use fbdetect::fleet::seasonality::SeasonalProfile;
use fbdetect::fleet::server::{Fleet, ServerGeneration};
use fbdetect::fleet::tao::{standard_data_types, IoRegression, TaoIoSim};
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::CallGraphBuilder;
use fbdetect::profiler::gcpu::gcpu_filtered;
use fbdetect::profiler::metadata::FrameAnnotator;
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn windows() -> WindowConfig {
    WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    }
}

#[test]
fn endpoint_level_detection_catches_async_regression() {
    // The endpoint's synchronous entry is cheap and stable; its async
    // helper regresses. Endpoint-level aggregation must expose it.
    let mut b = CallGraphBuilder::new("main", 0.02);
    let dispatch = b.add_child(0, "dispatch", 0.02, "Runtime").unwrap();
    let sync_entry = b.add_child(dispatch, "feed::handler", 0.2, "Feed").unwrap();
    let async_helper = b
        .add_child(dispatch, "feed::async_ranker", 0.2, "Feed")
        .unwrap();
    b.add_child(dispatch, "other::work", 0.5, "Other").unwrap();
    let graph = b.build().unwrap();
    let fleet = Fleet::two_generations(20).unwrap();
    let mut sim = ServiceSim::new(
        ServiceSimConfig {
            name: "FrontFaaS".to_string(),
            samples_per_tick: 4_000,
            ..Default::default()
        },
        graph,
        fleet,
    )
    .unwrap();
    sim.register_endpoint("url:/feed", vec![sync_entry, async_helper])
        .unwrap();
    sim.inject_regression(async_helper, 36_000, 0.12, 1)
        .unwrap();
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();
    let id = SeriesId::new("FrontFaaS", MetricKind::EndpointCost, "url:/feed");
    let series = store.get(&id).unwrap();
    let v = series.values();
    let boundary = (36_000 / 60) as usize;
    let before: f64 = v[..boundary].iter().sum::<f64>() / boundary as f64;
    let after: f64 = v[boundary + 5..].iter().sum::<f64>() / (v.len() - boundary - 5) as f64;
    assert!(
        after - before > 0.05,
        "endpoint cost must rise: {before:.3} -> {after:.3}"
    );
    // And the pipeline catches it on the endpoint series.
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "ep",
        windows(),
        Threshold::Absolute(0.03),
    ))
    .unwrap();
    let out = pipeline
        .scan(&store, &[id], 43_200, &ScanContext::default())
        .unwrap();
    assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
}

#[test]
fn invoicer_small_service_with_dense_sampling() {
    // Invoicer: 16 servers, ~1 sample/server/second (dense), long windows,
    // 0.5% gCPU threshold (§3). A 1% regression must be caught.
    let graph = fbdetect::profiler::callgraph::uniform_service_graph(50, 1.0).unwrap();
    let fleet = Fleet::homogeneous(
        16,
        ServerGeneration {
            cpu_multiplier: 1.0,
            noise_std: 0.05,
            regression_multiplier: 1.0,
        },
    )
    .unwrap();
    let mut sim = ServiceSim::new(
        ServiceSimConfig {
            name: "Invoicer".to_string(),
            tick_interval: 60,
            // 16 servers x 1 sample/sec x 60 s.
            samples_per_tick: 960,
            ..Default::default()
        },
        graph.clone(),
        fleet,
    )
    .unwrap();
    let victim = graph.frame_by_name("subroutine_00007").unwrap();
    // Each subroutine holds 2% gCPU; +0.01 weight is a +0.97% gCPU shift.
    sim.inject_regression(victim, 36_000, 0.01, 9).unwrap();
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "Invoicer",
        windows(),
        Threshold::Absolute(0.005),
    ))
    .unwrap();
    let ids = store.series_ids_for_service("Invoicer");
    let out = pipeline
        .scan(&store, &ids, 43_200, &ScanContext::default())
        .unwrap();
    assert!(
        out.reports
            .iter()
            .any(|r| r.series.target == "subroutine_00007"),
        "Invoicer regression missed: {:?}",
        out.reports
            .iter()
            .map(|r| &r.series.target)
            .collect::<Vec<_>>()
    );
}

#[test]
fn tao_per_data_type_io_regression() {
    // One data type's I/O rate jumps 8% (e.g. an upstream cache removed);
    // the pipeline must flag that type and only that type.
    let mut sim = TaoIoSim::new(standard_data_types(), SeasonalProfile::FLAT, 11).unwrap();
    sim.inject(IoRegression {
        data_type: 2, // assoc_like.
        at: 36_000,
        rate_increase: 0.08,
    })
    .unwrap();
    let store = TsdbStore::new();
    let mut ids = Vec::new();
    for (name, points) in sim.generate(0, 43_200, 60).unwrap() {
        let id = SeriesId::new("TAO", MetricKind::Application, format!("io:{name}"));
        store.insert_series(id.clone(), TimeSeries::from_pairs(points).unwrap());
        ids.push(id);
    }
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "TAO",
        windows(),
        Threshold::Relative(0.05),
    ))
    .unwrap();
    let out = pipeline
        .scan(&store, &ids, 43_200, &ScanContext::default())
        .unwrap();
    let targets: Vec<&str> = out
        .reports
        .iter()
        .map(|r| r.series.target.as_str())
        .collect();
    assert_eq!(targets, vec!["io:assoc_like"], "got {targets:?}");
}

#[test]
fn capacity_triage_supply_and_demand() {
    // Supply side: Kraken probing shows a 12% max-throughput drop.
    let fleet = Fleet::two_generations(64).unwrap();
    let mut kraken = KrakenBench::new(fleet, 2_000.0, 21).unwrap();
    let supply = kraken
        .supply_series(0, 3_600, 12 * 24, 32, |t| {
            if t >= 10 * 86_400 {
                1.14
            } else {
                1.0
            }
        })
        .unwrap();
    let store = TsdbStore::new();
    let supply_id = SeriesId::new("svc", MetricKind::Throughput, "kraken-max");
    store.insert_series(supply_id.clone(), TimeSeries::from_pairs(supply).unwrap());
    // Demand side: peak requests jump 20% over diurnal seasonality.
    let demand = demand_series(
        50_000.0,
        SeasonalProfile::TYPICAL,
        0,
        3_600,
        12 * 24,
        22,
        |t| if t >= 10 * 86_400 { 1.2 } else { 1.0 },
    )
    .unwrap();
    let demand_id = SeriesId::new("svc", MetricKind::Application, "peak-demand");
    store.insert_series(demand_id.clone(), TimeSeries::from_pairs(demand).unwrap());
    // CT configuration: 5% relative threshold, day-scale windows.
    let ct_windows = WindowConfig {
        historic: 7 * 86_400,
        analysis: 86_400,
        extended: 86_400,
        rerun_interval: 12 * 3_600,
    };
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "CT",
        ct_windows,
        Threshold::Relative(0.05),
    ))
    .unwrap();
    let out = pipeline
        .scan(
            &store,
            &[supply_id.clone(), demand_id.clone()],
            12 * 86_400,
            &ScanContext::default(),
        )
        .unwrap();
    let targets: Vec<&str> = out
        .reports
        .iter()
        .map(|r| r.series.target.as_str())
        .collect();
    assert!(
        targets.contains(&"kraken-max"),
        "supply regression missed: {targets:?}"
    );
    assert!(
        targets.contains(&"peak-demand"),
        "demand regression missed: {targets:?}"
    );
}

#[test]
fn metadata_annotated_measurement() {
    // SetFrameMetadata: a regression that only affects a specific user
    // category is visible in the metadata-scoped gCPU but not the overall
    // one (§3). Construct samples directly.
    use fbdetect::profiler::sample::StackSample;
    let mut annotator = FrameAnnotator::new();
    annotator.set_frame_metadata(7, "user_category:enterprise");
    let make = |n_vip_hot: usize, n_vip_cold: usize, n_other: usize| -> Vec<StackSample> {
        let mut samples = Vec::new();
        for _ in 0..n_vip_hot {
            samples.push(StackSample {
                trace: vec![0, 7, 9],
                timestamp: 0,
                server: 0,
                metadata: vec![],
            });
        }
        for _ in 0..n_vip_cold {
            samples.push(StackSample {
                trace: vec![0, 7],
                timestamp: 0,
                server: 0,
                metadata: vec![],
            });
        }
        for _ in 0..n_other {
            samples.push(StackSample {
                trace: vec![0, 3],
                timestamp: 0,
                server: 0,
                metadata: vec![],
            });
        }
        annotator.annotate_all(&mut samples);
        samples
    };
    // Before: 10% of enterprise samples hit subroutine 9. After: 50%.
    let before = make(10, 90, 900);
    let after = make(50, 50, 900);
    let is_enterprise = |s: &StackSample| {
        s.metadata
            .iter()
            .any(|(_, m)| m.starts_with("user_category:"))
    };
    let scoped_before = gcpu_filtered(&before, 9, is_enterprise).unwrap();
    let scoped_after = gcpu_filtered(&after, 9, is_enterprise).unwrap();
    assert!((scoped_before - 0.1).abs() < 1e-9);
    assert!((scoped_after - 0.5).abs() < 1e-9);
    // Overall gCPU of subroutine 9 moves only 4% absolute (10/1000 ->
    // 50/1000): the metadata scope amplifies the relative signal 5x vs
    // 1.25x... the scoped relative change is what makes it detectable.
    let overall_before = gcpu_filtered(&before, 9, |_| true).unwrap();
    let overall_after = gcpu_filtered(&after, 9, |_| true).unwrap();
    let scoped_relative = scoped_after / scoped_before;
    let overall_relative = overall_after / overall_before;
    assert!((scoped_relative - overall_relative).abs() < 1e-9);
    assert!(scoped_after - scoped_before > 5.0 * (overall_after - overall_before));
}

#[test]
fn metadata_scope_series_expose_category_regressions() {
    // A regression in a frame reached only under a metadata scope is far
    // more visible in the scoped series than overall (§3
    // metadata-annotated regressions).
    let mut b = CallGraphBuilder::new("main", 0.02);
    let dispatch = b.add_child(0, "dispatch", 0.02, "Runtime").unwrap();
    let vip = b.add_child(dispatch, "vip::entry", 0.05, "Vip").unwrap();
    let vip_hot = b.add_child(vip, "vip::render", 0.05, "Vip").unwrap();
    b.add_child(dispatch, "bulk::work", 0.9, "Bulk").unwrap();
    let graph = b.build().unwrap();
    let fleet = Fleet::two_generations(20).unwrap();
    let mut sim = ServiceSim::new(
        ServiceSimConfig {
            name: "svc".to_string(),
            samples_per_tick: 6_000,
            ..Default::default()
        },
        graph,
        fleet,
    )
    .unwrap();
    sim.register_metadata_scope("user:vip", vip, vip_hot)
        .unwrap();
    sim.inject_regression(vip_hot, 36_000, 0.05, 1).unwrap();
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();
    // The scoped series moves from ~0.5 to ~0.66 of scope samples; the
    // overall gCPU of vip::render moves only ~0.05 absolute.
    let scoped = store
        .get(&SeriesId::new("svc", MetricKind::GCpu, "meta:user:vip"))
        .unwrap()
        .values();
    let boundary = 600usize;
    let before: f64 = scoped[..boundary].iter().sum::<f64>() / boundary as f64;
    let after: f64 =
        scoped[boundary + 5..].iter().sum::<f64>() / (scoped.len() - boundary - 5) as f64;
    assert!(
        after - before > 0.1,
        "scoped series must move strongly: {before:.3} -> {after:.3}"
    );
    // And the pipeline flags the scoped series.
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "meta",
        windows(),
        Threshold::Absolute(0.05),
    ))
    .unwrap();
    let id = SeriesId::new("svc", MetricKind::GCpu, "meta:user:vip");
    let out = pipeline
        .scan(&store, &[id], 43_200, &ScanContext::default())
        .unwrap();
    assert_eq!(out.reports.len(), 1, "funnel = {:?}", out.funnel);
}
